//! Real RISC-V 32-bit instruction encodings for the modelled subset.
//!
//! Round-tripping through the binary format keeps the fuzzer honest: the
//! microarchitectural model fetches 32-bit words from memory and decodes
//! them, exactly like the RTL it stands in for, so stale instruction bytes
//! (e.g. after a swapMem swap without an icache flush) behave realistically.

use crate::instr::{AluOp, BranchOp, FpOp, Instr, LoadOp, Reg, StoreOp};

const OP_LUI: u32 = 0b0110111;
const OP_AUIPC: u32 = 0b0010111;
const OP_JAL: u32 = 0b1101111;
const OP_JALR: u32 = 0b1100111;
const OP_BRANCH: u32 = 0b1100011;
const OP_LOAD: u32 = 0b0000011;
const OP_STORE: u32 = 0b0100011;
const OP_IMM: u32 = 0b0010011;
const OP_IMM32: u32 = 0b0011011;
const OP_REG: u32 = 0b0110011;
const OP_REG32: u32 = 0b0111011;
const OP_FP: u32 = 0b1010011;
const OP_FLOAD: u32 = 0b0000111;
const OP_FSTORE: u32 = 0b0100111;
const OP_MISC_MEM: u32 = 0b0001111;
const OP_SYSTEM: u32 = 0b1110011;

#[inline]
fn r_type(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2.0 as u32) << 20)
        | ((rs1.0 as u32) << 15)
        | (funct3 << 12)
        | ((rd.0 as u32) << 7)
        | opcode
}

#[inline]
fn i_type(imm: i64, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (((imm as u32) & 0xFFF) << 20)
        | ((rs1.0 as u32) << 15)
        | (funct3 << 12)
        | ((rd.0 as u32) << 7)
        | opcode
}

#[inline]
fn s_type(imm: i64, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7F) << 25)
        | ((rs2.0 as u32) << 20)
        | ((rs1.0 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

#[inline]
fn b_type(offset: i64, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | ((rs2.0 as u32) << 20)
        | ((rs1.0 as u32) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

#[inline]
fn u_type(imm: i64, rd: Reg, opcode: u32) -> u32 {
    ((imm as u32) & 0xFFFF_F000) | ((rd.0 as u32) << 7) | opcode
}

#[inline]
fn j_type(offset: i64, rd: Reg, opcode: u32) -> u32 {
    let imm = offset as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | ((rd.0 as u32) << 7)
        | opcode
}

/// Encodes an instruction into its 32-bit RISC-V representation.
///
/// Offsets/immediates are truncated to their field widths exactly like an
/// assembler would; use the [`crate::asm::ProgramBuilder`] for range-checked
/// assembly.
pub fn encode(i: Instr) -> u32 {
    match i {
        Instr::Lui { rd, imm } => u_type(imm, rd, OP_LUI),
        Instr::Auipc { rd, imm } => u_type(imm, rd, OP_AUIPC),
        Instr::Jal { rd, offset } => j_type(offset, rd, OP_JAL),
        Instr::Jalr { rd, rs1, offset } => i_type(offset, rs1, 0b000, rd, OP_JALR),
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match op {
                BranchOp::Beq => 0b000,
                BranchOp::Bne => 0b001,
                BranchOp::Blt => 0b100,
                BranchOp::Bge => 0b101,
                BranchOp::Bltu => 0b110,
                BranchOp::Bgeu => 0b111,
            };
            b_type(offset, rs2, rs1, f3, OP_BRANCH)
        }
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let f3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Ld => 0b011,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
                LoadOp::Lwu => 0b110,
            };
            i_type(offset, rs1, f3, rd, OP_LOAD)
        }
        Instr::Store {
            op,
            rs2,
            rs1,
            offset,
        } => {
            let f3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
                StoreOp::Sd => 0b011,
            };
            s_type(offset, rs2, rs1, f3, OP_STORE)
        }
        Instr::OpImm { op, rd, rs1, imm } => match op {
            AluOp::Add => i_type(imm, rs1, 0b000, rd, OP_IMM),
            AluOp::Slt => i_type(imm, rs1, 0b010, rd, OP_IMM),
            AluOp::Sltu => i_type(imm, rs1, 0b011, rd, OP_IMM),
            AluOp::Xor => i_type(imm, rs1, 0b100, rd, OP_IMM),
            AluOp::Or => i_type(imm, rs1, 0b110, rd, OP_IMM),
            AluOp::And => i_type(imm, rs1, 0b111, rd, OP_IMM),
            AluOp::Sll => i_type(imm & 0x3F, rs1, 0b001, rd, OP_IMM),
            AluOp::Srl => i_type(imm & 0x3F, rs1, 0b101, rd, OP_IMM),
            AluOp::Sra => i_type((imm & 0x3F) | 0x400, rs1, 0b101, rd, OP_IMM),
            AluOp::AddW => i_type(imm, rs1, 0b000, rd, OP_IMM32),
            AluOp::SllW => i_type(imm & 0x1F, rs1, 0b001, rd, OP_IMM32),
            AluOp::SrlW => i_type(imm & 0x1F, rs1, 0b101, rd, OP_IMM32),
            AluOp::SraW => i_type((imm & 0x1F) | 0x400, rs1, 0b101, rd, OP_IMM32),
            // Ops without an immediate form encode as an illegal word so the
            // generator cannot silently emit them.
            _ => 0,
        },
        Instr::Op { op, rd, rs1, rs2 } => {
            let (f7, f3, opc) = match op {
                AluOp::Add => (0b0000000, 0b000, OP_REG),
                AluOp::Sub => (0b0100000, 0b000, OP_REG),
                AluOp::Sll => (0b0000000, 0b001, OP_REG),
                AluOp::Slt => (0b0000000, 0b010, OP_REG),
                AluOp::Sltu => (0b0000000, 0b011, OP_REG),
                AluOp::Xor => (0b0000000, 0b100, OP_REG),
                AluOp::Srl => (0b0000000, 0b101, OP_REG),
                AluOp::Sra => (0b0100000, 0b101, OP_REG),
                AluOp::Or => (0b0000000, 0b110, OP_REG),
                AluOp::And => (0b0000000, 0b111, OP_REG),
                AluOp::AddW => (0b0000000, 0b000, OP_REG32),
                AluOp::SubW => (0b0100000, 0b000, OP_REG32),
                AluOp::SllW => (0b0000000, 0b001, OP_REG32),
                AluOp::SrlW => (0b0000000, 0b101, OP_REG32),
                AluOp::SraW => (0b0100000, 0b101, OP_REG32),
                AluOp::Mul => (0b0000001, 0b000, OP_REG),
                AluOp::Mulh => (0b0000001, 0b001, OP_REG),
                AluOp::Mulhu => (0b0000001, 0b011, OP_REG),
                AluOp::Div => (0b0000001, 0b100, OP_REG),
                AluOp::Divu => (0b0000001, 0b101, OP_REG),
                AluOp::Rem => (0b0000001, 0b110, OP_REG),
                AluOp::Remu => (0b0000001, 0b111, OP_REG),
                AluOp::MulW => (0b0000001, 0b000, OP_REG32),
                AluOp::DivW => (0b0000001, 0b100, OP_REG32),
                AluOp::DivuW => (0b0000001, 0b101, OP_REG32),
                AluOp::RemW => (0b0000001, 0b110, OP_REG32),
                AluOp::RemuW => (0b0000001, 0b111, OP_REG32),
            };
            r_type(f7, rs2, rs1, f3, rd, opc)
        }
        Instr::FLoad { rd, rs1, offset } => i_type(offset, rs1, 0b011, rd, OP_FLOAD),
        Instr::FStore { rs2, rs1, offset } => s_type(offset, rs2, rs1, 0b011, OP_FSTORE),
        Instr::Fp { op, rd, rs1, rs2 } => {
            let f7 = match op {
                FpOp::FaddD => 0b0000001,
                FpOp::FsubD => 0b0000101,
                FpOp::FmulD => 0b0001001,
                FpOp::FdivD => 0b0001101,
            };
            // rm = 0b111 (dynamic rounding).
            r_type(f7, rs2, rs1, 0b111, rd, OP_FP)
        }
        Instr::FmvDX { rd, rs1 } => r_type(0b1111001, Reg(0), rs1, 0b000, rd, OP_FP),
        Instr::FmvXD { rd, rs1 } => r_type(0b1110001, Reg(0), rs1, 0b000, rd, OP_FP),
        Instr::Fence => i_type(0, Reg::ZERO, 0b000, Reg::ZERO, OP_MISC_MEM),
        Instr::Ecall => i_type(0, Reg::ZERO, 0b000, Reg::ZERO, OP_SYSTEM),
        Instr::Ebreak => i_type(1, Reg::ZERO, 0b000, Reg::ZERO, OP_SYSTEM),
        Instr::Illegal(w) => w,
    }
}

#[inline]
fn rd(w: u32) -> Reg {
    Reg(((w >> 7) & 31) as u8)
}
#[inline]
fn rs1(w: u32) -> Reg {
    Reg(((w >> 15) & 31) as u8)
}
#[inline]
fn rs2(w: u32) -> Reg {
    Reg(((w >> 20) & 31) as u8)
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 7
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}
#[inline]
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}
#[inline]
fn imm_b(w: u32) -> i64 {
    let imm = (((w >> 31) & 1) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3F) << 5)
        | (((w >> 8) & 0xF) << 1);
    ((imm as i32) << 19 >> 19) as i64
}
#[inline]
fn imm_u(w: u32) -> i64 {
    ((w & 0xFFFF_F000) as i32) as i64
}
#[inline]
fn imm_j(w: u32) -> i64 {
    let imm = (((w >> 31) & 1) << 20)
        | (((w >> 12) & 0xFF) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3FF) << 1);
    ((imm as i32) << 11 >> 11) as i64
}

/// Decodes a 32-bit word into an instruction; undecodable words become
/// [`Instr::Illegal`] (which raises an illegal-instruction exception when
/// executed — the paper's "illegal" transient-window trigger type).
pub fn decode(w: u32) -> Instr {
    match w & 0x7F {
        OP_LUI => Instr::Lui {
            rd: rd(w),
            imm: imm_u(w),
        },
        OP_AUIPC => Instr::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        },
        OP_JAL => Instr::Jal {
            rd: rd(w),
            offset: imm_j(w),
        },
        OP_JALR if funct3(w) == 0 => Instr::Jalr {
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        },
        OP_BRANCH => {
            let op = match funct3(w) {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return Instr::Illegal(w),
            };
            Instr::Branch {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            }
        }
        OP_LOAD => {
            let op = match funct3(w) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b011 => LoadOp::Ld,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                0b110 => LoadOp::Lwu,
                _ => return Instr::Illegal(w),
            };
            Instr::Load {
                op,
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            }
        }
        OP_STORE => {
            let op = match funct3(w) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                0b011 => StoreOp::Sd,
                _ => return Instr::Illegal(w),
            };
            Instr::Store {
                op,
                rs2: rs2(w),
                rs1: rs1(w),
                offset: imm_s_full(w),
            }
        }
        OP_IMM => {
            let imm = imm_i(w);
            let op = match funct3(w) {
                0b000 => AluOp::Add,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                0b001 if funct7(w) >> 1 == 0 => {
                    return Instr::OpImm {
                        op: AluOp::Sll,
                        rd: rd(w),
                        rs1: rs1(w),
                        imm: imm & 0x3F,
                    }
                }
                0b101 if funct7(w) >> 1 == 0 => {
                    return Instr::OpImm {
                        op: AluOp::Srl,
                        rd: rd(w),
                        rs1: rs1(w),
                        imm: imm & 0x3F,
                    }
                }
                0b101 if funct7(w) >> 1 == 0b010000 => {
                    return Instr::OpImm {
                        op: AluOp::Sra,
                        rd: rd(w),
                        rs1: rs1(w),
                        imm: imm & 0x3F,
                    }
                }
                _ => return Instr::Illegal(w),
            };
            Instr::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            }
        }
        OP_IMM32 => {
            let imm = imm_i(w);
            match funct3(w) {
                0b000 => Instr::OpImm {
                    op: AluOp::AddW,
                    rd: rd(w),
                    rs1: rs1(w),
                    imm,
                },
                0b001 if funct7(w) == 0 => Instr::OpImm {
                    op: AluOp::SllW,
                    rd: rd(w),
                    rs1: rs1(w),
                    imm: imm & 0x1F,
                },
                0b101 if funct7(w) == 0 => Instr::OpImm {
                    op: AluOp::SrlW,
                    rd: rd(w),
                    rs1: rs1(w),
                    imm: imm & 0x1F,
                },
                0b101 if funct7(w) == 0b0100000 => Instr::OpImm {
                    op: AluOp::SraW,
                    rd: rd(w),
                    rs1: rs1(w),
                    imm: imm & 0x1F,
                },
                _ => Instr::Illegal(w),
            }
        }
        OP_REG => {
            let op = match (funct7(w), funct3(w)) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                (0b0000001, 0b000) => AluOp::Mul,
                (0b0000001, 0b001) => AluOp::Mulh,
                (0b0000001, 0b011) => AluOp::Mulhu,
                (0b0000001, 0b100) => AluOp::Div,
                (0b0000001, 0b101) => AluOp::Divu,
                (0b0000001, 0b110) => AluOp::Rem,
                (0b0000001, 0b111) => AluOp::Remu,
                _ => return Instr::Illegal(w),
            };
            Instr::Op {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        OP_REG32 => {
            let op = match (funct7(w), funct3(w)) {
                (0b0000000, 0b000) => AluOp::AddW,
                (0b0100000, 0b000) => AluOp::SubW,
                (0b0000000, 0b001) => AluOp::SllW,
                (0b0000000, 0b101) => AluOp::SrlW,
                (0b0100000, 0b101) => AluOp::SraW,
                (0b0000001, 0b000) => AluOp::MulW,
                (0b0000001, 0b100) => AluOp::DivW,
                (0b0000001, 0b101) => AluOp::DivuW,
                (0b0000001, 0b110) => AluOp::RemW,
                (0b0000001, 0b111) => AluOp::RemuW,
                _ => return Instr::Illegal(w),
            };
            Instr::Op {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        OP_FLOAD if funct3(w) == 0b011 => Instr::FLoad {
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        },
        OP_FSTORE if funct3(w) == 0b011 => Instr::FStore {
            rs2: rs2(w),
            rs1: rs1(w),
            offset: imm_s_full(w),
        },
        OP_FP => match funct7(w) {
            0b0000001 => Instr::Fp {
                op: FpOp::FaddD,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            },
            0b0000101 => Instr::Fp {
                op: FpOp::FsubD,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            },
            0b0001001 => Instr::Fp {
                op: FpOp::FmulD,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            },
            0b0001101 => Instr::Fp {
                op: FpOp::FdivD,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            },
            0b1111001 if rs2(w) == Reg(0) => Instr::FmvDX {
                rd: rd(w),
                rs1: rs1(w),
            },
            0b1110001 if rs2(w) == Reg(0) => Instr::FmvXD {
                rd: rd(w),
                rs1: rs1(w),
            },
            _ => Instr::Illegal(w),
        },
        OP_MISC_MEM => Instr::Fence,
        OP_SYSTEM if w == encode(Instr::Ecall) => Instr::Ecall,
        OP_SYSTEM if w == encode(Instr::Ebreak) => Instr::Ebreak,
        _ => Instr::Illegal(w),
    }
}

#[inline]
fn imm_s_full(w: u32) -> i64 {
    let imm = ((w >> 25) << 5) | ((w >> 7) & 0x1F);
    ((imm as i32) << 20 >> 20) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = encode(i);
        let d = decode(w);
        assert_eq!(d, i, "round-trip failed for {i} (word {w:#010x})");
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(Instr::NOP);
        roundtrip(Instr::addi(Reg::A0, Reg::A1, -5));
        roundtrip(Instr::Lui {
            rd: Reg::T0,
            imm: 0x12345 << 12,
        });
        roundtrip(Instr::Auipc {
            rd: Reg::T0,
            imm: -4096,
        });
        roundtrip(Instr::Ecall);
        roundtrip(Instr::Ebreak);
        roundtrip(Instr::Fence);
    }

    #[test]
    fn roundtrip_control() {
        roundtrip(Instr::Jal {
            rd: Reg::RA,
            offset: 2048,
        });
        roundtrip(Instr::Jal {
            rd: Reg::ZERO,
            offset: -4,
        });
        roundtrip(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        });
        roundtrip(Instr::Jalr {
            rd: Reg::T1,
            rs1: Reg::A0,
            offset: -16,
        });
        for op in BranchOp::ALL {
            roundtrip(Instr::Branch {
                op,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -64,
            });
            roundtrip(Instr::Branch {
                op,
                rs1: Reg::S0,
                rs2: Reg::T6,
                offset: 4094,
            });
        }
    }

    #[test]
    fn roundtrip_memory() {
        for op in LoadOp::ALL {
            roundtrip(Instr::Load {
                op,
                rd: Reg::S1,
                rs1: Reg::SP,
                offset: -2048,
            });
            roundtrip(Instr::Load {
                op,
                rd: Reg::S1,
                rs1: Reg::SP,
                offset: 2047,
            });
        }
        for op in StoreOp::ALL {
            roundtrip(Instr::Store {
                op,
                rs2: Reg::A2,
                rs1: Reg::GP,
                offset: -1,
            });
            roundtrip(Instr::Store {
                op,
                rs2: Reg::A2,
                rs1: Reg::GP,
                offset: 8,
            });
        }
        roundtrip(Instr::FLoad {
            rd: Reg(7),
            rs1: Reg::SP,
            offset: 24,
        });
        roundtrip(Instr::FStore {
            rs2: Reg(7),
            rs1: Reg::SP,
            offset: -24,
        });
    }

    #[test]
    fn roundtrip_alu() {
        use AluOp::*;
        for op in [
            Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And, AddW, SubW, SllW, SrlW, SraW, Mul,
            Mulh, Mulhu, Div, Divu, Rem, Remu, MulW, DivW, DivuW, RemW, RemuW,
        ] {
            roundtrip(Instr::Op {
                op,
                rd: Reg::T3,
                rs1: Reg::T4,
                rs2: Reg::T5,
            });
        }
        for op in [Add, Slt, Sltu, Xor, Or, And] {
            roundtrip(Instr::OpImm {
                op,
                rd: Reg::T3,
                rs1: Reg::T4,
                imm: 2047,
            });
            roundtrip(Instr::OpImm {
                op,
                rd: Reg::T3,
                rs1: Reg::T4,
                imm: -2048,
            });
        }
        for op in [Sll, Srl, Sra] {
            roundtrip(Instr::OpImm {
                op,
                rd: Reg::T3,
                rs1: Reg::T4,
                imm: 63,
            });
        }
        roundtrip(Instr::OpImm {
            op: AddW,
            rd: Reg::T3,
            rs1: Reg::T4,
            imm: -1,
        });
        for op in [SllW, SrlW, SraW] {
            roundtrip(Instr::OpImm {
                op,
                rd: Reg::T3,
                rs1: Reg::T4,
                imm: 31,
            });
        }
    }

    #[test]
    fn roundtrip_fp() {
        use FpOp::*;
        for op in [FaddD, FsubD, FmulD, FdivD] {
            roundtrip(Instr::Fp {
                op,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3),
            });
        }
        roundtrip(Instr::FmvDX {
            rd: Reg(4),
            rs1: Reg::A0,
        });
        roundtrip(Instr::FmvXD {
            rd: Reg::A0,
            rs1: Reg(4),
        });
    }

    #[test]
    fn known_encodings_match_spec() {
        // Cross-checked against the RISC-V spec / binutils.
        assert_eq!(encode(Instr::NOP), 0x0000_0013);
        assert_eq!(encode(Instr::Ecall), 0x0000_0073);
        assert_eq!(encode(Instr::Ebreak), 0x0010_0073);
        assert_eq!(encode(Instr::ret()), 0x0000_8067);
        // addi a0, a0, 1 == 0x00150513
        assert_eq!(encode(Instr::addi(Reg::A0, Reg::A0, 1)), 0x0015_0513);
        // ld s0, 0(t0) == 0x0002b403
        assert_eq!(encode(Instr::ld(Reg::S0, Reg::T0, 0)), 0x0002_b403);
        // beq a0, a0, +16 == 0x00a50863
        assert_eq!(
            encode(Instr::Branch {
                op: BranchOp::Beq,
                rs1: Reg::A0,
                rs2: Reg::A0,
                offset: 16
            }),
            0x00a5_0863
        );
    }

    #[test]
    fn garbage_decodes_to_illegal() {
        assert!(matches!(decode(0xFFFF_FFFF), Instr::Illegal(_)));
        assert!(matches!(decode(0x0000_0000), Instr::Illegal(_)));
        // An illegal word round-trips as itself.
        assert_eq!(encode(decode(0xDEAD_BEEF)), 0xDEAD_BEEF);
    }

    #[test]
    fn branch_offset_sign_extension() {
        let i = Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -4096,
        };
        assert_eq!(decode(encode(i)), i);
    }

    #[test]
    fn jal_offset_extremes() {
        for off in [-(1i64 << 20), (1i64 << 20) - 2, 0, 2] {
            let i = Instr::Jal {
                rd: Reg::RA,
                offset: off,
            };
            assert_eq!(decode(encode(i)), i, "offset {off}");
        }
    }
}
