//! A small label-aware assembler for building stimulus images.

use std::collections::HashMap;
use std::fmt;

use crate::encode::encode;
use crate::instr::{Instr, Reg};

/// An assembled program: a base address plus 32-bit instruction words.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Address of the first word.
    pub base: u64,
    /// Encoded instruction words, contiguous from `base`.
    pub words: Vec<u32>,
}

impl Program {
    /// Byte length of the program image.
    pub fn len_bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// The address one past the last instruction.
    pub fn end(&self) -> u64 {
        self.base + self.len_bytes()
    }

    /// Iterates `(address, word)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.words
            .iter()
            .enumerate()
            .map(move |(i, &w)| (self.base + 4 * i as u64, w))
    }

    /// Disassembles for reports.
    pub fn listing(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        for (addr, w) in self.iter() {
            let _ = writeln!(s, "{addr:#010x}: {}", crate::encode::decode(w));
        }
        s
    }
}

/// A pending instruction: either final or awaiting label resolution.
#[derive(Clone, Debug)]
enum Pending {
    Done(Instr),
    /// Branch to a label; patched with the PC-relative offset.
    BranchTo {
        template: Instr,
        label: String,
    },
    /// `jal`/`auipc`-style PC-relative reference to a label.
    JumpTo {
        template: Instr,
        label: String,
    },
    /// Materialise an absolute 64-bit address into `rd` via `lui`+`addi`
    /// (`la`-lite; occupies two slots, this is the first).
    LaHigh {
        rd: Reg,
        label: String,
    },
    /// Second slot of `la`.
    LaLow {
        rd: Reg,
        label: String,
    },
}

/// Builds a [`Program`] with forward label references.
///
/// Mirrors the tiny subset of assembler functionality the paper's generator
/// needs: sequential emission, labels, `la`, alignment padding with `nop`s
/// and absolute-address pinning (training instructions must sit at the same
/// address as the trigger instruction, §4.1.1).
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    base: u64,
    items: Vec<Pending>,
    labels: HashMap<String, u64>,
}

impl ProgramBuilder {
    /// Starts a program at `base` (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn new(base: u64) -> Self {
        assert_eq!(base % 4, 0, "program base must be 4-byte aligned");
        ProgramBuilder {
            base,
            items: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// The address the next pushed instruction will occupy.
    pub fn here(&self) -> u64 {
        self.base + self.items.len() as u64 * 4
    }

    /// Number of instruction slots emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Emits one instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.items.push(Pending::Done(i));
        self
    }

    /// Emits `n` `nop`s.
    pub fn nops(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.push(Instr::NOP);
        }
        self
    }

    /// Pads with `nop`s until the next instruction will sit at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is behind the current position or misaligned.
    pub fn pad_to(&mut self, addr: u64) -> &mut Self {
        assert_eq!(addr % 4, 0, "pad target must be 4-byte aligned");
        assert!(
            addr >= self.here(),
            "pad_to({addr:#x}) is behind cursor {:#x}",
            self.here()
        );
        while self.here() < addr {
            self.push(Instr::NOP);
        }
        self
    }

    /// Defines `label` at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate label definition.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let l = label.into();
        let prev = self.labels.insert(l.clone(), self.here());
        assert!(prev.is_none(), "duplicate label {l:?}");
        self
    }

    /// Defines `label` at an arbitrary absolute address (e.g. a data symbol
    /// in another region).
    pub fn label_at(&mut self, label: impl Into<String>, addr: u64) -> &mut Self {
        self.labels.insert(label.into(), addr);
        self
    }

    /// Emits a branch whose offset is patched to reach `label`.
    pub fn branch_to(&mut self, template: Instr, label: impl Into<String>) -> &mut Self {
        assert!(
            matches!(template, Instr::Branch { .. }),
            "branch_to needs a Branch template"
        );
        self.items.push(Pending::BranchTo {
            template,
            label: label.into(),
        });
        self
    }

    /// Emits a `jal` whose offset is patched to reach `label`.
    pub fn jal_to(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Pending::JumpTo {
            template: Instr::Jal { rd, offset: 0 },
            label: label.into(),
        });
        self
    }

    /// Emits the two-instruction `la rd, label` sequence
    /// (`lui`+`addi`), resolving to the label's absolute address.
    pub fn la(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        self.items.push(Pending::LaHigh {
            rd,
            label: label.clone(),
        });
        self.items.push(Pending::LaLow { rd, label });
        self
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics on undefined labels or out-of-range branch offsets, which
    /// indicate a generator bug rather than an interesting stimulus.
    pub fn assemble(&self) -> Program {
        let resolve = |l: &String| -> u64 {
            *self
                .labels
                .get(l)
                .unwrap_or_else(|| panic!("undefined label {l:?}"))
        };
        let mut words = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let pc = self.base + idx as u64 * 4;
            let instr = match item {
                Pending::Done(i) => *i,
                Pending::BranchTo { template, label } => {
                    let off = resolve(label) as i64 - pc as i64;
                    assert!(
                        (-4096..4096).contains(&off),
                        "branch offset {off} out of range"
                    );
                    match *template {
                        Instr::Branch { op, rs1, rs2, .. } => Instr::Branch {
                            op,
                            rs1,
                            rs2,
                            offset: off,
                        },
                        _ => unreachable!(),
                    }
                }
                Pending::JumpTo { template, label } => {
                    let off = resolve(label) as i64 - pc as i64;
                    assert!(
                        (-(1 << 20)..(1 << 20)).contains(&off),
                        "jal offset {off} out of range"
                    );
                    match *template {
                        Instr::Jal { rd, .. } => Instr::Jal { rd, offset: off },
                        _ => unreachable!(),
                    }
                }
                Pending::LaHigh { rd, label } => {
                    let target = resolve(label);
                    let (hi, _lo) = la_split(target);
                    Instr::Lui { rd: *rd, imm: hi }
                }
                Pending::LaLow { rd, label } => {
                    let target = resolve(label);
                    let (_hi, lo) = la_split(target);
                    Instr::addi(*rd, *rd, lo)
                }
            };
            words.push(encode(instr));
        }
        Program {
            base: self.base,
            words,
        }
    }
}

/// Splits an absolute address into `lui`/`addi` halves, compensating for the
/// sign extension of the 12-bit low part.
fn la_split(addr: u64) -> (i64, i64) {
    let lo = ((addr & 0xFFF) as i64) << 52 >> 52; // sign-extend 12 bits
    let hi = (addr as i64).wrapping_sub(lo) & 0xFFFF_F000u64 as i64;
    (hi as i32 as i64, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;
    use crate::instr::BranchOp;

    #[test]
    fn sequential_emission() {
        let mut b = ProgramBuilder::new(0x1000);
        b.push(Instr::NOP).push(Instr::Ebreak);
        let p = b.assemble();
        assert_eq!(p.base, 0x1000);
        assert_eq!(p.words.len(), 2);
        assert_eq!(p.end(), 0x1008);
        assert_eq!(decode(p.words[1]), Instr::Ebreak);
    }

    #[test]
    fn forward_branch_resolution() {
        let mut b = ProgramBuilder::new(0x0);
        b.branch_to(
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::A0,
                offset: 0,
            },
            "skip",
        );
        b.nops(3);
        b.label("skip");
        b.push(Instr::Ebreak);
        let p = b.assemble();
        match decode(p.words[0]) {
            Instr::Branch { offset, .. } => assert_eq!(offset, 16),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn backward_jump_resolution() {
        let mut b = ProgramBuilder::new(0x100);
        b.label("loop");
        b.nops(2);
        b.jal_to(Reg::ZERO, "loop");
        let p = b.assemble();
        match decode(p.words[2]) {
            Instr::Jal { offset, .. } => assert_eq!(offset, -8),
            other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn la_materialises_absolute_addresses() {
        for addr in [0x2000u64, 0x2FF8, 0x1234_5678, 0x8000_0800] {
            let mut b = ProgramBuilder::new(0x0);
            b.label_at("sym", addr);
            b.la(Reg::T0, "sym");
            let p = b.assemble();
            let (lui, addi) = (decode(p.words[0]), decode(p.words[1]));
            let hi = match lui {
                Instr::Lui { imm, .. } => imm,
                other => panic!("expected lui, got {other}"),
            };
            let lo = match addi {
                Instr::OpImm { imm, .. } => imm,
                other => panic!("expected addi, got {other}"),
            };
            assert_eq!(
                (hi.wrapping_add(lo)) as u64 & 0xFFFF_FFFF,
                addr & 0xFFFF_FFFF,
                "la split wrong for {addr:#x}"
            );
        }
    }

    #[test]
    fn pad_to_aligns_with_nops() {
        let mut b = ProgramBuilder::new(0x1000);
        b.push(Instr::Ebreak);
        b.pad_to(0x1010);
        assert_eq!(b.here(), 0x1010);
        let p = b.assemble();
        assert_eq!(decode(p.words[2]), Instr::NOP);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new(0);
        b.label("x").label("x");
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut b = ProgramBuilder::new(0);
        b.jal_to(Reg::ZERO, "nowhere");
        b.assemble();
    }

    #[test]
    fn listing_renders_addresses() {
        let mut b = ProgramBuilder::new(0x1010);
        b.push(Instr::ret());
        let l = b.assemble().listing();
        assert!(l.contains("0x00001010: ret"), "got {l}");
    }

    #[test]
    fn program_iter_addresses() {
        let mut b = ProgramBuilder::new(0x40);
        b.nops(2);
        let p = b.assemble();
        let addrs: Vec<u64> = p.iter().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x40, 0x44]);
    }
}
