//! RV64 instruction-set substrate for the DejaVuzz reproduction.
//!
//! The paper's stimulus generator "supports the RV64GC instruction set and
//! covers common transient window types", and Phase 1 "uses an ISA simulator
//! to compute the operands required to trigger the transient window". This
//! crate provides both halves:
//!
//! * a structured instruction model ([`Instr`]) with *real* RISC-V
//!   encodings ([`encode()`]/[`decode`]) covering RV64IM plus the
//!   double-precision floating-point operations the port-contention bugs
//!   need (`fdiv.d` et al.), branches, jumps, loads/stores and the
//!   exception-raising instructions (illegal opcodes, `ecall`, `ebreak`,
//!   misaligned/faulting accesses),
//! * an assembler-style [`asm::ProgramBuilder`] with labels, and
//! * an architectural golden simulator ([`sim::IsaSim`]) that executes
//!   committed semantics only — no speculation — and reports architectural
//!   exceptions precisely.
//!
//! # Example
//!
//! ```
//! use dejavuzz_isa::asm::ProgramBuilder;
//! use dejavuzz_isa::instr::{Instr, Reg};
//! use dejavuzz_isa::sim::{FlatMem, IsaSim, StepOutcome};
//!
//! let mut p = ProgramBuilder::new(0x1000);
//! p.push(Instr::addi(Reg::A0, Reg::ZERO, 41));
//! p.push(Instr::addi(Reg::A0, Reg::A0, 1));
//! p.push(Instr::Ebreak);
//! let prog = p.assemble();
//!
//! let mut mem = FlatMem::new(0x1000, 0x1000);
//! mem.load_program(&prog);
//! let mut sim = IsaSim::new(0x1000);
//! while let dejavuzz_isa::sim::StepOutcome::Retired { .. } = sim.step(&mut mem) {}
//! assert_eq!(sim.reg(Reg::A0), 42);
//! # let _ = StepOutcome::Retired { next_pc: 0 };
//! ```

pub mod asm;
pub mod encode;
pub mod instr;
pub mod sim;

pub use asm::{Program, ProgramBuilder};
pub use encode::{decode, encode};
pub use instr::{AluOp, BranchOp, FpOp, Instr, LoadOp, Reg, StoreOp};
pub use sim::{Exception, FlatMem, IsaSim, MemoryIf, Perms, StepOutcome};
