//! The architectural golden simulator and the memory interface.
//!
//! Phase 1 of DejaVuzz "uses an ISA simulator to compute the operands
//! required to trigger the transient window and generate the related
//! register initialization instructions" — this is that simulator. It
//! executes committed semantics only: no speculation, no timing. The
//! microarchitectural model in `dejavuzz-uarch` is differentially tested
//! against it (co-simulation) in the integration suite.

use crate::encode::decode;
use crate::instr::{Instr, Reg};
use crate::Program;

/// Architectural exceptions, with the faulting address where relevant.
///
/// The variants map one-to-one onto the paper's transient-window trigger
/// categories "instructions that may trigger architectural exceptions".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Exception {
    /// Instruction fetch from an unmapped/unfetchable address.
    FetchAccessFault(u64),
    /// Load from an unmapped address.
    LoadAccessFault(u64),
    /// Store to an unmapped address.
    StoreAccessFault(u64),
    /// Load from a mapped page without read permission.
    LoadPageFault(u64),
    /// Store to a mapped page without write permission.
    StorePageFault(u64),
    /// Misaligned load.
    LoadMisaligned(u64),
    /// Misaligned store.
    StoreMisaligned(u64),
    /// Undecodable instruction word.
    IllegalInstruction(u32),
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
}

impl Exception {
    /// True for the memory-exception family (`mem-excp` in Table 5).
    pub fn is_mem(self) -> bool {
        !matches!(
            self,
            Exception::IllegalInstruction(_) | Exception::Ecall | Exception::Ebreak
        )
    }

    /// A short mnemonic used in reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Exception::FetchAccessFault(_) => "fetch-access-fault",
            Exception::LoadAccessFault(_) => "load-access-fault",
            Exception::StoreAccessFault(_) => "store-access-fault",
            Exception::LoadPageFault(_) => "load-page-fault",
            Exception::StorePageFault(_) => "store-page-fault",
            Exception::LoadMisaligned(_) => "load-misalign",
            Exception::StoreMisaligned(_) => "store-misalign",
            Exception::IllegalInstruction(_) => "illegal-instruction",
            Exception::Ecall => "ecall",
            Exception::Ebreak => "ebreak",
        }
    }
}

/// Byte-granular access permissions for a memory range.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Perms {
    /// Readable by loads.
    pub read: bool,
    /// Writable by stores.
    pub write: bool,
    /// Fetchable by the frontend.
    pub exec: bool,
}

impl Perms {
    /// Read+write+execute.
    pub const RWX: Perms = Perms {
        read: true,
        write: true,
        exec: true,
    };
    /// Read+write, no execute.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-only.
    pub const R: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
    /// No access — loads raise page faults (the "secret" permission state
    /// swapMem installs before the transient sequence runs).
    pub const NONE: Perms = Perms {
        read: false,
        write: false,
        exec: false,
    };
}

/// The memory seen by a hart: loads, stores and fetches, each of which may
/// fault. Implemented by [`FlatMem`] here and by the swapMem model in
/// `dejavuzz-swapmem`.
pub trait MemoryIf {
    /// Loads `size` bytes (1/2/4/8), little-endian, zero-extended.
    fn load(&mut self, addr: u64, size: u64) -> Result<u64, Exception>;
    /// Stores the low `size` bytes of `val`, little-endian.
    fn store(&mut self, addr: u64, size: u64, val: u64) -> Result<(), Exception>;
    /// Fetches one 32-bit instruction word.
    fn fetch(&mut self, addr: u64) -> Result<u32, Exception>;
}

/// A flat RAM with a base address and optional per-range permissions.
#[derive(Clone, Debug)]
pub struct FlatMem {
    base: u64,
    bytes: Vec<u8>,
    perm_ranges: Vec<(u64, u64, Perms)>,
}

impl FlatMem {
    /// A zeroed RWX memory covering `[base, base+len)`.
    pub fn new(base: u64, len: usize) -> Self {
        FlatMem {
            base,
            bytes: vec![0; len],
            perm_ranges: Vec::new(),
        }
    }

    /// Installs `perms` on `[start, end)`, overriding the RWX default and
    /// earlier overlapping ranges.
    pub fn set_perms(&mut self, start: u64, end: u64, perms: Perms) {
        self.perm_ranges.push((start, end, perms));
    }

    /// Copies an assembled program into the RAM.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit.
    pub fn load_program(&mut self, p: &Program) {
        for (addr, w) in p.iter() {
            let off = (addr - self.base) as usize;
            self.bytes[off..off + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Writes raw bytes at an absolute address (data regions, secrets).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let off = (addr - self.base) as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }

    /// Reads one byte for assertions in tests.
    pub fn read_byte(&self, addr: u64) -> u8 {
        self.bytes[(addr - self.base) as usize]
    }

    fn perms_at(&self, addr: u64) -> Perms {
        // Later ranges override earlier ones.
        let mut p = Perms::RWX;
        for &(s, e, perms) in &self.perm_ranges {
            if addr >= s && addr < e {
                p = perms;
            }
        }
        p
    }

    fn in_range(&self, addr: u64, size: u64) -> bool {
        addr >= self.base && addr + size <= self.base + self.bytes.len() as u64
    }
}

impl MemoryIf for FlatMem {
    fn load(&mut self, addr: u64, size: u64) -> Result<u64, Exception> {
        if !addr.is_multiple_of(size) {
            return Err(Exception::LoadMisaligned(addr));
        }
        if !self.in_range(addr, size) {
            return Err(Exception::LoadAccessFault(addr));
        }
        if !self.perms_at(addr).read {
            return Err(Exception::LoadPageFault(addr));
        }
        let off = (addr - self.base) as usize;
        let mut v = 0u64;
        for i in (0..size as usize).rev() {
            v = (v << 8) | self.bytes[off + i] as u64;
        }
        Ok(v)
    }

    fn store(&mut self, addr: u64, size: u64, val: u64) -> Result<(), Exception> {
        if !addr.is_multiple_of(size) {
            return Err(Exception::StoreMisaligned(addr));
        }
        if !self.in_range(addr, size) {
            return Err(Exception::StoreAccessFault(addr));
        }
        if !self.perms_at(addr).write {
            return Err(Exception::StorePageFault(addr));
        }
        let off = (addr - self.base) as usize;
        for i in 0..size as usize {
            self.bytes[off + i] = (val >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn fetch(&mut self, addr: u64) -> Result<u32, Exception> {
        if !self.in_range(addr, 4) || !addr.is_multiple_of(4) {
            return Err(Exception::FetchAccessFault(addr));
        }
        if !self.perms_at(addr).exec {
            return Err(Exception::FetchAccessFault(addr));
        }
        let off = (addr - self.base) as usize;
        Ok(u32::from_le_bytes([
            self.bytes[off],
            self.bytes[off + 1],
            self.bytes[off + 2],
            self.bytes[off + 3],
        ]))
    }
}

/// Outcome of one architectural step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired; execution continues at `next_pc`.
    Retired { next_pc: u64 },
    /// The instruction trapped with an architectural exception. The
    /// simulator's PC is left at the faulting instruction; the caller
    /// decides where the trap vector is.
    Trap(Exception),
}

/// The architectural (in-order, exact) RV64 simulator.
#[derive(Clone, Debug)]
pub struct IsaSim {
    regs: [u64; 32],
    fregs: [u64; 32],
    pc: u64,
    retired: u64,
}

impl IsaSim {
    /// A fresh hart with zeroed registers starting at `pc`.
    pub fn new(pc: u64) -> Self {
        IsaSim {
            regs: [0; 32],
            fregs: [0; 32],
            pc,
            retired: 0,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Redirects the PC (trap vector entry, swap continuation, …).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Reads an integer register (x0 is always 0).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an integer register (writes to x0 are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// Reads an FP register's raw bits.
    pub fn freg(&self, r: Reg) -> u64 {
        self.fregs[r.index()]
    }

    /// Writes an FP register's raw bits.
    pub fn set_freg(&mut self, r: Reg, v: u64) {
        self.fregs[r.index()] = v;
    }

    /// Number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes one instruction against `mem`.
    pub fn step(&mut self, mem: &mut impl MemoryIf) -> StepOutcome {
        let word = match mem.fetch(self.pc) {
            Ok(w) => w,
            Err(e) => return StepOutcome::Trap(e),
        };
        let instr = decode(word);
        match self.exec(instr, mem) {
            Ok(next_pc) => {
                self.pc = next_pc;
                self.retired += 1;
                StepOutcome::Retired { next_pc }
            }
            Err(e) => StepOutcome::Trap(e),
        }
    }

    /// Executes a decoded instruction, returning the next PC.
    pub fn exec(&mut self, instr: Instr, mem: &mut impl MemoryIf) -> Result<u64, Exception> {
        let pc = self.pc;
        let next = pc.wrapping_add(4);
        match instr {
            Instr::Lui { rd, imm } => {
                self.set_reg(rd, imm as u64);
                Ok(next)
            }
            Instr::Auipc { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(imm as u64));
                Ok(next)
            }
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, next);
                Ok(pc.wrapping_add(offset as u64))
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                self.set_reg(rd, next);
                Ok(target)
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                if op.taken(self.reg(rs1), self.reg(rs2)) {
                    Ok(pc.wrapping_add(offset as u64))
                } else {
                    Ok(next)
                }
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                let raw = mem.load(addr, op.size())?;
                self.set_reg(rd, op.extend(raw));
                Ok(next)
            }
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                mem.store(addr, op.size(), self.reg(rs2))?;
                Ok(next)
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                self.set_reg(rd, op.eval(self.reg(rs1), imm as u64));
                Ok(next)
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2)));
                Ok(next)
            }
            Instr::FLoad { rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                let raw = mem.load(addr, 8)?;
                self.set_freg(rd, raw);
                Ok(next)
            }
            Instr::FStore { rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                mem.store(addr, 8, self.freg(rs2))?;
                Ok(next)
            }
            Instr::Fp { op, rd, rs1, rs2 } => {
                self.set_freg(rd, op.eval(self.freg(rs1), self.freg(rs2)));
                Ok(next)
            }
            Instr::FmvDX { rd, rs1 } => {
                self.set_freg(rd, self.reg(rs1));
                Ok(next)
            }
            Instr::FmvXD { rd, rs1 } => {
                self.set_reg(rd, self.freg(rs1));
                Ok(next)
            }
            Instr::Fence => Ok(next),
            Instr::Ecall => Err(Exception::Ecall),
            Instr::Ebreak => Err(Exception::Ebreak),
            Instr::Illegal(w) => Err(Exception::IllegalInstruction(w)),
        }
    }

    /// Runs until a trap or until `max_steps` instructions retire.
    /// Returns the trap, or `None` if the step budget ran out.
    pub fn run(&mut self, mem: &mut impl MemoryIf, max_steps: u64) -> Option<Exception> {
        for _ in 0..max_steps {
            match self.step(mem) {
                StepOutcome::Retired { .. } => {}
                StepOutcome::Trap(e) => return Some(e),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::instr::{AluOp, BranchOp, LoadOp};

    fn run_prog(build: impl FnOnce(&mut ProgramBuilder)) -> (IsaSim, FlatMem, Option<Exception>) {
        let mut b = ProgramBuilder::new(0x1000);
        build(&mut b);
        let p = b.assemble();
        let mut mem = FlatMem::new(0x1000, 0x4000);
        mem.load_program(&p);
        let mut sim = IsaSim::new(0x1000);
        let trap = sim.run(&mut mem, 10_000);
        (sim, mem, trap)
    }

    #[test]
    fn arithmetic_and_ebreak() {
        let (sim, _, trap) = run_prog(|b| {
            b.push(Instr::addi(Reg::A0, Reg::ZERO, 20));
            b.push(Instr::addi(Reg::A1, Reg::ZERO, 22));
            b.push(Instr::Op {
                op: AluOp::Add,
                rd: Reg::A2,
                rs1: Reg::A0,
                rs2: Reg::A1,
            });
            b.push(Instr::Ebreak);
        });
        assert_eq!(trap, Some(Exception::Ebreak));
        assert_eq!(sim.reg(Reg::A2), 42);
        assert_eq!(sim.retired(), 3);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (sim, _, _) = run_prog(|b| {
            b.push(Instr::addi(Reg::ZERO, Reg::ZERO, 99));
            b.push(Instr::Ebreak);
        });
        assert_eq!(sim.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let (sim, mem, _) = run_prog(|b| {
            b.label_at("data", 0x3000);
            b.la(Reg::T0, "data");
            b.push(Instr::addi(Reg::T1, Reg::ZERO, -1));
            b.push(Instr::sd(Reg::T1, Reg::T0, 0));
            b.push(Instr::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 0,
            });
            b.push(Instr::Load {
                op: LoadOp::Lbu,
                rd: Reg::A1,
                rs1: Reg::T0,
                offset: 1,
            });
            b.push(Instr::Ebreak);
        });
        assert_eq!(sim.reg(Reg::A0), u64::MAX, "lw sign-extends");
        assert_eq!(sim.reg(Reg::A1), 0xFF, "lbu zero-extends");
        assert_eq!(mem.read_byte(0x3007), 0xFF);
    }

    #[test]
    fn branch_loop_terminates() {
        let (sim, _, _) = run_prog(|b| {
            b.push(Instr::addi(Reg::A0, Reg::ZERO, 5));
            b.push(Instr::addi(Reg::A1, Reg::ZERO, 0));
            b.label("loop");
            b.push(Instr::addi(Reg::A1, Reg::A1, 3));
            b.push(Instr::addi(Reg::A0, Reg::A0, -1));
            b.branch_to(
                Instr::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::A0,
                    rs2: Reg::ZERO,
                    offset: 0,
                },
                "loop",
            );
            b.push(Instr::Ebreak);
        });
        assert_eq!(sim.reg(Reg::A1), 15);
    }

    #[test]
    fn call_and_ret() {
        let (sim, _, _) = run_prog(|b| {
            b.jal_to(Reg::RA, "func");
            b.push(Instr::addi(Reg::A1, Reg::A0, 1));
            b.push(Instr::Ebreak);
            b.label("func");
            b.push(Instr::addi(Reg::A0, Reg::ZERO, 10));
            b.push(Instr::ret());
        });
        assert_eq!(sim.reg(Reg::A1), 11);
    }

    #[test]
    fn misaligned_load_traps() {
        let (_, _, trap) = run_prog(|b| {
            b.push(Instr::addi(Reg::T0, Reg::ZERO, 0x1));
            b.push(Instr::Load {
                op: LoadOp::Lw,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 0,
            });
        });
        assert_eq!(trap, Some(Exception::LoadMisaligned(1)));
    }

    #[test]
    fn out_of_range_load_access_faults() {
        let (_, _, trap) = run_prog(|b| {
            b.push(Instr::Lui {
                rd: Reg::T0,
                imm: 0x4000_0000,
            });
            b.push(Instr::ld(Reg::A0, Reg::T0, 0));
        });
        assert_eq!(trap, Some(Exception::LoadAccessFault(0x4000_0000)));
    }

    #[test]
    fn protected_page_faults_on_load_and_store() {
        let mut b = ProgramBuilder::new(0x1000);
        b.label_at("secret", 0x3000);
        b.la(Reg::T0, "secret");
        b.push(Instr::ld(Reg::A0, Reg::T0, 0));
        let p = b.assemble();
        let mut mem = FlatMem::new(0x1000, 0x4000);
        mem.load_program(&p);
        mem.set_perms(0x3000, 0x3040, Perms::NONE);
        let mut sim = IsaSim::new(0x1000);
        assert_eq!(
            sim.run(&mut mem, 100),
            Some(Exception::LoadPageFault(0x3000))
        );

        // Store side.
        let mut sim2 = IsaSim::new(0x1000);
        sim2.set_reg(Reg::T0, 0x3000);
        let e = sim2.exec(Instr::sd(Reg::A1, Reg::T0, 0), &mut mem);
        assert_eq!(e, Err(Exception::StorePageFault(0x3000)));
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = FlatMem::new(0x1000, 0x100);
        mem.write_bytes(0x1000, &0xFFFF_FFFFu32.to_le_bytes());
        let mut sim = IsaSim::new(0x1000);
        assert!(matches!(
            sim.run(&mut mem, 10),
            Some(Exception::IllegalInstruction(0xFFFF_FFFF))
        ));
    }

    #[test]
    fn ecall_traps() {
        let (_, _, trap) = run_prog(|b| {
            b.push(Instr::Ecall);
        });
        assert_eq!(trap, Some(Exception::Ecall));
    }

    #[test]
    fn fp_pipeline_roundtrip() {
        let (sim, _, _) = run_prog(|b| {
            // a0 = bits(2.0); f1 = a0; f2 = f1+f1; a1 = bits(f2)
            b.push(Instr::Lui {
                rd: Reg::A0,
                imm: 0x40000 << 12,
            }); // 2.0f64 high bits
            b.push(Instr::OpImm {
                op: AluOp::Sll,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 32,
            });
            b.push(Instr::FmvDX {
                rd: Reg(1),
                rs1: Reg::A0,
            });
            b.push(Instr::Fp {
                op: crate::instr::FpOp::FaddD,
                rd: Reg(2),
                rs1: Reg(1),
                rs2: Reg(1),
            });
            b.push(Instr::FmvXD {
                rd: Reg::A1,
                rs1: Reg(2),
            });
            b.push(Instr::Ebreak);
        });
        assert_eq!(f64::from_bits(sim.reg(Reg::A1)), 4.0);
    }

    #[test]
    fn fetch_fault_outside_memory() {
        let mut mem = FlatMem::new(0x1000, 0x100);
        let mut sim = IsaSim::new(0x8000);
        assert_eq!(
            sim.run(&mut mem, 1),
            Some(Exception::FetchAccessFault(0x8000))
        );
    }

    #[test]
    fn exception_predicates() {
        assert!(Exception::LoadPageFault(0).is_mem());
        assert!(!Exception::IllegalInstruction(0).is_mem());
        assert_eq!(Exception::Ecall.mnemonic(), "ecall");
    }

    #[test]
    fn jalr_clears_low_bit() {
        let mut mem = FlatMem::new(0x1000, 0x100);
        let mut sim = IsaSim::new(0x1000);
        sim.set_reg(Reg::A0, 0x2001);
        let next = sim.exec(
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::A0,
                offset: 0,
            },
            &mut mem,
        );
        assert_eq!(next, Ok(0x2000));
    }
}
