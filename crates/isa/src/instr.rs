//! The structured RV64 instruction model.

use std::fmt;

/// An integer architectural register (`x0`–`x31`), with the standard ABI
/// aliases as associated constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    pub const ZERO: Reg = Reg(0);
    pub const RA: Reg = Reg(1);
    pub const SP: Reg = Reg(2);
    pub const GP: Reg = Reg(3);
    pub const TP: Reg = Reg(4);
    pub const T0: Reg = Reg(5);
    pub const T1: Reg = Reg(6);
    pub const T2: Reg = Reg(7);
    pub const S0: Reg = Reg(8);
    pub const S1: Reg = Reg(9);
    pub const A0: Reg = Reg(10);
    pub const A1: Reg = Reg(11);
    pub const A2: Reg = Reg(12);
    pub const A3: Reg = Reg(13);
    pub const A4: Reg = Reg(14);
    pub const A5: Reg = Reg(15);
    pub const A6: Reg = Reg(16);
    pub const A7: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const S8: Reg = Reg(24);
    pub const S9: Reg = Reg(25);
    pub const S10: Reg = Reg(26);
    pub const S11: Reg = Reg(27);
    pub const T3: Reg = Reg(28);
    pub const T4: Reg = Reg(29);
    pub const T5: Reg = Reg(30);
    pub const T6: Reg = Reg(31);

    /// The register's index, 0..32.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs from an index, masking to 5 bits like hardware decode.
    #[inline]
    pub const fn from_index(i: usize) -> Reg {
        Reg((i & 31) as u8)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        f.write_str(NAMES[self.0 as usize & 31])
    }
}

/// Integer ALU operations (register-register and, where legal,
/// register-immediate forms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    // RV64 "W" (32-bit) variants.
    AddW,
    SubW,
    SllW,
    SrlW,
    SraW,
    // M extension.
    Mul,
    Mulh,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    MulW,
    DivW,
    DivuW,
    RemW,
    RemuW,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit operands with RV64 semantics.
    pub fn eval(self, x: u64, y: u64) -> u64 {
        match self {
            AluOp::Add => x.wrapping_add(y),
            AluOp::Sub => x.wrapping_sub(y),
            AluOp::Sll => x << (y & 63),
            AluOp::Slt => ((x as i64) < (y as i64)) as u64,
            AluOp::Sltu => (x < y) as u64,
            AluOp::Xor => x ^ y,
            AluOp::Srl => x >> (y & 63),
            AluOp::Sra => ((x as i64) >> (y & 63)) as u64,
            AluOp::Or => x | y,
            AluOp::And => x & y,
            AluOp::AddW => sext32(x.wrapping_add(y)),
            AluOp::SubW => sext32(x.wrapping_sub(y)),
            AluOp::SllW => sext32((x as u32 as u64) << (y & 31)),
            AluOp::SrlW => sext32(((x as u32) >> (y & 31)) as u64),
            AluOp::SraW => sext32((((x as u32 as i32) >> (y & 31)) as u32) as u64),
            AluOp::Mul => x.wrapping_mul(y),
            AluOp::Mulh => ((x as i64 as i128).wrapping_mul(y as i64 as i128) >> 64) as u64,
            AluOp::Mulhu => ((x as u128).wrapping_mul(y as u128) >> 64) as u64,
            AluOp::Div => {
                if y == 0 {
                    u64::MAX
                } else if x as i64 == i64::MIN && y as i64 == -1 {
                    x
                } else {
                    ((x as i64).wrapping_div(y as i64)) as u64
                }
            }
            AluOp::Divu => x.checked_div(y).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if y == 0 {
                    x
                } else if x as i64 == i64::MIN && y as i64 == -1 {
                    0
                } else {
                    ((x as i64).wrapping_rem(y as i64)) as u64
                }
            }
            AluOp::Remu => x.checked_rem(y).unwrap_or(x),
            AluOp::MulW => sext32((x as u32).wrapping_mul(y as u32) as u64),
            AluOp::DivW => {
                let (x, y) = (x as i32, y as i32);
                let r = if y == 0 {
                    -1
                } else if x == i32::MIN && y == -1 {
                    x
                } else {
                    x.wrapping_div(y)
                };
                r as i64 as u64
            }
            AluOp::DivuW => {
                let (x, y) = (x as u32, y as u32);
                let r = x.checked_div(y).unwrap_or(u32::MAX);
                sext32(r as u64)
            }
            AluOp::RemW => {
                let (x, y) = (x as i32, y as i32);
                let r = if y == 0 {
                    x
                } else if x == i32::MIN && y == -1 {
                    0
                } else {
                    x.wrapping_rem(y)
                };
                r as i64 as u64
            }
            AluOp::RemuW => {
                let (x, y) = (x as u32, y as u32);
                let r = if y == 0 { x } else { x % y };
                sext32(r as u64)
            }
        }
    }

    /// True for the long-latency multiply/divide family (issues to the
    /// multi-cycle unit in the microarchitectural model).
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::MulW
                | AluOp::DivW
                | AluOp::DivuW
                | AluOp::RemW
                | AluOp::RemuW
        )
    }
}

#[inline]
fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

/// Conditional branch comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

impl BranchOp {
    /// Evaluates the branch condition.
    pub fn taken(self, x: u64, y: u64) -> bool {
        match self {
            BranchOp::Beq => x == y,
            BranchOp::Bne => x != y,
            BranchOp::Blt => (x as i64) < (y as i64),
            BranchOp::Bge => (x as i64) >= (y as i64),
            BranchOp::Bltu => x < y,
            BranchOp::Bgeu => x >= y,
        }
    }

    /// All branch comparisons (generator support).
    pub const ALL: [BranchOp; 6] = [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Bge,
        BranchOp::Bltu,
        BranchOp::Bgeu,
    ];
}

/// Load widths/signedness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadOp {
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
}

impl LoadOp {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }

    /// Applies width truncation and sign/zero extension to a raw value.
    pub fn extend(self, raw: u64) -> u64 {
        match self {
            LoadOp::Lb => raw as u8 as i8 as i64 as u64,
            LoadOp::Lbu => raw as u8 as u64,
            LoadOp::Lh => raw as u16 as i16 as i64 as u64,
            LoadOp::Lhu => raw as u16 as u64,
            LoadOp::Lw => raw as u32 as i32 as i64 as u64,
            LoadOp::Lwu => raw as u32 as u64,
            LoadOp::Ld => raw,
        }
    }

    /// All load flavours (generator support).
    pub const ALL: [LoadOp; 7] = [
        LoadOp::Lb,
        LoadOp::Lh,
        LoadOp::Lw,
        LoadOp::Ld,
        LoadOp::Lbu,
        LoadOp::Lhu,
        LoadOp::Lwu,
    ];
}

/// Store widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreOp {
    Sb,
    Sh,
    Sw,
    Sd,
}

impl StoreOp {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }

    /// All store flavours (generator support).
    pub const ALL: [StoreOp; 4] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw, StoreOp::Sd];
}

/// Double-precision floating-point operations (the subset the
/// port-contention bugs exercise; values are carried as raw f64 bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    FaddD,
    FsubD,
    FmulD,
    FdivD,
}

impl FpOp {
    /// Evaluates on raw f64 bit patterns.
    pub fn eval(self, x: u64, y: u64) -> u64 {
        let (a, b) = (f64::from_bits(x), f64::from_bits(y));
        let r = match self {
            FpOp::FaddD => a + b,
            FpOp::FsubD => a - b,
            FpOp::FmulD => a * b,
            FpOp::FdivD => a / b,
        };
        r.to_bits()
    }

    /// True for the long-latency divide (the Spectre-Rewind contention op).
    pub fn is_div(self) -> bool {
        matches!(self, FpOp::FdivD)
    }
}

/// One RV64 instruction in structured form.
///
/// `Display` renders standard assembly text (used by bug reports and the
/// examples); [`crate::encode()`] maps to and from the 32-bit encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `lui rd, imm20` — `imm` is the already-shifted 32-bit-aligned value.
    Lui { rd: Reg, imm: i64 },
    /// `auipc rd, imm20`.
    Auipc { rd: Reg, imm: i64 },
    /// `jal rd, offset`.
    Jal { rd: Reg, offset: i64 },
    /// `jalr rd, offset(rs1)`.
    Jalr { rd: Reg, rs1: Reg, offset: i64 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i64,
    },
    /// Memory load into an integer register.
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: i64,
    },
    /// Memory store from an integer register.
    Store {
        op: StoreOp,
        rs2: Reg,
        rs1: Reg,
        offset: i64,
    },
    /// Register-immediate ALU operation.
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    /// Register-register ALU operation.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `fld rd, offset(rs1)` into an FP register (index via [`Reg`]).
    FLoad { rd: Reg, rs1: Reg, offset: i64 },
    /// `fsd rs2, offset(rs1)` from an FP register.
    FStore { rs2: Reg, rs1: Reg, offset: i64 },
    /// FP arithmetic on FP registers.
    Fp {
        op: FpOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `fmv.d.x rd, rs1` — move integer register bits into an FP register.
    FmvDX { rd: Reg, rs1: Reg },
    /// `fmv.x.d rd, rs1` — move FP register bits into an integer register.
    FmvXD { rd: Reg, rs1: Reg },
    /// `fence` (a no-op in this model).
    Fence,
    /// `ecall`.
    Ecall,
    /// `ebreak`.
    Ebreak,
    /// An undecodable word — raises an illegal-instruction exception.
    Illegal(u32),
}

impl Instr {
    /// `nop` (`addi x0, x0, 0`).
    pub const NOP: Instr = Instr::OpImm {
        op: AluOp::Add,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// Convenience constructor for `addi`.
    pub const fn addi(rd: Reg, rs1: Reg, imm: i64) -> Instr {
        Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        }
    }

    /// Convenience constructor for `ld rd, offset(rs1)`.
    pub const fn ld(rd: Reg, rs1: Reg, offset: i64) -> Instr {
        Instr::Load {
            op: LoadOp::Ld,
            rd,
            rs1,
            offset,
        }
    }

    /// Convenience constructor for `sd rs2, offset(rs1)`.
    pub const fn sd(rs2: Reg, rs1: Reg, offset: i64) -> Instr {
        Instr::Store {
            op: StoreOp::Sd,
            rs2,
            rs1,
            offset,
        }
    }

    /// Convenience constructor for `ret` (`jalr x0, 0(ra)`).
    pub const fn ret() -> Instr {
        Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        }
    }

    /// Convenience constructor for `call`-style `jal ra, offset`.
    pub const fn call(offset: i64) -> Instr {
        Instr::Jal {
            rd: Reg::RA,
            offset,
        }
    }

    /// True for control-transfer instructions (branches, jumps).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }

    /// True for memory access instructions (including FP loads/stores).
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::FLoad { .. } | Instr::FStore { .. }
        )
    }

    /// True when this is a `ret` (indirect jump through `ra` with `rd=x0`),
    /// the RAS-pop flavour of `jalr`.
    pub fn is_ret(self) -> bool {
        matches!(
            self,
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                ..
            }
        )
    }

    /// True when this `jal`/`jalr` links (pushes a return address).
    pub fn is_call(self) -> bool {
        matches!(
            self,
            Instr::Jal { rd: Reg::RA, .. } | Instr::Jalr { rd: Reg::RA, .. }
        )
    }

    /// The destination register written by this instruction, if any.
    pub fn dest(self) -> Option<Reg> {
        match self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::FmvXD { rd, .. } => {
                if rd == Reg::ZERO {
                    None
                } else {
                    Some(rd)
                }
            }
            _ => None,
        }
    }

    /// Integer source registers read by this instruction.
    pub fn sources(self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match self {
            Instr::Jalr { rs1, .. }
            | Instr::Load { rs1, .. }
            | Instr::OpImm { rs1, .. }
            | Instr::FLoad { rs1, .. }
            | Instr::FmvDX { rs1, .. } => v.push(rs1),
            Instr::Branch { rs1, rs2, .. } | Instr::Op { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Instr::Store { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Instr::FStore { rs1, .. } => v.push(rs1),
            _ => {}
        }
        v.retain(|r| *r != Reg::ZERO);
        v
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u64 >> 12) & 0xFFFFF),
            Instr::Auipc { rd, imm } => {
                write!(f, "auipc {rd}, {:#x}", (imm as u64 >> 12) & 0xFFFFF)
            }
            Instr::Jal { rd, offset } => {
                if rd == Reg::ZERO {
                    write!(f, "j {offset}")
                } else if rd == Reg::RA {
                    write!(f, "call {offset}")
                } else {
                    write!(f, "jal {rd}, {offset}")
                }
            }
            Instr::Jalr { rd, rs1, offset } => {
                if rd == Reg::ZERO && rs1 == Reg::RA && offset == 0 {
                    write!(f, "ret")
                } else {
                    write!(f, "jalr {rd}, {offset}({rs1})")
                }
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let name = match op {
                    BranchOp::Beq => "beq",
                    BranchOp::Bne => "bne",
                    BranchOp::Blt => "blt",
                    BranchOp::Bge => "bge",
                    BranchOp::Bltu => "bltu",
                    BranchOp::Bgeu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, {offset}")
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let name = match op {
                    LoadOp::Lb => "lb",
                    LoadOp::Lh => "lh",
                    LoadOp::Lw => "lw",
                    LoadOp::Ld => "ld",
                    LoadOp::Lbu => "lbu",
                    LoadOp::Lhu => "lhu",
                    LoadOp::Lwu => "lwu",
                };
                write!(f, "{name} {rd}, {offset}({rs1})")
            }
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let name = match op {
                    StoreOp::Sb => "sb",
                    StoreOp::Sh => "sh",
                    StoreOp::Sw => "sw",
                    StoreOp::Sd => "sd",
                };
                write!(f, "{name} {rs2}, {offset}({rs1})")
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                if op == AluOp::Add && rd == Reg::ZERO && rs1 == Reg::ZERO && imm == 0 {
                    return write!(f, "nop");
                }
                let name = match op {
                    AluOp::Add => "addi",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    AluOp::AddW => "addiw",
                    AluOp::SllW => "slliw",
                    AluOp::SrlW => "srliw",
                    AluOp::SraW => "sraiw",
                    _ => "op-imm?",
                };
                write!(f, "{name} {rd}, {rs1}, {imm}")
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                    AluOp::AddW => "addw",
                    AluOp::SubW => "subw",
                    AluOp::SllW => "sllw",
                    AluOp::SrlW => "srlw",
                    AluOp::SraW => "sraw",
                    AluOp::Mul => "mul",
                    AluOp::Mulh => "mulh",
                    AluOp::Mulhu => "mulhu",
                    AluOp::Div => "div",
                    AluOp::Divu => "divu",
                    AluOp::Rem => "rem",
                    AluOp::Remu => "remu",
                    AluOp::MulW => "mulw",
                    AluOp::DivW => "divw",
                    AluOp::DivuW => "divuw",
                    AluOp::RemW => "remw",
                    AluOp::RemuW => "remuw",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Instr::FLoad { rd, rs1, offset } => write!(f, "fld f{}, {offset}({rs1})", rd.0),
            Instr::FStore { rs2, rs1, offset } => write!(f, "fsd f{}, {offset}({rs1})", rs2.0),
            Instr::Fp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpOp::FaddD => "fadd.d",
                    FpOp::FsubD => "fsub.d",
                    FpOp::FmulD => "fmul.d",
                    FpOp::FdivD => "fdiv.d",
                };
                write!(f, "{name} f{}, f{}, f{}", rd.0, rs1.0, rs2.0)
            }
            Instr::FmvDX { rd, rs1 } => write!(f, "fmv.d.x f{}, {rs1}", rd.0),
            Instr::FmvXD { rd, rs1 } => write!(f, "fmv.x.d {rd}, f{}", rs1.0),
            Instr::Fence => write!(f, "fence"),
            Instr::Ecall => write!(f, "ecall"),
            Instr::Ebreak => write!(f, "ebreak"),
            Instr::Illegal(w) => write!(f, ".word {w:#010x} # illegal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_abi_names() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::T6.to_string(), "t6");
        assert_eq!(
            Reg::from_index(33),
            Reg::RA,
            "index wraps like 5-bit decode"
        );
    }

    #[test]
    fn alu_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
        assert_eq!(AluOp::Sra.eval(0x8000_0000_0000_0000, 63), u64::MAX);
        assert_eq!(AluOp::Srl.eval(0x8000_0000_0000_0000, 63), 1);
    }

    #[test]
    fn alu_w_variants_sign_extend() {
        assert_eq!(AluOp::AddW.eval(0x7FFF_FFFF, 1), 0xFFFF_FFFF_8000_0000);
        assert_eq!(AluOp::SubW.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::SllW.eval(1, 31), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn division_by_zero_follows_spec() {
        assert_eq!(AluOp::Div.eval(5, 0), u64::MAX);
        assert_eq!(AluOp::Divu.eval(5, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(5, 0), 5);
        assert_eq!(AluOp::Remu.eval(5, 0), 5);
    }

    #[test]
    fn division_overflow_follows_spec() {
        let min = i64::MIN as u64;
        assert_eq!(AluOp::Div.eval(min, u64::MAX), min);
        assert_eq!(AluOp::Rem.eval(min, u64::MAX), 0);
    }

    #[test]
    fn mulh_matches_128bit_reference() {
        assert_eq!(AluOp::Mulhu.eval(u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(
            AluOp::Mulh.eval(u64::MAX, u64::MAX),
            0,
            "(-1)*(-1)=1, high half 0"
        );
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchOp::Beq.taken(3, 3));
        assert!(!BranchOp::Bne.taken(3, 3));
        assert!(BranchOp::Blt.taken(u64::MAX, 0));
        assert!(!BranchOp::Bltu.taken(u64::MAX, 0));
        assert!(BranchOp::Bgeu.taken(u64::MAX, 0));
    }

    #[test]
    fn load_extension() {
        assert_eq!(LoadOp::Lb.extend(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(LoadOp::Lbu.extend(0x80), 0x80);
        assert_eq!(LoadOp::Lw.extend(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(LoadOp::Lwu.extend(0x8000_0000), 0x8000_0000);
    }

    #[test]
    fn instr_classification() {
        assert!(Instr::ret().is_ret());
        assert!(Instr::ret().is_control());
        assert!(!Instr::ret().is_call());
        assert!(Instr::call(8).is_call());
        assert!(Instr::ld(Reg::A0, Reg::SP, 0).is_mem());
        assert!(!Instr::NOP.is_mem());
        assert_eq!(Instr::NOP.dest(), None);
        assert_eq!(Instr::addi(Reg::A0, Reg::A1, 1).dest(), Some(Reg::A0));
    }

    #[test]
    fn sources_skip_zero_reg() {
        let i = Instr::Op {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            rs2: Reg::A1,
        };
        assert_eq!(i.sources(), vec![Reg::A1]);
    }

    #[test]
    fn display_renders_assembly() {
        assert_eq!(Instr::NOP.to_string(), "nop");
        assert_eq!(Instr::ret().to_string(), "ret");
        assert_eq!(Instr::ld(Reg::S0, Reg::T0, 0).to_string(), "ld s0, 0(t0)");
        assert_eq!(
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::A0,
                offset: 16
            }
            .to_string(),
            "bne a0, a0, 16"
        );
        assert_eq!(
            Instr::Fp {
                op: FpOp::FdivD,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3)
            }
            .to_string(),
            "fdiv.d f1, f2, f3"
        );
    }

    #[test]
    fn muldiv_classification() {
        assert!(AluOp::Div.is_muldiv());
        assert!(AluOp::MulW.is_muldiv());
        assert!(!AluOp::Add.is_muldiv());
        assert!(FpOp::FdivD.is_div());
        assert!(!FpOp::FaddD.is_div());
    }

    #[test]
    fn fp_eval_roundtrips_bits() {
        let x = 2.0f64.to_bits();
        let y = 8.0f64.to_bits();
        assert_eq!(f64::from_bits(FpOp::FdivD.eval(y, x)), 4.0);
        assert_eq!(f64::from_bits(FpOp::FaddD.eval(x, y)), 10.0);
    }
}
