//! A global leak-once string pool.
//!
//! Coverage points and bug reports hold `&'static str` module names —
//! in-process they always point at compile-time literals from the core
//! configs, but a decoded snapshot has to conjure the same `'static`
//! lifetime from file bytes. [`intern`] does that by leaking each
//! *distinct* name exactly once into a process-global pool. The set of
//! module names a campaign can produce is small and fixed (the DUT's
//! module hierarchy), so the leaked total is bounded by the vocabulary,
//! not by how many snapshots are loaded.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

fn pool() -> &'static Mutex<HashSet<&'static str>> {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashSet::new()))
}

thread_local! {
    /// Per-thread read cache over the global pool. High-rate decode
    /// paths (a worker pool's per-run RPC replies) intern the same few
    /// module and cause names thousands of times per second; the cache
    /// answers repeats without touching the global mutex. Bounded by the
    /// same fixed vocabulary as the pool itself.
    static SEEN: RefCell<HashMap<Box<str>, &'static str>> = RefCell::new(HashMap::new());
}

/// Returns a `'static` string equal to `s`, leaking at most once per
/// distinct content.
pub fn intern(s: &str) -> &'static str {
    SEEN.with(|seen| {
        if let Some(hit) = seen.borrow().get(s) {
            return *hit;
        }
        let leaked = intern_global(s);
        seen.borrow_mut().insert(Box::from(s), leaked);
        leaked
    })
}

fn intern_global(s: &str) -> &'static str {
    let mut pool = pool().lock().expect("intern pool poisoned");
    if let Some(hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("rob_test_module");
        let b = intern("rob_test_module");
        assert_eq!(a, "rob_test_module");
        assert!(std::ptr::eq(a, b), "second intern reuses the first leak");
    }

    #[test]
    fn distinct_contents_get_distinct_entries() {
        let a = intern("intern_a");
        let b = intern("intern_b");
        assert_ne!(a, b);
    }
}
