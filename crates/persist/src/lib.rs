//! Campaign persistence primitives: a hand-rolled, versioned,
//! endian-stable binary codec plus the framing and file plumbing the
//! snapshot/resume and shard-merge workflows build on.
//!
//! The build environment is registry-less (see ROADMAP "Registry-less
//! vendoring"), so there is no serde here: every persisted type spells
//! out its wire format through the [`Persist`] trait over the
//! [`codec::Encoder`]/[`codec::Decoder`] primitives. All integers are
//! little-endian; floats travel as IEEE-754 bit patterns so restored
//! running averages are *bit-identical*, not merely close.
//!
//! Layers, bottom to top:
//!
//! * [`codec`] — `Encoder`, `Decoder`, the [`Persist`] trait, impls for
//!   primitives and containers, and the structured [`DecodeError`] every
//!   malformed input maps to (truncation, bad tags, overflow — never a
//!   panic).
//! * [`frame`] — the snapshot envelope: magic, format version and an
//!   FNV-1a checksum around an opaque payload, so a wrong-version or
//!   bit-flipped file fails loudly *before* payload decoding starts.
//! * [`mod@intern`] — a global leak-once string pool that lets types holding
//!   `&'static str` (coverage-point module names, bug-report components)
//!   round-trip through the codec.
//! * [`io`] — atomic write-rename saves and a [`io::LoadError`] that
//!   separates filesystem failures from decode failures.

pub mod codec;
pub mod frame;
pub mod intern;
pub mod io;

pub use codec::{DecodeError, Decoder, Encoder, Persist};
pub use frame::{
    fnv1a64, framed_len, open, open_versioned, seal, GOSSIP_MAGIC, GOSSIP_MIN_VERSION,
    GOSSIP_VERSION, HEADER_LEN,
};
pub use intern::intern;
pub use io::{load_bytes, prune_rotated, rotated_path, save_atomic, LoadError};

/// Encodes a value to a bare (unframed) byte buffer.
pub fn to_bytes<T: Persist>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Decodes a value from a bare (unframed) byte buffer, requiring the
/// buffer to be fully consumed.
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_round_trip_requires_full_consumption() {
        let bytes = to_bytes(&(7u64, String::from("rob")));
        let back: (u64, String) = from_bytes(&bytes).unwrap();
        assert_eq!(back, (7, "rob".to_string()));
        // A trailing byte is a structured error, not silence.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            from_bytes::<(u64, String)>(&longer),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }
}
