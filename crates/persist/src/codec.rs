//! The codec core: [`Encoder`], [`Decoder`], the [`Persist`] trait and
//! the structured [`DecodeError`].
//!
//! Wire conventions, shared by every impl in the workspace:
//!
//! * integers are fixed-width little-endian; `usize` travels as `u64` so
//!   snapshots are portable across word sizes,
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`) — restored
//!   values are bit-identical,
//! * variable-length data (strings, byte buffers, `Vec`s) is
//!   length-prefixed with a `u64`, and every length is validated against
//!   the bytes actually remaining *before* any allocation, so a corrupt
//!   length cannot trigger a multi-gigabyte `Vec::with_capacity`,
//! * enums encode a `u32` tag; unknown tags decode to
//!   [`DecodeError::InvalidTag`].

use std::fmt;

/// A structured decode failure. Every way a snapshot can be malformed —
/// truncation, corruption, version skew, nonsense values — maps to one of
/// these variants; decoding never panics on untrusted input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a fixed-width read completed.
    UnexpectedEof {
        /// Byte offset the read started at.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame does not start with the expected magic bytes.
    BadMagic {
        /// What the input led with.
        found: [u8; 8],
        /// What the reader expected.
        expected: [u8; 8],
    },
    /// The frame's format version is not supported by this build.
    UnsupportedVersion {
        /// Version stored in the frame.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The payload checksum does not match the stored one (bit rot,
    /// truncated rewrite, torn copy).
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        stored: u64,
        /// Checksum of the payload as read.
        computed: u64,
    },
    /// An enum tag outside the known range.
    InvalidTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u32,
    },
    /// A value that decoded structurally but is semantically impossible
    /// (non-UTF-8 string bytes, a bool that is neither 0 nor 1, …).
    InvalidValue {
        /// The field or type being decoded.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A length prefix larger than the bytes that remain — the tell-tale
    /// of corruption, caught before allocating.
    LengthOverflow {
        /// The collection being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
        /// An upper bound on what could possibly be present.
        limit: u64,
    },
    /// Decoding finished but input bytes remain.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof {
                offset,
                needed,
                available,
            } => write!(
                f,
                "unexpected end of input at byte {offset}: needed {needed} bytes, {available} available (truncated snapshot?)"
            ),
            DecodeError::BadMagic { found, expected } => write!(
                f,
                "bad magic {found:02x?} (expected {expected:02x?}): not a snapshot file"
            ),
            DecodeError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads up to {supported})"
            ),
            DecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x} (corrupted snapshot)"
            ),
            DecodeError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            DecodeError::InvalidValue { what, detail } => {
                write!(f, "invalid value while decoding {what}: {detail}")
            }
            DecodeError::LengthOverflow { what, len, limit } => write!(
                f,
                "length {len} for {what} exceeds the {limit} bytes remaining (corrupted length prefix)"
            ),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete decode")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// An append-only byte sink for the wire format.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first write.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as `u64` — word-size portable.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// IEEE-754 bit pattern: the round trip is bit-identical.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// One byte, 0 or 1.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Requires the input to be fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                offset: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `u64` narrowed to the host `usize`.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::LengthOverflow {
            what: "usize",
            len: v,
            limit: usize::MAX as u64,
        })
    }

    /// `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A strict bool: 0 or 1 only.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::InvalidValue {
                what: "bool",
                detail: format!("byte {other} is neither 0 nor 1"),
            }),
        }
    }

    /// A length prefix for `what`, validated against the bytes remaining
    /// (each element must occupy at least `min_elem_size` bytes).
    pub fn len_prefix(
        &mut self,
        what: &'static str,
        min_elem_size: usize,
    ) -> Result<usize, DecodeError> {
        let len = self.u64()?;
        let limit = (self.remaining() / min_elem_size.max(1)) as u64;
        if len > limit {
            return Err(DecodeError::LengthOverflow { what, len, limit });
        }
        Ok(len as usize)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.len_prefix("bytes", 1)?;
        self.take(len)
    }

    /// Length-prefixed UTF-8, owned.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|e| DecodeError::InvalidValue {
                what: "string",
                detail: e.to_string(),
            })
    }
}

/// A type with a stable wire format. Implementations must be exact
/// inverses: `decode(encode(x)) == x`, with no dependence on host
/// endianness or word size.
pub trait Persist: Sized {
    /// Appends the wire representation.
    fn encode(&self, enc: &mut Encoder);
    /// Reads one value back, validating as it goes.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

macro_rules! persist_prim {
    ($($t:ty => $enc:ident / $dec:ident),* $(,)?) => {$(
        impl Persist for $t {
            fn encode(&self, enc: &mut Encoder) {
                enc.$enc(*self);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                dec.$dec()
            }
        }
    )*};
}

persist_prim! {
    u8 => u8 / u8,
    u16 => u16 / u16,
    u32 => u32 / u32,
    u64 => u64 / u64,
    i64 => i64 / i64,
    usize => usize / usize,
    f64 => f64 / f64,
    bool => bool / bool,
}

impl Persist for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.string()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        // Every element encodes at least one byte, so the prefix check
        // bounds the pre-allocation even on corrupt input.
        let len = dec.len_prefix("Vec", 1)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(dec)?);
        }
        Ok(v)
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.u8(0),
            Some(v) => {
                enc.u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            tag => Err(DecodeError::InvalidTag {
                what: "Option",
                tag: tag as u32,
            }),
        }
    }
}

impl Persist for [u64; 4] {
    fn encode(&self, enc: &mut Encoder) {
        for v in self {
            enc.u64(*v);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok([dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?])
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(T::decode(&mut dec).unwrap(), v);
        dec.finish().unwrap();
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("dcache"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(42u64));
        round_trip(None::<u64>);
        round_trip([1u64, 2, 3, 4]);
        round_trip((1u64, String::from("x")));
        round_trip((1u64, 2u32, false));
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::INFINITY, f64::NAN] {
            let mut enc = Encoder::new();
            v.encode(&mut enc);
            let bytes = enc.into_bytes();
            let back = f64::decode(&mut Decoder::new(&bytes)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut enc = Encoder::new();
        enc.u32(0x0403_0201);
        assert_eq!(enc.into_bytes(), [1, 2, 3, 4]);
    }

    #[test]
    fn truncated_input_is_a_structured_eof() {
        let mut enc = Encoder::new();
        enc.u64(7);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..5]);
        assert_eq!(
            u64::decode(&mut dec),
            Err(DecodeError::UnexpectedEof {
                offset: 0,
                needed: 8,
                available: 5
            })
        );
    }

    #[test]
    fn corrupt_length_prefix_fails_before_allocating() {
        let mut enc = Encoder::new();
        enc.u64(u64::MAX); // an absurd Vec length with no elements behind it
        let bytes = enc.into_bytes();
        match Vec::<u64>::decode(&mut Decoder::new(&bytes)) {
            Err(DecodeError::LengthOverflow {
                what: "Vec", len, ..
            }) => {
                assert_eq!(len, u64::MAX);
            }
            other => panic!("expected LengthOverflow, got {other:?}"),
        }
    }

    #[test]
    fn invalid_bool_and_option_tags_are_rejected() {
        assert!(matches!(
            bool::decode(&mut Decoder::new(&[2])),
            Err(DecodeError::InvalidValue { what: "bool", .. })
        ));
        assert_eq!(
            Option::<u64>::decode(&mut Decoder::new(&[9])),
            Err(DecodeError::InvalidTag {
                what: "Option",
                tag: 9
            })
        );
    }

    #[test]
    fn non_utf8_string_is_invalid_value() {
        let mut enc = Encoder::new();
        enc.bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        assert!(matches!(
            String::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue { what: "string", .. })
        ));
    }

    #[test]
    fn errors_display_helpfully() {
        let e = DecodeError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"));
        let e = DecodeError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }
}
