//! Snapshot file IO: atomic write-rename saves and a load error that
//! keeps filesystem failures distinct from decode failures.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::codec::DecodeError;

/// Why loading a persisted file failed.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes were read but do not decode.
    Decode(DecodeError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "read failed: {e}"),
            LoadError::Decode(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Decode(e) => Some(e),
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> Self {
        LoadError::Decode(e)
    }
}

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// temporary file first, is fsynced, and is renamed into place (with a
/// best-effort directory fsync after), so a crash — including power
/// loss on filesystems that reorder data behind rename metadata —
/// leaves either the old snapshot or the new one, never a torn file.
pub fn save_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let write_and_sync = || -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // The data must be durable BEFORE the rename publishes it;
        // otherwise a crash can leave a renamed-but-empty file where the
        // previous good snapshot used to be.
        f.sync_all()
    };
    if let Err(e) = write_and_sync() {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {
            // Make the rename itself durable. Best-effort: directory
            // handles are not fsyncable on every platform, and the data
            // is already safe either way.
            let dir = match path.parent() {
                Some(d) if !d.as_os_str().is_empty() => d,
                _ => Path::new("."),
            };
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads a whole file.
pub fn load_bytes(path: &Path) -> Result<Vec<u8>, LoadError> {
    Ok(fs::read(path)?)
}

/// The rotated sibling of a checkpoint path: `<path>.<sequence>`.
/// Rotated checkpoints let a long campaign keep a bounded trail of
/// resumable round snapshots (see [`prune_rotated`]) instead of
/// overwriting a single file.
pub fn rotated_path(path: &Path, sequence: u64) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".{sequence}"));
    std::path::PathBuf::from(os)
}

/// Deletes all but the newest `keep` rotated siblings of `path`
/// (newest = largest numeric suffix), returning how many files were
/// removed. Only exact `<filename>.<digits>` siblings are considered —
/// the base file, temp files and unrelated names are never touched.
/// Call *after* a successful atomic write, so a failed write never costs
/// an older good checkpoint.
pub fn prune_rotated(path: &Path, keep: usize) -> io::Result<usize> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let Some(base) = path.file_name().and_then(|n| n.to_str()) else {
        return Ok(0);
    };
    let mut rotated: Vec<(u64, std::path::PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(suffix) = name
            .strip_prefix(base)
            .and_then(|rest| rest.strip_prefix('.'))
        else {
            continue;
        };
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(seq) = suffix.parse::<u64>() {
                rotated.push((seq, entry.path()));
            }
        }
    }
    rotated.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq)); // newest first
    let mut removed = 0;
    for (_, stale) in rotated.into_iter().skip(keep) {
        fs::remove_file(&stale)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dejavuzz-persist-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_then_load_round_trips_and_replaces() {
        let path = temp_path("io");
        save_atomic(&path, b"first").unwrap();
        assert_eq!(load_bytes(&path).unwrap(), b"first");
        save_atomic(&path, b"second").unwrap();
        assert_eq!(load_bytes(&path).unwrap(), b"second");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_bytes(Path::new("/nonexistent/dejavuzz.snap")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("read failed"));
    }

    #[test]
    fn prune_keeps_the_newest_rotations_and_spares_bystanders() {
        let dir = temp_path("rotate-dir");
        fs::create_dir_all(&dir).unwrap();
        let base = dir.join("camp.snap");
        save_atomic(&base, b"base").unwrap();
        for seq in [8u64, 16, 24, 32, 40] {
            save_atomic(&rotated_path(&base, seq), b"round").unwrap();
        }
        // Non-numeric and non-matching siblings must survive pruning.
        let bystander = dir.join("camp.snap.backup");
        let other = dir.join("other.snap.8");
        save_atomic(&bystander, b"keep me").unwrap();
        save_atomic(&other, b"keep me").unwrap();

        assert_eq!(prune_rotated(&base, 2).unwrap(), 3);
        assert!(!rotated_path(&base, 8).exists());
        assert!(!rotated_path(&base, 16).exists());
        assert!(!rotated_path(&base, 24).exists());
        assert!(rotated_path(&base, 32).exists(), "newest two kept");
        assert!(rotated_path(&base, 40).exists());
        assert!(base.exists(), "the base checkpoint is never pruned");
        assert!(bystander.exists());
        assert!(other.exists());

        // Idempotent once within budget.
        assert_eq!(prune_rotated(&base, 2).unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_with_zero_keep_clears_all_rotations() {
        let dir = temp_path("rotate-zero");
        fs::create_dir_all(&dir).unwrap();
        let base = dir.join("c.snap");
        for seq in [1u64, 2] {
            save_atomic(&rotated_path(&base, seq), b"r").unwrap();
        }
        assert_eq!(prune_rotated(&base, 0).unwrap(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
