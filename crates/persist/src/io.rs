//! Snapshot file IO: atomic write-rename saves and a load error that
//! keeps filesystem failures distinct from decode failures.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::codec::DecodeError;

/// Why loading a persisted file failed.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes were read but do not decode.
    Decode(DecodeError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "read failed: {e}"),
            LoadError::Decode(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Decode(e) => Some(e),
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> Self {
        LoadError::Decode(e)
    }
}

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// temporary file first, is fsynced, and is renamed into place (with a
/// best-effort directory fsync after), so a crash — including power
/// loss on filesystems that reorder data behind rename metadata —
/// leaves either the old snapshot or the new one, never a torn file.
pub fn save_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let write_and_sync = || -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // The data must be durable BEFORE the rename publishes it;
        // otherwise a crash can leave a renamed-but-empty file where the
        // previous good snapshot used to be.
        f.sync_all()
    };
    if let Err(e) = write_and_sync() {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {
            // Make the rename itself durable. Best-effort: directory
            // handles are not fsyncable on every platform, and the data
            // is already safe either way.
            let dir = match path.parent() {
                Some(d) if !d.as_os_str().is_empty() => d,
                _ => Path::new("."),
            };
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads a whole file.
pub fn load_bytes(path: &Path) -> Result<Vec<u8>, LoadError> {
    Ok(fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dejavuzz-persist-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_then_load_round_trips_and_replaces() {
        let path = temp_path("io");
        save_atomic(&path, b"first").unwrap();
        assert_eq!(load_bytes(&path).unwrap(), b"first");
        save_atomic(&path, b"second").unwrap();
        assert_eq!(load_bytes(&path).unwrap(), b"second");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_bytes(Path::new("/nonexistent/dejavuzz.snap")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("read failed"));
    }
}
