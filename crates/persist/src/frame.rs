//! The snapshot envelope: magic + version + checksum around an opaque
//! payload.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [magic: 8 bytes][version: u32][payload_len: u64][checksum: u64][payload]
//! ```
//!
//! The checksum is FNV-1a 64 over the payload bytes. [`open`] validates
//! the envelope in order — magic first (is this even ours?), then
//! version (can this build read it?), then length and checksum (did it
//! survive the disk?) — so the caller gets the most specific
//! [`DecodeError`] for whatever went wrong, and payload decoding only
//! ever runs over bytes that already passed integrity checks.

use crate::codec::{DecodeError, Decoder, Encoder};

/// Envelope header size: magic (8) + version (4) + payload length (8) +
/// checksum (8). A complete frame is `HEADER_LEN + payload_len` bytes.
pub const HEADER_LEN: usize = 28;

/// Frame kind for fleet gossip: the periodic coverage-delta +
/// favoured-corpus exchange between running shards (`dejavuzz::gossip`).
/// Distinct from the snapshot magic so a gossip frame fed to the
/// snapshot decoder (or vice versa) fails loudly with
/// [`DecodeError::BadMagic`] instead of misparsing.
pub const GOSSIP_MAGIC: [u8; 8] = *b"DJVZGOSP";

/// Current gossip frame payload version.
pub const GOSSIP_VERSION: u32 = 1;

/// Oldest gossip frame payload version this build still reads.
pub const GOSSIP_MIN_VERSION: u32 = 1;

/// Stream reassembly: the total size of the frame starting at `bytes[0]`,
/// or `None` while the header is still incomplete. Lets a socket reader
/// split a byte stream into whole frames before handing each to [`open`]
/// (which rejects trailing bytes by design). Performs no validation
/// beyond reading the length field — [`open`] still checks magic,
/// version and checksum on the complete frame.
pub fn framed_len(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let mut len = [0u8; 8];
    len.copy_from_slice(&bytes[12..20]);
    Some(HEADER_LEN + u64::from_le_bytes(len) as usize)
}

/// FNV-1a 64-bit over a byte slice: cheap, dependency-free, and stable
/// across platforms. Not cryptographic — it guards against bit rot and
/// truncation, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a folded over four independent word lanes, for high-rate frame
/// streams (the per-run RPC traffic of a worker-process pool). Plain
/// [`fnv1a64`] is a serial multiply chain per *byte* — fine for
/// occasional snapshot files, a measurable per-RPC tax at thousands of
/// frames per second. The striped variant consumes 32 bytes per step
/// with the four multiplies overlapping, roughly an order of magnitude
/// faster, with the same guarantees (every single-bit flip changes the
/// sum; not cryptographic). The value differs from [`fnv1a64`], so a
/// format must pick one checksum and stay with it.
pub fn fnv1a64_x4(bytes: &[u8]) -> u64 {
    let mut lanes = [
        FNV_SEED,
        FNV_SEED.rotate_left(16),
        FNV_SEED.rotate_left(32),
        FNV_SEED.rotate_left(48),
    ];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(FNV_PRIME);
        }
    }
    let mut h = FNV_SEED ^ bytes.len() as u64;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Wraps a payload in a framed envelope.
pub fn seal(magic: [u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    seal_with(magic, version, payload, fnv1a64)
}

/// [`seal`] with a caller-chosen checksum (e.g. [`fnv1a64_x4`] for
/// high-rate streams). The envelope layout is identical; [`open_with`]
/// must be given the same function.
pub fn seal_with(
    magic: [u8; 8],
    version: u32,
    payload: &[u8],
    checksum: fn(&[u8]) -> u64,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    for b in magic {
        enc.u8(b);
    }
    enc.u32(version);
    enc.u64(payload.len() as u64);
    enc.u64(checksum(payload));
    let mut out = enc.into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Validates an envelope and returns the payload slice. `supported` is
/// the single version this build reads; older or newer frames fail with
/// [`DecodeError::UnsupportedVersion`]. For formats that read a range of
/// versions (migrating decoders), use [`open_versioned`].
pub fn open(magic: [u8; 8], supported: u32, bytes: &[u8]) -> Result<&[u8], DecodeError> {
    let (_, payload) = open_checked(magic, supported..=supported, bytes, fnv1a64)?;
    Ok(payload)
}

/// [`open`] for frames sealed with [`seal_with`]: validates with the
/// caller's checksum function instead of [`fnv1a64`].
pub fn open_with(
    magic: [u8; 8],
    supported: u32,
    bytes: &[u8],
    checksum: fn(&[u8]) -> u64,
) -> Result<&[u8], DecodeError> {
    let (_, payload) = open_checked(magic, supported..=supported, bytes, checksum)?;
    Ok(payload)
}

/// [`open`] for formats whose decoder understands a contiguous range of
/// versions: validates the envelope and returns `(version, payload)` so
/// the caller can branch its payload decoding on the version it actually
/// found. Frames outside `supported` fail with
/// [`DecodeError::UnsupportedVersion`] (reporting the newest supported
/// version).
pub fn open_versioned(
    magic: [u8; 8],
    supported: std::ops::RangeInclusive<u32>,
    bytes: &[u8],
) -> Result<(u32, &[u8]), DecodeError> {
    open_checked(magic, supported, bytes, fnv1a64)
}

fn open_checked(
    magic: [u8; 8],
    supported: std::ops::RangeInclusive<u32>,
    bytes: &[u8],
    checksum: fn(&[u8]) -> u64,
) -> Result<(u32, &[u8]), DecodeError> {
    let mut dec = Decoder::new(bytes);
    let mut found = [0u8; 8];
    for slot in &mut found {
        *slot = dec.u8()?;
    }
    if found != magic {
        return Err(DecodeError::BadMagic {
            found,
            expected: magic,
        });
    }
    let version = dec.u32()?;
    if !supported.contains(&version) {
        return Err(DecodeError::UnsupportedVersion {
            found: version,
            supported: *supported.end(),
        });
    }
    let len = dec.u64()?;
    let stored = dec.u64()?;
    let start = dec.offset();
    let remaining = dec.remaining() as u64;
    if len > remaining {
        return Err(DecodeError::UnexpectedEof {
            offset: start,
            needed: len as usize,
            available: remaining as usize,
        });
    }
    if len < remaining {
        return Err(DecodeError::TrailingBytes {
            remaining: (remaining - len) as usize,
        });
    }
    let payload = &bytes[start..start + len as usize];
    let computed = checksum(payload);
    if computed != stored {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    Ok((version, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"TESTMAG1";

    #[test]
    fn seal_open_round_trip() {
        let framed = seal(MAGIC, 3, b"hello");
        assert_eq!(open(MAGIC, 3, &framed).unwrap(), b"hello");
    }

    #[test]
    fn empty_payload_is_fine() {
        let framed = seal(MAGIC, 1, b"");
        assert_eq!(open(MAGIC, 1, &framed).unwrap(), b"");
    }

    #[test]
    fn wrong_magic_is_rejected_first() {
        let framed = seal(*b"OTHERMAG", 1, b"hello");
        assert!(matches!(
            open(MAGIC, 1, &framed),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_skew_is_rejected() {
        let framed = seal(MAGIC, 2, b"hello");
        assert_eq!(
            open(MAGIC, 1, &framed),
            Err(DecodeError::UnsupportedVersion {
                found: 2,
                supported: 1
            })
        );
    }

    #[test]
    fn versioned_open_accepts_the_range_and_reports_the_version() {
        for v in 1..=3 {
            let framed = seal(MAGIC, v, b"hi");
            assert_eq!(
                open_versioned(MAGIC, 1..=3, &framed).unwrap(),
                (v, &b"hi"[..])
            );
        }
        for v in [0, 4] {
            let framed = seal(MAGIC, v, b"hi");
            assert_eq!(
                open_versioned(MAGIC, 1..=3, &framed),
                Err(DecodeError::UnsupportedVersion {
                    found: v,
                    supported: 3
                })
            );
        }
    }

    #[test]
    fn every_truncation_point_is_a_structured_error() {
        let framed = seal(MAGIC, 1, b"payload bytes");
        for cut in 0..framed.len() {
            let err = open(MAGIC, 1, &framed[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::UnexpectedEof { .. } | DecodeError::BadMagic { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_in_payload_is_caught() {
        let framed = seal(MAGIC, 1, b"abcdef");
        let payload_start = framed.len() - 6;
        for byte in payload_start..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        open(MAGIC, 1, &bad),
                        Err(DecodeError::ChecksumMismatch { .. })
                    ),
                    "flip at byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn framed_len_splits_streams_into_whole_frames() {
        let a = seal(MAGIC, 1, b"first");
        let b = seal(MAGIC, 1, b"the second frame");
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        // Header incomplete: no length yet.
        assert_eq!(framed_len(&stream[..HEADER_LEN - 1]), None);
        // Complete header: the first frame's exact extent.
        let la = framed_len(&stream).unwrap();
        assert_eq!(la, a.len());
        assert_eq!(open(MAGIC, 1, &stream[..la]).unwrap(), b"first");
        let lb = framed_len(&stream[la..]).unwrap();
        assert_eq!(la + lb, stream.len());
        assert_eq!(open(MAGIC, 1, &stream[la..]).unwrap(), b"the second frame");
    }

    #[test]
    fn striped_checksum_catches_every_single_bit_flip() {
        // Long enough to cover whole 32-byte steps plus a remainder tail.
        let payload: Vec<u8> = (0..77u8).collect();
        let framed = seal_with(MAGIC, 1, &payload, fnv1a64_x4);
        assert_eq!(
            open_with(MAGIC, 1, &framed, fnv1a64_x4).unwrap(),
            &payload[..]
        );
        let start = framed.len() - payload.len();
        for byte in start..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        open_with(MAGIC, 1, &bad, fnv1a64_x4),
                        Err(DecodeError::ChecksumMismatch { .. })
                    ),
                    "flip at byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn striped_checksum_separates_lengths_and_lane_swaps() {
        // Same bytes, different lengths (trailing zeros) must differ, and
        // swapping two 8-byte lane words within a step must differ.
        assert_ne!(fnv1a64_x4(&[0u8; 32]), fnv1a64_x4(&[0u8; 40]));
        let mut a = vec![0u8; 32];
        a[0] = 1;
        let mut b = vec![0u8; 32];
        b[8] = 1;
        assert_ne!(fnv1a64_x4(&a), fnv1a64_x4(&b));
        // And it is not the plain checksum: formats must pick one.
        assert_ne!(fnv1a64_x4(b"payload"), fnv1a64(b"payload"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut framed = seal(MAGIC, 1, b"hello");
        framed.extend_from_slice(b"junk");
        assert_eq!(
            open(MAGIC, 1, &framed),
            Err(DecodeError::TrailingBytes { remaining: 4 })
        );
    }
}
