//! Cache hierarchy models: I-cache, D-cache with MSHR / line-fill buffer,
//! and the TLB / L2 TLB pair.
//!
//! Cache *metadata* (which line is resident) is two-plane: a transient,
//! secret-dependent access allocates different lines in the two DUT
//! variants, which is precisely the classic cache side channel. Latency
//! queries therefore return per-plane cycle counts.
//!
//! The line-fill buffer keeps its data after the owning MSHR completes —
//! the paper's flagship *unexploitable residue* example (§3.1): the stale
//! secret is tainted but its `mshr_valid` liveness bit is low, so the
//! liveness filter of §4.3.2 rejects it.

use dejavuzz_ift::{Census, TWord};

/// Per-plane hit/miss outcome of a cache probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Probe {
    /// Plane-1 latency in cycles.
    pub lat_a: u64,
    /// Plane-2 latency in cycles.
    pub lat_b: u64,
    /// Plane-1 hit?
    pub hit_a: bool,
    /// Plane-2 hit?
    pub hit_b: bool,
}

impl Probe {
    /// True when the two variants observed different latencies — a timing
    /// side channel.
    pub fn diverged(&self) -> bool {
        self.lat_a != self.lat_b
    }
}

/// A direct-mapped cache directory (tags only; data lives in the backing
/// store). Used for both the I-cache and the D-cache.
#[derive(Clone, Debug)]
pub struct Cache {
    module: &'static str,
    /// Per-line tag, per plane (`None` = invalid).
    tags_a: Vec<Option<u64>>,
    tags_b: Vec<Option<u64>>,
    /// Taint of the cached line's *data* (set when tainted data was filled
    /// or when the fill address was secret-dependent).
    line_taint: Vec<u64>,
    line_bytes: u64,
    hit_latency: u64,
    miss_latency: u64,
}

impl Cache {
    /// A cache of `lines` lines of `line_bytes` bytes each.
    pub fn new(
        module: &'static str,
        lines: usize,
        line_bytes: u64,
        hit_latency: u64,
        miss_latency: u64,
    ) -> Self {
        Cache {
            module,
            tags_a: vec![None; lines],
            tags_b: vec![None; lines],
            line_taint: vec![0; lines],
            line_bytes,
            hit_latency,
            miss_latency,
        }
    }

    fn line_of(&self, addr: u64) -> (usize, u64) {
        let tag = addr / self.line_bytes;
        ((tag as usize) % self.tags_a.len(), tag)
    }

    /// Probes and updates the cache with an access at `addr` (two-plane).
    /// Misses allocate the line; `data_taint` taints the allocated line's
    /// data. A diverged (secret-dependent) address allocates different
    /// lines per plane and taints both.
    pub fn access(&mut self, addr: TWord, data_taint: u64) -> Probe {
        let (ia, tag_a) = self.line_of(addr.a);
        let (ib, tag_b) = self.line_of(addr.b);
        let hit_a = self.tags_a[ia] == Some(tag_a);
        let hit_b = self.tags_b[ib] == Some(tag_b);
        self.tags_a[ia] = Some(tag_a);
        self.tags_b[ib] = Some(tag_b);
        let line_taint = data_taint
            | if addr.is_tainted() && addr.diff() {
                u64::MAX
            } else {
                0
            };
        self.line_taint[ia] |= line_taint;
        if ib != ia {
            self.line_taint[ib] |= line_taint;
        }
        Probe {
            lat_a: if hit_a {
                self.hit_latency
            } else {
                self.miss_latency
            },
            lat_b: if hit_b {
                self.hit_latency
            } else {
                self.miss_latency
            },
            hit_a,
            hit_b,
        }
    }

    /// Probes without allocating (lookup only).
    pub fn peek(&self, addr: TWord) -> Probe {
        let (ia, tag_a) = self.line_of(addr.a);
        let (ib, tag_b) = self.line_of(addr.b);
        let hit_a = self.tags_a[ia] == Some(tag_a);
        let hit_b = self.tags_b[ib] == Some(tag_b);
        Probe {
            lat_a: if hit_a {
                self.hit_latency
            } else {
                self.miss_latency
            },
            lat_b: if hit_b {
                self.hit_latency
            } else {
                self.miss_latency
            },
            hit_a,
            hit_b,
        }
    }

    /// Invalidates every line (the swap runtime's icache flush). Taints are
    /// *not* cleared: stale tainted data in an invalid line is exactly the
    /// residue class the liveness filter must reject.
    pub fn flush(&mut self) {
        self.tags_a.iter_mut().for_each(|t| *t = None);
        self.tags_b.iter_mut().for_each(|t| *t = None);
    }

    /// Fully resets lines *and* taints (new fuzzing iteration).
    pub fn reset(&mut self) {
        self.flush();
        self.line_taint.iter_mut().for_each(|t| *t = 0);
    }

    /// Per-line validity (plane union) — the line liveness vector.
    pub fn valid_vec(&self) -> Vec<bool> {
        self.tags_a
            .iter()
            .zip(&self.tags_b)
            .map(|(a, b)| a.is_some() || b.is_some())
            .collect()
    }

    /// Per-line data taints.
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.line_taint.iter().copied()
    }

    /// Number of lines resident in plane 1 but not plane 2 or vice versa —
    /// a quick footprint-divergence metric (SpecDoctor's hash differences
    /// boil down to this).
    pub fn divergent_lines(&self) -> usize {
        self.tags_a
            .iter()
            .zip(&self.tags_b)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Reports into a census sweep.
    pub fn census(&self, census: &mut Census) {
        census.report(self.module, self.taints());
    }

    /// FNV-style hash of one plane's residency state (SpecDoctor's
    /// final-state hashing oracle operates on such per-variant snapshots).
    pub fn hash_plane(&self, plane: usize) -> u64 {
        let tags = if plane == 0 {
            &self.tags_a
        } else {
            &self.tags_b
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for t in tags {
            h ^= t.map_or(u64::MAX, |v| v);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// One miss-status holding register plus its line-fill-buffer slot.
#[derive(Clone, Copy, Debug, Default)]
struct Mshr {
    /// MSHR state register: high while the refill is in flight.
    valid: bool,
    /// The refilling address (plane a).
    addr: u64,
    /// Data sitting in the fill buffer — *not cleared* when `valid` drops.
    data: TWord,
    /// Cycle at which the refill completes.
    done_at: u64,
}

/// The MSHR file / line-fill buffer.
///
/// "Once the cache line refill is completed, MSHR switches its state
/// register to invalid to indicate that the data in the LFB is outdated
/// instead of clearing the LFB" (§3.1).
#[derive(Clone, Debug)]
pub struct LineFillBuffer {
    entries: Vec<Mshr>,
    next: usize,
}

impl LineFillBuffer {
    /// An LFB with `entries` MSHRs.
    pub fn new(entries: usize) -> Self {
        LineFillBuffer {
            entries: vec![Mshr::default(); entries],
            next: 0,
        }
    }

    /// Allocates an MSHR for a miss at `addr` filling `data`, completing at
    /// `done_at`. Round-robin replacement.
    pub fn allocate(&mut self, addr: u64, data: TWord, done_at: u64) {
        let slot = self.next;
        self.next = (self.next + 1) % self.entries.len();
        self.entries[slot] = Mshr {
            valid: true,
            addr,
            data,
            done_at,
        };
    }

    /// Retires MSHRs whose refills completed by `cycle`: the state register
    /// flips to invalid, the data stays.
    pub fn tick(&mut self, cycle: u64) {
        for e in &mut self.entries {
            if e.valid && cycle >= e.done_at {
                e.valid = false;
            }
        }
    }

    /// Forwards in-flight data for `addr`, if an active MSHR holds it
    /// (the MDS-style sampling path).
    pub fn forward(&self, addr: u64, line_bytes: u64) -> Option<TWord> {
        self.entries
            .iter()
            .find(|e| e.valid && e.addr / line_bytes == addr / line_bytes)
            .map(|e| e.data)
    }

    /// The `mshr_valid_vec` liveness signal of the paper's annotation
    /// listing.
    pub fn mshr_valid_vec(&self) -> Vec<bool> {
        self.entries.iter().map(|e| e.valid).collect()
    }

    /// Per-slot fill-data taints.
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| e.data.t)
    }

    /// Per-slot fill-data values of one variant (hash-oracle input).
    pub fn data_plane(&self, plane: usize) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(move |e| e.data.plane(plane))
    }

    /// Number of entries (for sweeps).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the buffer has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears everything (new fuzzing iteration).
    pub fn reset(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = Mshr::default());
        self.next = 0;
    }

    /// Reports into a census sweep.
    pub fn census(&self, census: &mut Census) {
        census.report("lfb", self.taints());
    }
}

/// A single-level TLB directory (page-granular [`Cache`] with its own
/// census name) plus a second-level TLB behind it.
#[derive(Clone, Debug)]
pub struct Tlb {
    l1: Cache,
    l2: Cache,
    walk_latency: u64,
}

impl Tlb {
    /// A TLB with `l1_entries`/`l2_entries` page entries.
    pub fn new(l1_entries: usize, l2_entries: usize, page_bytes: u64, walk_latency: u64) -> Self {
        Tlb {
            l1: Cache::new("tlb", l1_entries, page_bytes, 0, 1),
            l2: Cache::new("l2tlb", l2_entries, page_bytes, 1, 4),
            walk_latency,
        }
    }

    /// Translates (probes both levels), returning per-plane extra latency:
    /// 0 on an L1 hit, small on an L2 hit, `walk_latency` on a full walk.
    pub fn translate(&mut self, vaddr: TWord, taint: u64) -> Probe {
        let p1 = self.l1.access(vaddr, taint);
        let p2 = self.l2.access(vaddr, taint);
        let lat = |hit1: bool, hit2: bool| -> u64 {
            if hit1 {
                0
            } else if hit2 {
                self.l2.hit_latency + 2
            } else {
                self.walk_latency
            }
        };
        Probe {
            lat_a: lat(p1.hit_a, p2.hit_a),
            lat_b: lat(p1.hit_b, p2.hit_b),
            hit_a: p1.hit_a,
            hit_b: p1.hit_b,
        }
    }

    /// Per-entry liveness of the L1 TLB.
    pub fn valid_vec(&self) -> Vec<bool> {
        self.l1.valid_vec()
    }

    /// Per-entry liveness of the L2 TLB.
    pub fn l2_valid_vec(&self) -> Vec<bool> {
        self.l2.valid_vec()
    }

    /// L1 entry taints.
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.l1.taints()
    }

    /// L2 entry taints.
    pub fn l2_taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.l2.taints()
    }

    /// Clears both levels.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }

    /// Reports both levels into a census sweep.
    pub fn census(&self, census: &mut Census) {
        self.l1.census(census);
        self.l2.census(census);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Cache {
        Cache::new("dcache", 16, 64, 2, 20)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        let p = c.access(TWord::lit(0x8000), 0);
        assert!(!p.hit_a && !p.hit_b);
        assert_eq!(p.lat_a, 20);
        let p2 = c.access(TWord::lit(0x8008), 0); // same line
        assert!(p2.hit_a && p2.hit_b);
        assert_eq!(p2.lat_a, 2);
    }

    #[test]
    fn diverged_access_diverges_residency() {
        let mut c = cache();
        // Secret-dependent leak address: different lines per variant.
        c.access(TWord::secret(0x8000, 0x8140), u64::MAX);
        assert!(c.divergent_lines() >= 2);
        // Variant 1 now hits where variant 2 misses — the timing channel.
        let p = c.peek(TWord::lit(0x8000));
        assert!(p.hit_a && !p.hit_b);
        assert!(p.diverged());
    }

    #[test]
    fn diverged_access_taints_lines() {
        let mut c = cache();
        c.access(TWord::with_taint(0x8000, 0x8140, u64::MAX), 0);
        assert_eq!(c.taints().filter(|&t| t != 0).count(), 2);
    }

    #[test]
    fn flush_invalidates_but_keeps_taint() {
        let mut c = cache();
        c.access(TWord::lit(0x8000), 0xFF);
        c.flush();
        assert!(c.valid_vec().iter().all(|&v| !v));
        assert_eq!(
            c.taints().filter(|&t| t != 0).count(),
            1,
            "residue survives the flush"
        );
        c.reset();
        assert_eq!(c.taints().filter(|&t| t != 0).count(), 0);
    }

    #[test]
    fn census_reports_module_name() {
        let mut c = cache();
        c.access(TWord::lit(0x8000), 0xFF);
        let mut census = Census::new();
        c.census(&mut census);
        assert_eq!(census.module_tainted("dcache"), Some(1));
    }

    #[test]
    fn lfb_keeps_stale_data_after_mshr_retires() {
        let mut lfb = LineFillBuffer::new(4);
        lfb.allocate(0x8000, TWord::secret(0xAA, 0x55), 10);
        assert!(lfb.mshr_valid_vec()[0]);
        assert!(
            lfb.forward(0x8010, 64).is_some(),
            "in-flight data forwards within the line"
        );
        lfb.tick(10);
        assert!(
            !lfb.mshr_valid_vec()[0],
            "MSHR state register flips to invalid"
        );
        assert!(
            lfb.forward(0x8010, 64).is_none(),
            "retired MSHR no longer forwards"
        );
        assert_eq!(
            lfb.taints().filter(|&t| t != 0).count(),
            1,
            "the stale secret remains in the LFB — tainted but dead"
        );
    }

    #[test]
    fn lfb_round_robin_allocation() {
        let mut lfb = LineFillBuffer::new(2);
        lfb.allocate(0x1000, TWord::lit(1), 5);
        lfb.allocate(0x2000, TWord::lit(2), 5);
        lfb.allocate(0x3000, TWord::lit(3), 5); // reuses slot 0
        assert_eq!(lfb.forward(0x3000, 64).map(|w| w.a), Some(3));
        assert!(lfb.forward(0x1000, 64).is_none(), "evicted entry is gone");
        assert_eq!(lfb.len(), 2);
        assert!(!lfb.is_empty());
    }

    #[test]
    fn tlb_levels_have_graded_latency() {
        let mut tlb = Tlb::new(4, 16, 4096, 12);
        let p = tlb.translate(TWord::lit(0x8000), 0);
        assert_eq!(p.lat_a, 12, "cold: full walk");
        let p2 = tlb.translate(TWord::lit(0x8000), 0);
        assert_eq!(p2.lat_a, 0, "L1 hit is free");
        // Evict L1 (4 entries, page-granular) but keep L2 (16 entries).
        for i in 1..5u64 {
            tlb.translate(TWord::lit(0x8000 + i * 4096), 0);
        }
        let p3 = tlb.translate(TWord::lit(0x8000), 0);
        assert!(
            p3.lat_a > 0 && p3.lat_a < 12,
            "L2 hit is cheaper than a walk: {}",
            p3.lat_a
        );
    }

    #[test]
    fn tlb_census_reports_both_levels() {
        let mut tlb = Tlb::new(4, 16, 4096, 12);
        tlb.translate(TWord::secret(0x8000, 0x10_8000), u64::MAX);
        let mut census = Census::new();
        tlb.census(&mut census);
        assert!(census.module_tainted("tlb").unwrap() >= 1);
        assert!(census.module_tainted("l2tlb").unwrap() >= 1);
    }
}
