//! Waveform export: a minimal VCD (Value Change Dump) writer over the
//! per-cycle taint log.
//!
//! §7 of the paper: "developers usually only need simulation waveform
//! files to pinpoint bugs." This module turns a [`TaintLog`] (plus the RoB
//! IO trace) into a standards-shaped `.vcd` text a waveform viewer can
//! open: one vector signal per module carrying its tainted-register count,
//! a scalar for the global taint sum, and event markers for squashes and
//! traps.

use std::fmt::Write;

use dejavuzz_ift::TaintLog;

use crate::trace::{RobEvent, Trace};

/// Builds the VCD text for a run's taint log and trace.
///
/// Signals:
/// * `taint_sum` — the Figure 6 series,
/// * `m_<module>` — per-module tainted-register counts,
/// * `squash` / `trap` — 1-cycle event pulses.
pub fn to_vcd(log: &TaintLog, trace: &Trace, design: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date reproduction run $end");
    let _ = writeln!(out, "$version dejavuzz-uarch waveform 0.1 $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {design} $end");

    // Stable module list from the first census.
    let modules: Vec<&'static str> = log
        .cycle(0)
        .map(|c| c.modules().iter().map(|m| m.module).collect())
        .unwrap_or_default();
    // VCD identifier codes: printable ASCII starting at '!'.
    let code = |i: usize| -> char { (b'!' + i as u8) as char };
    let _ = writeln!(out, "$var wire 32 {} taint_sum $end", code(0));
    let _ = writeln!(out, "$var wire 1 {} squash $end", code(1));
    let _ = writeln!(out, "$var wire 1 {} trap $end", code(2));
    for (i, m) in modules.iter().enumerate() {
        let _ = writeln!(out, "$var wire 32 {} m_{m} $end", code(3 + i));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Event cycles.
    let squash_cycles: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            RobEvent::Squash { cycle, killed, .. } if *killed > 0 => Some(*cycle),
            _ => None,
        })
        .collect();
    let trap_cycles: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            RobEvent::Trap { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .collect();

    let mut prev_sum = u64::MAX;
    let mut prev_counts = vec![usize::MAX; modules.len()];
    let mut prev_squash = false;
    let mut prev_trap = false;
    for (cycle, census) in log.iter() {
        let mut events = String::new();
        let sum = census.taint_sum() as u64;
        if sum != prev_sum {
            let _ = writeln!(events, "b{:b} {}", sum, code(0));
            prev_sum = sum;
        }
        let sq = squash_cycles.contains(&(cycle as u64));
        if sq != prev_squash {
            let _ = writeln!(events, "{}{}", u8::from(sq), code(1));
            prev_squash = sq;
        }
        let tr = trap_cycles.contains(&(cycle as u64));
        if tr != prev_trap {
            let _ = writeln!(events, "{}{}", u8::from(tr), code(2));
            prev_trap = tr;
        }
        for (i, m) in census.modules().iter().enumerate() {
            if i < prev_counts.len() && prev_counts[i] != m.tainted {
                let _ = writeln!(events, "b{:b} {}", m.tainted, code(3 + i));
                prev_counts[i] = m.tainted;
            }
        }
        if !events.is_empty() {
            let _ = writeln!(out, "#{cycle}");
            out.push_str(&events);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;
    use crate::config::boom_small;
    use crate::core::Core;
    use dejavuzz_ift::IftMode;

    fn spectre_run() -> (TaintLog, Trace) {
        let case = attacks::spectre_v1();
        let mut mem = case.build_mem(&[0x2A]);
        let r = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 10_000);
        (r.taint_log, r.trace)
    }

    #[test]
    fn vcd_has_header_and_definitions() {
        let (log, trace) = spectre_run();
        let vcd = to_vcd(&log, &trace, "boom");
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$scope module boom $end"));
        assert!(vcd.contains("taint_sum"));
        assert!(vcd.contains("m_dcache"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn vcd_contains_timestamped_changes() {
        let (log, trace) = spectre_run();
        let vcd = to_vcd(&log, &trace, "boom");
        let timestamps = vcd.lines().filter(|l| l.starts_with('#')).count();
        assert!(timestamps > 5, "value changes over time: {timestamps}");
        // The squash pulse from the mispredict must appear.
        assert!(
            vcd.contains("1\"") || vcd.contains("0\""),
            "squash signal toggles"
        );
    }

    #[test]
    fn vcd_is_change_compressed() {
        let (log, trace) = spectre_run();
        let vcd = to_vcd(&log, &trace, "boom");
        // Far fewer emission points than cycles x signals (only changes
        // are dumped).
        let lines = vcd.lines().count();
        let cycles = log.len();
        let signals = 3 + log.cycle(0).map(|c| c.modules().len()).unwrap_or(0);
        assert!(
            lines < cycles * signals,
            "{lines} lines vs {} worst case",
            cycles * signals
        );
    }

    #[test]
    fn empty_log_produces_valid_skeleton() {
        let vcd = to_vcd(&TaintLog::new(), &Trace::new(), "empty");
        assert!(vcd.contains("$enddefinitions $end"));
    }
}
