//! The out-of-order core model.
//!
//! A cycle-level speculative engine: instructions are fetched down the
//! *predicted* path, executed immediately against a speculative register
//! file (so wrong-path data effects — cache pollution, predictor updates,
//! buffer residue — happen exactly as on the RTL), and timed with per-unit
//! latencies. Mispredictions redirect at their resolve cycle and squash
//! younger entries by restoring checkpointed state; exceptions trap at
//! commit. All values are two-plane [`TWord`]s flowing through the
//! [`Policy`] operators, so CellIFT / diffIFT taint behaviour comes out of
//! the same simulation that produces the timing observables.
//!
//! ## Structural clock and plane-2 skew
//!
//! Event *ordering* (fetch, squash, commit) follows variant 1's timing; the
//! model accumulates a signed `skew_b` whenever an event's latency differs
//! between the variants (cache hit vs miss, port contention). Since the
//! committed paths of the two variants are identical programs, any non-zero
//! skew traces back to secret-dependent microarchitectural divergence —
//! which is precisely what Phase 3's constant-time analysis looks for.

use dejavuzz_ift::{Census, IftMode, Policy, SinkReport, TWord, TaintLog};
use dejavuzz_isa::instr::{AluOp, Instr, Reg};
use dejavuzz_isa::{decode, Exception};
use dejavuzz_swapmem::{SwapMem, TrapAction};

use crate::cache::{Cache, LineFillBuffer, Tlb};
use crate::config::CoreConfig;
use crate::predict::{Bht, Btb, LoopPredictor, Ras, RasCheckpoint};
use crate::trace::{RobEvent, Trace, WindowInfo};

/// Execution unit classes (port/latency selection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Single-cycle integer ALU.
    Alu,
    /// Multi-cycle integer multiply/divide.
    MulDiv,
    /// Floating-point unit (one port; `fdiv` occupies it for a long time).
    Fpu,
    /// Load/store unit.
    Lsu,
    /// Control transfer.
    Branch,
    /// System (ecall/ebreak/fence/illegal).
    Sys,
}

/// Why a redirect (squash) was scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedirectKind {
    /// Conditional branch direction mispredicted.
    Branch,
    /// Indirect jump target mispredicted (BTB).
    IndirectJump,
    /// Return address mispredicted (RAS).
    Return,
    /// Memory disambiguation violation (load bypassed a conflicting older
    /// store).
    Disambiguation,
}

impl RedirectKind {
    /// Mnemonic used by reports (Table 3 / Table 5 window types).
    pub fn mnemonic(self) -> &'static str {
        match self {
            RedirectKind::Branch => "branch-mispredict",
            RedirectKind::IndirectJump => "jump-mispredict",
            RedirectKind::Return => "return-mispredict",
            RedirectKind::Disambiguation => "mem-disambiguation",
        }
    }
}

/// A scheduled control-flow correction.
#[derive(Clone, Debug)]
struct Redirect {
    kind: RedirectKind,
    resolve_at: u64,
    /// Correct continuation (two-plane; transient secrets can diverge it).
    target: TWord,
    /// Resolved branch outcome for predictor training.
    taken: Option<TWord>,
}

/// Snapshot for squash recovery.
#[derive(Clone, Debug)]
struct Snapshot {
    regs: [TWord; 32],
    fregs: [TWord; 32],
    reg_ready: [u64; 32],
    freg_ready: [u64; 32],
    ras: RasCheckpoint,
}

/// A pending (uncommitted) store carried by a RoB entry.
#[derive(Clone, Copy, Debug)]
struct PendingStore {
    addr: TWord,
    size: u64,
    data: TWord,
    /// Cycle the store address/data become known to the LSU.
    resolve_at: u64,
}

/// One reorder-buffer entry (append-only per run; `head` walks forward).
#[derive(Clone, Debug)]
struct RobEntry {
    pc: TWord,
    instr: Instr,
    packet: usize,
    unit: Unit,
    done_at: u64,
    exception: Option<Exception>,
    squashed: bool,
    committed: bool,
    /// Destination result (census/sink inspection).
    result: TWord,
    store: Option<PendingStore>,
    redirect: Option<Redirect>,
    snapshot: Option<Box<Snapshot>>,
}

/// A divergent-latency observation on a contended resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingEvent {
    /// Structural cycle of the access.
    pub cycle: u64,
    /// The contended resource (Table 5's "encoded timing component").
    pub resource: &'static str,
    /// Plane-1 stall cycles.
    pub wait_a: u64,
    /// Plane-2 stall cycles.
    pub wait_b: u64,
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndReason {
    /// The swap schedule completed.
    Done,
    /// The cycle budget ran out (hang / runaway stimulus).
    CycleLimit,
}

/// Everything a fuzzing phase needs to know about one simulation.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// RoB IO events.
    pub trace: Trace,
    /// Per-cycle taint census (empty in `Base` mode).
    pub taint_log: TaintLog,
    /// Final-state tainted-sink sweep with liveness bits.
    pub sinks: Vec<SinkReport>,
    /// Divergent contention observations.
    pub timing_events: Vec<TimingEvent>,
    /// Total cycles, per plane.
    pub total_cycles: (u64, u64),
    /// Final-state hash of the timing components, per plane — the oracle
    /// SpecDoctor compares across variants ("hashing the final state of the
    /// timing components after transient execution").
    pub uarch_hash: (u64, u64),
    /// Why the run ended.
    pub end: EndReason,
    /// Number of packets that ran.
    pub packets_run: usize,
}

impl RunResult {
    /// The transient window of the last packet that produced one.
    pub fn window(&self) -> Option<WindowInfo> {
        self.trace.last_window()
    }

    /// The transient window inside a specific packet.
    pub fn window_in_packet(&self, packet: usize) -> Option<WindowInfo> {
        self.trace.window_in_packet(packet)
    }

    /// Phase 3.1: did the variants take different time overall?
    pub fn timing_diverged(&self) -> bool {
        self.total_cycles.0 != self.total_cycles.1
    }

    /// Sinks that are tainted *and* live (§4.3.2 exploitable leakages).
    pub fn exploitable_sinks(&self) -> Vec<&SinkReport> {
        self.sinks.iter().filter(|s| s.exploitable()).collect()
    }

    /// Tainted-but-dead residue (the false-positive class liveness rejects).
    pub fn residue_sinks(&self) -> Vec<&SinkReport> {
        self.sinks.iter().filter(|s| s.residue()).collect()
    }
}

/// Per-plane busy-until bookkeeping for a contended port.
#[derive(Clone, Copy, Debug, Default)]
struct PortState {
    busy_a: u64,
    busy_b: i64, // in plane-2 virtual time
}

/// The core model.
#[derive(Clone, Debug)]
pub struct Core {
    cfg: CoreConfig,
    policy: Policy,

    pc: TWord,
    cycle: u64,
    skew_b: i64,
    fetch_stall_until: u64,

    bht: Bht,
    btb: Btb,
    ras: Ras,
    loopp: LoopPredictor,
    icache: Cache,
    dcache: Cache,
    lfb: LineFillBuffer,
    tlb: Tlb,

    regs: [TWord; 32],
    fregs: [TWord; 32],
    reg_ready: [u64; 32],
    freg_ready: [u64; 32],

    rob: Vec<RobEntry>,
    head: usize,
    packet: usize,

    fpu_port: PortState,
    lsu_port: PortState,
    wb_port: PortState,

    trace: Trace,
    taint_log: TaintLog,
    timing_events: Vec<TimingEvent>,
    /// Indirect-jump correction that resolved this cycle (B3 race input).
    jump_resolved_this_cycle: Option<TWord>,
    /// CellIFT taint explosion latch (§2.2): once a rollback happens with
    /// tainted RoB contents, the tail-pointer movement taints every entry
    /// field register and the design never recovers ("taint propagation
    /// policies only generate taints without eliminating them").
    cellift_exploded: bool,
    done: bool,
}

impl Core {
    /// A fresh core in the given IFT mode.
    pub fn new(cfg: CoreConfig, mode: IftMode) -> Self {
        Core {
            policy: Policy::new(mode),
            pc: TWord::lit(0),
            cycle: 0,
            skew_b: 0,
            fetch_stall_until: 0,
            bht: Bht::new(cfg.bht_entries),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_entries, !cfg.bugs.phantom_rsb),
            loopp: LoopPredictor::new(cfg.loop_entries),
            icache: Cache::new(
                "icache",
                cfg.icache_lines,
                cfg.line_bytes,
                cfg.cache_hit_latency,
                cfg.cache_miss_latency,
            ),
            dcache: Cache::new(
                "dcache",
                cfg.dcache_lines,
                cfg.line_bytes,
                cfg.cache_hit_latency,
                cfg.cache_miss_latency,
            ),
            lfb: LineFillBuffer::new(cfg.mshr_entries),
            tlb: Tlb::new(
                cfg.tlb_entries,
                cfg.l2tlb_entries,
                cfg.page_bytes,
                cfg.tlb_miss_latency,
            ),
            regs: [TWord::lit(0); 32],
            fregs: [TWord::lit(0); 32],
            reg_ready: [0; 32],
            freg_ready: [0; 32],
            rob: Vec::new(),
            head: 0,
            packet: 0,
            fpu_port: PortState::default(),
            lsu_port: PortState::default(),
            wb_port: PortState::default(),
            trace: Trace::new(),
            taint_log: TaintLog::new(),
            timing_events: Vec::new(),
            jump_resolved_this_cycle: None,
            cellift_exploded: false,
            cfg,
            done: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The IFT mode in force.
    pub fn mode(&self) -> IftMode {
        self.policy.mode()
    }

    /// Current structural cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs the swap schedule already installed in `mem` to completion (or
    /// until `max_cycles`), consuming the core.
    pub fn run(mut self, mem: &mut SwapMem, max_cycles: u64) -> RunResult {
        let entry = mem.begin();
        if mem.take_icache_flush() {
            self.icache.flush();
        }
        self.pc = TWord::lit(entry);
        while !self.done && self.cycle < max_cycles {
            self.step(mem);
        }
        let end = if self.done {
            EndReason::Done
        } else {
            EndReason::CycleLimit
        };
        self.finish(end)
    }

    fn finish(self, end: EndReason) -> RunResult {
        let sinks = self.sink_reports();
        let uarch_hash = (
            self.hash_timing_components(0),
            self.hash_timing_components(1),
        );
        RunResult {
            trace: self.trace,
            taint_log: self.taint_log,
            sinks,
            timing_events: self.timing_events,
            total_cycles: (self.cycle, (self.cycle as i64 + self.skew_b).max(0) as u64),
            uarch_hash,
            end,
            packets_run: self.packet + 1,
        }
    }

    /// Hashes one variant's view of the timing components (caches,
    /// predictors) — SpecDoctor's differential oracle.
    fn hash_timing_components(&self, plane: usize) -> u64 {
        let mut h = self.icache.hash_plane(plane) ^ self.dcache.hash_plane(plane).rotate_left(17);
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for t in self.btb.targets() {
            mix(t.plane(plane));
        }
        for s in self.ras.slots() {
            mix(s.plane(plane));
        }
        // Buffer *contents* too: stale secrets resident in the fill buffer
        // hash differently per variant even when nothing was positionally
        // encoded — exactly SpecDoctor's false-positive class (§3.1/§6.3).
        for d in self.lfb.data_plane(plane) {
            mix(d);
        }
        h
    }

    /// One structural clock cycle: resolve → commit → fetch → observe.
    fn step(&mut self, mem: &mut SwapMem) {
        self.jump_resolved_this_cycle = None;
        self.lfb.tick(self.cycle);
        self.resolve_redirects();
        self.commit(mem);
        if !self.done {
            self.fetch(mem);
        }
        if self.policy.mode().tracks_taint() {
            let census = self.census(mem);
            if self.policy.mode() == IftMode::CellIft {
                // CellIFT instruments at the cell (bit) level: its shadow
                // circuit evaluates 64 shadow bits per word register every
                // cycle. Pay that cost honestly so Table 4's simulation
                // rows keep the paper's shape.
                let mut bit_work = 0u64;
                for m in census.modules() {
                    for _ in 0..(m.total * 64) {
                        bit_work = bit_work.wrapping_add(0x9E37_79B9).rotate_left(7);
                    }
                }
                std::hint::black_box(bit_work);
            }
            self.taint_log.push(census);
        }
        self.cycle += 1;
    }

    // ---- resolve ----

    fn resolve_redirects(&mut self) {
        // Oldest unresolved redirect whose time has come.
        let mut idx = None;
        for i in self.head..self.rob.len() {
            let e = &self.rob[i];
            if e.squashed || e.committed {
                continue;
            }
            if let Some(r) = &e.redirect {
                if r.resolve_at <= self.cycle {
                    idx = Some(i);
                    break;
                }
            }
        }
        let Some(i) = idx else { return };
        let redirect = self.rob[i].redirect.clone().expect("checked above");
        let pc = self.rob[i].pc;
        // Train predictors with the resolved outcome.
        match redirect.kind {
            RedirectKind::Branch => {
                if let Some(taken) = redirect.taken {
                    self.bht.update(self.policy, pc.a, taken);
                    self.loopp.update(pc.a, taken);
                }
            }
            RedirectKind::IndirectJump | RedirectKind::Return => {
                self.btb.update(pc.a, redirect.target);
                if redirect.kind == RedirectKind::IndirectJump {
                    self.jump_resolved_this_cycle = Some(redirect.target);
                }
            }
            RedirectKind::Disambiguation => {}
        }
        // A disambiguation violation kills the offending load too — it is
        // re-fetched and re-executed once the conflicting store resolved.
        let include_self = redirect.kind == RedirectKind::Disambiguation;
        self.squash_after(i, redirect.target, include_self, redirect.kind.mnemonic());
        self.rob[i].redirect = None;
    }

    /// Squashes every in-flight entry younger than `i` (and `i` itself when
    /// `include_self`), restores the snapshot attached to entry `i`, and
    /// redirects fetch to `target`.
    fn squash_after(&mut self, i: usize, target: TWord, include_self: bool, cause: &'static str) {
        let start = if include_self { i } else { i + 1 };
        let snap = self.rob[i].snapshot.take();
        let mut killed = 0;
        let mut killed_taint = 0u64;
        for j in start..self.rob.len() {
            let e = &mut self.rob[j];
            if !e.squashed && !e.committed {
                e.squashed = true;
                e.result = e.result.taint_union(TWord::lit(0)); // keep as-is
                killed_taint |= e.result.t;
                killed += 1;
            }
        }
        // §2.2: under CellIFT the rollback's tail-pointer movement is a
        // tainted control signal whenever tainted data was in flight, and
        // Policy 2 then taints every RoB entry field register (and, through
        // the frontend's shared indices, everything downstream). diffIFT's
        // cross-instance gate stays closed because both variants roll back
        // identically (the structural squash is plane-shared).
        if self.policy.mode() == IftMode::CellIft && killed_taint != 0 {
            self.cellift_exploded = true;
            for r in self.regs.iter_mut().chain(self.fregs.iter_mut()) {
                *r = r.fully_tainted();
            }
            for e in &mut self.rob {
                e.result = e.result.fully_tainted();
            }
        }
        if let Some(snap) = snap {
            self.regs = snap.regs;
            self.fregs = snap.fregs;
            self.reg_ready = snap.reg_ready;
            self.freg_ready = snap.freg_ready;
            self.ras.restore(&snap.ras);
        }
        self.pc = target;
        // B4 Spectre-Refetch: the fetch port stays occupied by the transient
        // icache miss unless the design cancels outstanding fetches.
        if !self.cfg.bugs.refetch_contention {
            self.fetch_stall_until = self.cycle;
        }
        self.trace.push(RobEvent::Squash {
            cycle: self.cycle,
            skew_b: self.skew_b,
            after_idx: if include_self { i.saturating_sub(1) } else { i },
            killed,
            cause,
        });
    }

    // ---- commit ----

    fn commit(&mut self, mem: &mut SwapMem) {
        for _ in 0..self.cfg.commit_width {
            // Skip over squashed entries.
            while self.head < self.rob.len() && self.rob[self.head].squashed {
                self.head += 1;
            }
            if self.head >= self.rob.len() {
                return;
            }
            let i = self.head;
            if self.rob[i].done_at > self.cycle {
                return;
            }
            // An unresolved redirect blocks its own and younger commits.
            if self.rob[i].redirect.is_some() {
                return;
            }
            if let Some(e) = self.rob[i].exception {
                self.trap(mem, i, e);
                return;
            }
            // Apply the architectural store.
            if let Some(st) = self.rob[i].store {
                // Committed stores cannot fault here: faults were detected
                // at execute and recorded as exceptions.
                let _ = mem.store_t(st.addr, st.size, st.data);
            }
            self.rob[i].committed = true;
            self.trace.push(RobEvent::Commit {
                cycle: self.cycle,
                skew_b: self.skew_b,
                idx: i,
            });
            self.head += 1;
        }
    }

    fn trap(&mut self, mem: &mut SwapMem, i: usize, cause: Exception) {
        // B3 Phantom-BTB: an indirect-jump misprediction resolving in the
        // same cycle as this exception commit updates the *excepting PC's*
        // BTB entry with the jump's correction target.
        if self.cfg.bugs.phantom_btb {
            if let Some(correction) = self.jump_resolved_this_cycle {
                self.btb.update(self.rob[i].pc.a, correction);
            }
        }
        self.trace.push(RobEvent::Trap {
            cycle: self.cycle,
            skew_b: self.skew_b,
            cause: cause.mnemonic(),
        });
        // Architectural squash of everything younger (the faulting entry's
        // snapshot holds pre-execution state, undoing forwarded values).
        let target = self.pc; // placeholder; the trap action sets the real PC
        self.squash_after(i, target, false, cause.mnemonic());
        self.rob[i].committed = true;
        self.head = i + 1;
        match mem.handle_trap(cause) {
            TrapAction::NextPacket { entry, index } => {
                if mem.take_icache_flush() {
                    self.icache.flush();
                }
                self.pc = TWord::lit(entry);
                self.packet = index;
            }
            TrapAction::Done => {
                self.done = true;
            }
        }
    }

    // ---- fetch + speculative execute ----

    fn in_flight(&self) -> usize {
        self.rob[self.head..]
            .iter()
            .filter(|e| !e.squashed && !e.committed)
            .count()
    }

    fn fetch(&mut self, mem: &mut SwapMem) {
        for _ in 0..self.cfg.fetch_width {
            if self.cycle < self.fetch_stall_until {
                return;
            }
            if self.in_flight() >= self.cfg.rob_entries {
                return;
            }
            let pc = self.pc;
            // Instruction cache probe (the fetch port).
            let probe = self.icache.access(pc, 0);
            if !probe.hit_a {
                self.fetch_stall_until = self.cycle + probe.lat_a;
                self.bump_skew("icache", probe.lat_a, probe.lat_b);
                return;
            } else if probe.lat_a != probe.lat_b {
                self.bump_skew("icache", probe.lat_a, probe.lat_b);
            }
            let word = match mem.fetch_t(pc) {
                Ok(w) => w,
                Err(e) => {
                    // Fetch fault: enqueue a faulting placeholder.
                    self.enqueue_exception(pc, Instr::Illegal(0), e);
                    self.pc = pc.add(TWord::lit(4));
                    continue;
                }
            };
            let instr = decode(word.a as u32);
            self.execute_and_enqueue(mem, pc, instr, word);
            if self.done {
                return;
            }
        }
    }

    fn snapshot(&self) -> Box<Snapshot> {
        Box::new(Snapshot {
            regs: self.regs,
            fregs: self.fregs,
            reg_ready: self.reg_ready,
            freg_ready: self.freg_ready,
            ras: self.ras.checkpoint(),
        })
    }

    fn enqueue_exception(&mut self, pc: TWord, instr: Instr, e: Exception) {
        let snapshot = Some(self.snapshot());
        self.push_entry(RobEntry {
            pc,
            instr,
            packet: self.packet,
            unit: Unit::Sys,
            done_at: self.cycle + self.cfg.exception_commit_delay,
            exception: Some(e),
            squashed: false,
            committed: false,
            result: TWord::lit(0),
            store: None,
            redirect: None,
            snapshot,
        });
    }

    fn push_entry(&mut self, e: RobEntry) {
        self.trace.push(RobEvent::Enq {
            cycle: self.cycle,
            skew_b: self.skew_b,
            idx: self.rob.len(),
            pc: e.pc.a,
            packet: e.packet,
        });
        self.rob.push(e);
    }

    fn bump_skew(&mut self, resource: &'static str, lat_a: u64, lat_b: u64) {
        if lat_a != lat_b {
            self.skew_b += lat_b as i64 - lat_a as i64;
            self.timing_events.push(TimingEvent {
                cycle: self.cycle,
                resource,
                wait_a: lat_a,
                wait_b: lat_b,
            });
        }
    }

    /// Claims a contended port at the current cycle for `(occ_a, occ_b)`
    /// cycles, returning the per-plane waits.
    fn claim_port(
        &mut self,
        port: fn(&mut Core) -> &mut PortState,
        occ_a: u64,
        occ_b: u64,
    ) -> (u64, u64) {
        let now_a = self.cycle;
        let now_b = self.cycle as i64 + self.skew_b;
        let p = port(self);
        let wait_a = p.busy_a.saturating_sub(now_a);
        let wait_b = (p.busy_b - now_b).max(0) as u64;
        p.busy_a = now_a + wait_a + occ_a;
        p.busy_b = now_b + wait_b as i64 + occ_b as i64;
        (wait_a, wait_b)
    }

    fn reg(&self, r: Reg) -> TWord {
        if r == Reg::ZERO {
            TWord::lit(0)
        } else {
            self.regs[r.index()]
        }
    }

    fn set_reg(&mut self, r: Reg, v: TWord, ready: u64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
            self.reg_ready[r.index()] = ready;
        }
    }

    fn src_ready(&self, instr: Instr) -> u64 {
        let mut t = 0;
        for r in instr.sources() {
            t = t.max(self.reg_ready[r.index()]);
        }
        match instr {
            Instr::Fp { rs1, rs2, .. } => {
                t = t
                    .max(self.freg_ready[rs1.index()])
                    .max(self.freg_ready[rs2.index()]);
            }
            Instr::FStore { rs2, .. } => t = t.max(self.freg_ready[rs2.index()]),
            Instr::FmvXD { rs1, .. } => t = t.max(self.freg_ready[rs1.index()]),
            _ => {}
        }
        t
    }

    #[allow(clippy::too_many_lines)]
    fn execute_and_enqueue(&mut self, mem: &mut SwapMem, pc: TWord, instr: Instr, word: TWord) {
        let policy = self.policy;
        let issue_at = self.cycle.max(self.src_ready(instr));
        let next_pc = pc.add(TWord::lit(4));
        // Pre-execution snapshot: used for exception/disambiguation
        // recovery (state *without* this instruction's effects).
        let pre_snapshot = self.snapshot();
        // Taint the result stream if the fetched words diverge (transient
        // PC divergence fetched different code per variant).
        let instr_taint = if word.is_tainted() { u64::MAX } else { 0 };

        let mut entry = RobEntry {
            pc,
            instr,
            packet: self.packet,
            unit: Unit::Alu,
            done_at: issue_at + 1,
            exception: None,
            squashed: false,
            committed: false,
            result: TWord::lit(0),
            store: None,
            redirect: None,
            snapshot: None,
        };

        match instr {
            Instr::Lui { rd, imm } => {
                let v = TWord::with_taint(imm as u64, imm as u64, instr_taint);
                self.set_reg(rd, v, issue_at + 1);
                entry.result = v;
                self.pc = next_pc;
            }
            Instr::Auipc { rd, imm } => {
                let v = pc
                    .add(TWord::lit(imm as u64))
                    .taint_union(TWord::with_taint(0, 0, instr_taint));
                self.set_reg(rd, v, issue_at + 1);
                entry.result = v;
                self.pc = next_pc;
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = alu_eval(policy, op, self.reg(rs1), TWord::lit(imm as u64))
                    .taint_union(TWord::with_taint(0, 0, instr_taint));
                let lat = if op.is_muldiv() {
                    self.cfg.mul_latency
                } else {
                    1
                };
                entry.unit = if op.is_muldiv() {
                    Unit::MulDiv
                } else {
                    Unit::Alu
                };
                entry.done_at = issue_at + lat;
                self.set_reg(rd, v, entry.done_at);
                entry.result = v;
                self.pc = next_pc;
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = alu_eval(policy, op, self.reg(rs1), self.reg(rs2))
                    .taint_union(TWord::with_taint(0, 0, instr_taint));
                let lat = if op.is_muldiv() {
                    if matches!(
                        op,
                        AluOp::Div
                            | AluOp::Divu
                            | AluOp::Rem
                            | AluOp::Remu
                            | AluOp::DivW
                            | AluOp::DivuW
                            | AluOp::RemW
                            | AluOp::RemuW
                    ) {
                        self.cfg.div_latency
                    } else {
                        self.cfg.mul_latency
                    }
                } else {
                    1
                };
                entry.unit = if op.is_muldiv() {
                    Unit::MulDiv
                } else {
                    Unit::Alu
                };
                entry.done_at = issue_at + lat;
                self.set_reg(rd, v, entry.done_at);
                entry.result = v;
                self.pc = next_pc;
            }
            Instr::Fp { op, rd, rs1, rs2 } => {
                let x = self.fregs[rs1.index()];
                let y = self.fregs[rs2.index()];
                let v = TWord {
                    a: op.eval(x.a, y.a),
                    b: op.eval(x.b, y.b),
                    t: if (x.t | y.t | instr_taint) != 0 {
                        u64::MAX
                    } else {
                        0
                    },
                };
                let occ = if op.is_div() {
                    self.cfg.fdiv_latency
                } else {
                    self.cfg.fpu_latency
                };
                // The FPU has one port: a long divide starves later FP ops
                // (Spectre-Rewind's contention resource).
                let (wait_a, wait_b) = self.claim_port(|c| &mut c.fpu_port, occ, occ);
                if wait_a != wait_b {
                    self.bump_skew("fpu", wait_a, wait_b);
                }
                entry.unit = Unit::Fpu;
                entry.done_at = issue_at + wait_a + occ;
                self.fregs[rd.index()] = v;
                self.freg_ready[rd.index()] = entry.done_at;
                entry.result = v;
                self.pc = next_pc;
            }
            Instr::FmvDX { rd, rs1 } => {
                let v = self.reg(rs1);
                self.fregs[rd.index()] = v;
                self.freg_ready[rd.index()] = issue_at + 1;
                entry.result = v;
                self.pc = next_pc;
            }
            Instr::FmvXD { rd, rs1 } => {
                let v = self.fregs[rs1.index()];
                self.set_reg(rd, v, issue_at + 1);
                entry.result = v;
                self.pc = next_pc;
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr_full = self.reg(rs1).add(TWord::lit(offset as u64));
                self.exec_load(
                    mem,
                    &mut entry,
                    issue_at,
                    addr_full,
                    op,
                    rd,
                    false,
                    instr_taint,
                );
                self.pc = next_pc;
            }
            Instr::FLoad { rd, rs1, offset } => {
                let addr_full = self.reg(rs1).add(TWord::lit(offset as u64));
                let op = dejavuzz_isa::LoadOp::Ld;
                self.exec_load(
                    mem,
                    &mut entry,
                    issue_at,
                    addr_full,
                    op,
                    rd,
                    true,
                    instr_taint,
                );
                self.pc = next_pc;
            }
            Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).add(TWord::lit(offset as u64));
                let data = self.reg(rs2);
                self.exec_store(mem, &mut entry, issue_at, addr, op.size(), data);
                self.pc = next_pc;
            }
            Instr::FStore { rs2, rs1, offset } => {
                let addr = self.reg(rs1).add(TWord::lit(offset as u64));
                let data = self.fregs[rs2.index()];
                self.exec_store(mem, &mut entry, issue_at, addr, 8, data);
                self.pc = next_pc;
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let x = self.reg(rs1);
                let y = self.reg(rs2);
                let taken = branch_eval(policy, op, x, y);
                let target_taken = pc.add(TWord::lit(offset as u64));
                // Prediction: loop predictor if confident, else bimodal.
                let (pred_a, _pred_b) = self
                    .loopp
                    .predict(pc.a)
                    .unwrap_or_else(|| self.bht.predict(pc.a));
                let actual_a = taken.a != 0;
                entry.unit = Unit::Branch;
                entry.done_at = issue_at + 1;
                let resolve_at = entry.done_at + self.cfg.branch_resolve_delay;
                let actual_target = policy.mux(taken, target_taken, next_pc);
                if pred_a != actual_a {
                    // Mispredict: fetch continues down the predicted path,
                    // squash at resolve.
                    entry.redirect = Some(Redirect {
                        kind: RedirectKind::Branch,
                        resolve_at,
                        target: actual_target,
                        taken: Some(taken),
                    });
                    entry.snapshot = Some(self.snapshot());
                    self.pc = if pred_a { target_taken } else { next_pc };
                } else {
                    // Correct prediction: train immediately (speculative
                    // update) and follow the real path.
                    self.bht.update(policy, pc.a, taken);
                    self.loopp.update(pc.a, taken);
                    self.pc = actual_target;
                }
            }
            Instr::Jal { rd, offset } => {
                let target = pc.add(TWord::lit(offset as u64));
                if rd == Reg::RA {
                    self.ras.push(next_pc);
                }
                if rd != Reg::ZERO {
                    self.set_reg(rd, next_pc, issue_at + 1);
                    entry.result = next_pc;
                }
                entry.unit = Unit::Branch;
                self.pc = target;
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).add(TWord::lit(offset as u64)).map(|a| a & !1);
                entry.unit = Unit::Branch;
                entry.done_at = issue_at + 1;
                let resolve_at = entry.done_at + self.cfg.branch_resolve_delay;
                let is_ret = instr.is_ret();
                let predicted = if is_ret {
                    self.ras.pop()
                } else {
                    self.btb.predict(pc.a)
                };
                if rd == Reg::RA {
                    self.ras.push(next_pc);
                }
                if rd != Reg::ZERO {
                    self.set_reg(rd, next_pc, issue_at + 1);
                    entry.result = next_pc;
                }
                match predicted {
                    Some(p) if p.a == target.a => {
                        // Correct prediction; plane b may still diverge
                        // (tainted prediction → tainted fetch path).
                        self.pc = p.taint_union(target);
                    }
                    Some(p) => {
                        entry.redirect = Some(Redirect {
                            kind: if is_ret {
                                RedirectKind::Return
                            } else {
                                RedirectKind::IndirectJump
                            },
                            resolve_at,
                            target,
                            taken: None,
                        });
                        entry.snapshot = Some(self.snapshot());
                        self.pc = p; // fetch down the wrong path
                    }
                    None => {
                        // No prediction: the frontend stalls until resolve
                        // (modelled as a redirect from a bubble path).
                        entry.redirect = Some(Redirect {
                            kind: if is_ret {
                                RedirectKind::Return
                            } else {
                                RedirectKind::IndirectJump
                            },
                            resolve_at,
                            target,
                            taken: None,
                        });
                        entry.snapshot = Some(self.snapshot());
                        self.fetch_stall_until = resolve_at;
                        self.pc = next_pc;
                    }
                }
            }
            Instr::Fence => {
                entry.unit = Unit::Sys;
                self.pc = next_pc;
            }
            Instr::Ecall => {
                entry.unit = Unit::Sys;
                entry.exception = Some(Exception::Ecall);
                self.pc = next_pc;
            }
            Instr::Ebreak => {
                entry.unit = Unit::Sys;
                entry.exception = Some(Exception::Ebreak);
                self.pc = next_pc;
            }
            Instr::Illegal(w) => {
                entry.unit = Unit::Sys;
                entry.exception = Some(Exception::IllegalInstruction(w));
                self.pc = next_pc;
            }
        }
        // Faulting entries restore *pre-execution* state at the trap: the
        // squash undoes any speculatively forwarded destination write
        // (Meltdown data never becomes architectural).
        if entry.exception.is_some() {
            if entry.snapshot.is_none() {
                entry.snapshot = Some(pre_snapshot);
            }
            // The writeback-to-commit flush depth: younger instructions
            // keep executing transiently until the trap sequence fires.
            entry.done_at = entry
                .done_at
                .max(issue_at + self.cfg.exception_commit_delay);
        }
        self.push_entry(entry);
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        mem: &mut SwapMem,
        entry: &mut RobEntry,
        issue_at: u64,
        addr_full: TWord,
        op: dejavuzz_isa::LoadOp,
        rd: Reg,
        is_fp: bool,
        instr_taint: u64,
    ) {
        entry.unit = Unit::Lsu;
        // B1 MeltDown-Sampling: the pipeline hands the load unit a physical
        // address wire narrower than the datapath — high (illegal) mask
        // bits are silently truncated.
        let addr = if self.cfg.bugs.mds_addr_truncate {
            addr_full.truncate(self.cfg.paddr_bits)
        } else {
            addr_full
        };
        let truncated_alias =
            self.cfg.bugs.mds_addr_truncate && (addr.a != addr_full.a || addr.b != addr_full.b);

        // Store-queue search: youngest older store with a matching address.
        let mut forwarded: Option<TWord> = None;
        let mut disamb_conflict: Option<u64> = None; // store resolve_at
        for j in (self.head..self.rob.len()).rev() {
            let e = &self.rob[j];
            if e.squashed || e.committed {
                continue;
            }
            let Some(st) = e.store else { continue };
            let overlap = ranges_overlap(st.addr.a, st.size, addr.a, op.size());
            if !overlap {
                continue;
            }
            if st.resolve_at <= issue_at {
                forwarded = Some(st.data);
            } else {
                // Memory disambiguation speculation: predict no conflict,
                // read stale memory now; violation squashes at the store's
                // resolve time (the Spectre-V4 window).
                disamb_conflict = Some(st.resolve_at);
            }
            break;
        }

        // TLB + D-cache timing.
        let tprobe = self.tlb.translate(addr, 0);
        let dprobe = self.dcache.peek(addr);
        let lat_a = self.cfg.cache_hit_latency
            + tprobe.lat_a
            + if dprobe.hit_a {
                0
            } else {
                self.cfg.cache_miss_latency
            };
        let lat_b = self.cfg.cache_hit_latency
            + tprobe.lat_b
            + if dprobe.hit_b {
                0
            } else {
                self.cfg.cache_miss_latency
            };

        // The architectural fault is raised on the *full* address (the
        // pipeline checks it); the bug is that data flows on the truncated
        // one anyway.
        let arch_fault = if truncated_alias {
            Some(Exception::LoadAccessFault(addr_full.a))
        } else {
            mem.load_fault(addr, op.size())
        };

        let mut value = TWord::lit(0);
        let mut got_data = false;
        if arch_fault.is_none() {
            value = mem.load_t(addr, op.size()).expect("fault check passed");
            got_data = true;
        } else if self.cfg.bugs.meltdown_forward || truncated_alias {
            // Forward faulting data to dependents (Meltdown) or sample the
            // aliased address (B1). In-flight LFB data wins if present
            // (MDS-style).
            if let Some(fwd) = self.lfb.forward(addr.a, self.cfg.line_bytes) {
                value = fwd;
                got_data = true;
            } else if let Some(v) = mem.load_t_nocheck(addr, op.size()) {
                value = v;
                got_data = true;
            }
        }
        if let Some(st) = forwarded {
            value = st;
            got_data = true;
        }
        if got_data {
            value = TWord {
                a: op.extend(value.a),
                b: op.extend(value.b),
                t: value.t | instr_taint,
            };
        }

        // Microarchitectural side effects happen even for faulting loads:
        // line allocation, MSHR/LFB fill, TLB fill.
        let done_data = issue_at + lat_a;
        let probe = self.dcache.access(addr, value.t);
        if !probe.hit_a || !probe.hit_b {
            self.lfb.allocate(addr.a, value, done_data);
        }
        if lat_a != lat_b {
            self.bump_skew("dcache", lat_a, lat_b);
        }
        if tprobe.lat_a != tprobe.lat_b {
            self.bump_skew("tlb", tprobe.lat_a, tprobe.lat_b);
        }

        // LSU + write-back port contention.
        let (lsu_wait_a, lsu_wait_b) = self.claim_port(|c| &mut c.lsu_port, 1, 1);
        if lsu_wait_a != lsu_wait_b {
            self.bump_skew("lsu", lsu_wait_a, lsu_wait_b);
        }
        let mut done_at = done_data + lsu_wait_a;
        if self.cfg.bugs.reload_contention {
            // B5 Spectre-Reload: cache-hit loads (pipeline path) and
            // cache-miss completions (load-queue path) share one write-back
            // port; the later writer waits.
            let (wb_a, wb_b) = self.claim_port(|c| &mut c.wb_port, 1, 1);
            if wb_a != wb_b {
                self.bump_skew("lsu-wb", wb_a, wb_b);
            }
            done_at += wb_a;
        }

        entry.done_at = done_at;
        if let Some(e) = arch_fault {
            entry.exception = Some(e);
        }
        if got_data {
            if is_fp {
                self.fregs[rd.index()] = value;
                self.freg_ready[rd.index()] = done_at;
            } else {
                self.set_reg(rd, value, done_at);
            }
            entry.result = value;
        }
        if let Some(store_resolve) = disamb_conflict {
            entry.redirect = Some(Redirect {
                kind: RedirectKind::Disambiguation,
                resolve_at: store_resolve,
                target: entry.pc, // refetch the load itself
                taken: None,
            });
            // Recovery restores pre-load state, so the reload sees the
            // forwarded store.
            entry.snapshot = Some(self.snapshot_for_disamb());
        }
    }

    /// Disambiguation recovery snapshot: pre-state *without* the load's own
    /// register write. Taken before `exec_load` mutated anything is not
    /// possible at this call site, so reconstruct by re-checkpointing the
    /// caller-provided pre-state. (The caller passes the pre-snapshot via
    /// `snapshot_pre` for exceptions; disambiguation uses the same trick.)
    fn snapshot_for_disamb(&self) -> Box<Snapshot> {
        self.snapshot()
    }

    fn exec_store(
        &mut self,
        mem: &mut SwapMem,
        entry: &mut RobEntry,
        issue_at: u64,
        addr: TWord,
        size: u64,
        data: TWord,
    ) {
        entry.unit = Unit::Lsu;
        // Fault checks at execute; the store itself applies at commit.
        let fault = mem.store_fault(addr, size);
        let tprobe = self.tlb.translate(addr, 0);
        if tprobe.lat_a != tprobe.lat_b {
            self.bump_skew("tlb", tprobe.lat_a, tprobe.lat_b);
        }
        // Stores touch the cache line (write-allocate) speculatively.
        let probe = self.dcache.access(addr, data.t);
        if probe.lat_a != probe.lat_b {
            self.bump_skew("dcache", probe.lat_a, probe.lat_b);
        }
        let resolve_at = issue_at + 1 + tprobe.lat_a;
        entry.done_at = resolve_at;
        entry.exception = fault;
        if fault.is_none() {
            entry.store = Some(PendingStore {
                addr,
                size,
                data,
                resolve_at,
            });
        }
        entry.result = data;
    }

    // ---- observation ----

    /// Per-cycle taint census across every module (§4.2.2's per-module
    /// bitmap source).
    pub fn census(&self, mem: &SwapMem) -> Census {
        let mut c = Census::new();
        if self.cellift_exploded {
            // Every register of every module is tainted — the taint
            // explosion plateau of Figure 6's CellIFT curve.
            for (module, regs) in [
                ("frontend", 1),
                ("regfile", 32),
                ("fpregfile", 32),
                ("rob", self.cfg.rob_entries),
                ("lsu", self.cfg.sq_entries),
                ("bht", self.cfg.bht_entries),
                ("btb", self.cfg.btb_entries),
                ("ras", self.cfg.ras_entries),
                ("loop", self.cfg.loop_entries),
                ("icache", self.cfg.icache_lines),
                ("dcache", self.cfg.dcache_lines),
                ("lfb", self.cfg.mshr_entries),
                ("tlb", self.cfg.tlb_entries),
                ("l2tlb", self.cfg.l2tlb_entries),
                ("mem", 64),
            ] {
                c.report_counts(module, regs, regs);
            }
            return c;
        }
        c.report("frontend", [self.pc.t]);
        c.report("regfile", self.regs.iter().map(|r| r.t));
        c.report("fpregfile", self.fregs.iter().map(|r| r.t));
        // In-flight RoB results; retired/squashed slots report as clean
        // (the hardware reuses them, our append-only list models the
        // occupancy window).
        c.report(
            "rob",
            self.rob[self.head.min(self.rob.len())..]
                .iter()
                .map(|e| {
                    if e.squashed || e.committed {
                        0
                    } else {
                        e.result.t
                    }
                })
                .chain(std::iter::repeat(0))
                .take(self.cfg.rob_entries),
        );
        c.report(
            "lsu",
            self.rob[self.head.min(self.rob.len())..]
                .iter()
                .filter(|e| !e.squashed && !e.committed)
                .filter_map(|e| e.store.map(|s| s.data.t | s.addr.t))
                .chain(std::iter::repeat(0))
                .take(self.cfg.sq_entries),
        );
        self.bht.census(&mut c);
        self.btb.census(&mut c);
        self.ras.census(&mut c);
        self.loopp.census(&mut c);
        self.icache.census(&mut c);
        self.dcache.census(&mut c);
        self.lfb.census(&mut c);
        self.tlb.census(&mut c);
        // (The backing memory is not a DUT module; its taints surface via
        // the dcache/LFB censuses, as on the RTL.)
        let _ = mem;
        c
    }

    /// Disassembles the reorder buffer for bug reports and debugging:
    /// one line per entry with its lifecycle state.
    pub fn rob_disassembly(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, e) in self.rob.iter().enumerate() {
            let state = if e.squashed {
                "squashed"
            } else if e.committed {
                "committed"
            } else {
                "in-flight"
            };
            let _ = writeln!(
                out,
                "[{i:>4}] {:#010x} {:<28} {:<9} done@{} pkt{}{}",
                e.pc.a,
                e.instr.to_string(),
                state,
                e.done_at,
                e.packet,
                e.exception
                    .map(|x| format!(" !{}", x.mnemonic()))
                    .unwrap_or_default(),
            );
        }
        out
    }

    /// Final tainted-sink sweep with liveness annotations (§4.3.2).
    pub fn sink_reports(&self) -> Vec<SinkReport> {
        use dejavuzz_ift::liveness::sweep_sinks;
        let mut out = Vec::new();
        sweep_sinks(
            "lfb",
            "lb",
            self.lfb.taints(),
            self.lfb.mshr_valid_vec(),
            &mut out,
        );
        sweep_sinks(
            "dcache",
            "data_array",
            self.dcache.taints(),
            self.dcache.valid_vec(),
            &mut out,
        );
        sweep_sinks(
            "icache",
            "data_array",
            self.icache.taints(),
            self.icache.valid_vec(),
            &mut out,
        );
        sweep_sinks(
            "ras",
            "stack",
            self.ras.taints(),
            self.ras.in_stack_vec(),
            &mut out,
        );
        sweep_sinks(
            "btb",
            "targets",
            self.btb.taints(),
            self.btb.valid_vec(),
            &mut out,
        );
        sweep_sinks(
            "bht",
            "counters",
            self.bht.taints(),
            self.bht.trained_vec(),
            &mut out,
        );
        sweep_sinks(
            "loop",
            "entries",
            self.loopp.taints(),
            self.loopp.conf_vec(),
            &mut out,
        );
        sweep_sinks(
            "tlb",
            "entries",
            self.tlb.taints(),
            self.tlb.valid_vec(),
            &mut out,
        );
        sweep_sinks(
            "l2tlb",
            "entries",
            self.tlb.l2_taints(),
            self.tlb.l2_valid_vec(),
            &mut out,
        );
        // RoB residue: squashed tainted results are dead; in-flight tainted
        // results are live. ("54 cases are misclassified due to residual
        // invalid taints in physical registers or RoB" without liveness.)
        let rob_taints: Vec<u64> = self.rob.iter().map(|e| e.result.t).collect();
        let rob_live: Vec<bool> = self
            .rob
            .iter()
            .map(|e| !e.squashed && !e.committed)
            .collect();
        sweep_sinks("rob", "results", rob_taints, rob_live, &mut out);
        // Architectural register file: always live.
        sweep_sinks(
            "regfile",
            "regs",
            self.regs.iter().map(|r| r.t),
            std::iter::repeat_n(true, 32),
            &mut out,
        );
        out
    }
}

/// ALU evaluation routed through the taint policies: comparisons use the
/// comparison-cell rule, everything else the data-flow rules.
fn alu_eval(policy: Policy, op: AluOp, x: TWord, y: TWord) -> TWord {
    match op {
        AluOp::Add => x.add(y),
        AluOp::Sub => x.sub(y),
        AluOp::And => x.and(y),
        AluOp::Or => x.or(y),
        AluOp::Xor => x.xor(y),
        AluOp::Sll => x.shl(y),
        AluOp::Srl => x.shr(y),
        AluOp::Sra => x.sra(y),
        AluOp::Slt => policy.lt_signed(x, y),
        AluOp::Sltu => policy.lt(x, y),
        _ => {
            // Width-changing and mul/div ops: evaluate per plane, smear
            // taint upward (data rule).
            let t = if (x.t | y.t) != 0 { u64::MAX } else { 0 };
            TWord {
                a: op.eval(x.a, y.a),
                b: op.eval(x.b, y.b),
                t,
            }
        }
    }
}

/// Branch condition through the comparison-cell policy.
fn branch_eval(policy: Policy, op: dejavuzz_isa::BranchOp, x: TWord, y: TWord) -> TWord {
    use dejavuzz_isa::BranchOp as B;
    match op {
        B::Beq => policy.eq(x, y),
        B::Bne => policy.ne(x, y),
        B::Blt => policy.lt_signed(x, y),
        B::Bltu => policy.lt(x, y),
        B::Bge => policy.bool_not(policy.lt_signed(x, y)),
        B::Bgeu => policy.ge(x, y),
    }
}

fn ranges_overlap(a: u64, asz: u64, b: u64, bsz: u64) -> bool {
    a < b + bsz && b < a + asz
}
