//! The RoB IO trace log and transient-window detection.
//!
//! Phase 1.2 "analyzes the RoB IO events from the trace log. If the number
//! of enqueued instructions within the transient window exceeds the number
//! of its committed instructions, it indicates that the transient window
//! has been successfully triggered."

/// One RoB IO event. `skew_b` snapshots the plane-2 clock skew at the
/// event, letting analyses derive per-variant timings from one structural
/// trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RobEvent {
    /// An instruction entered the RoB.
    Enq {
        /// Structural cycle.
        cycle: u64,
        /// Plane-2 clock skew at the event.
        skew_b: i64,
        /// RoB sequence number (monotonic per run).
        idx: usize,
        /// Fetch PC (plane 1).
        pc: u64,
        /// Swap-packet index the instruction belongs to.
        packet: usize,
    },
    /// An instruction committed.
    Commit {
        /// Structural cycle.
        cycle: u64,
        /// Plane-2 clock skew at the event.
        skew_b: i64,
        /// RoB sequence number.
        idx: usize,
    },
    /// Every in-flight instruction younger than `after_idx` was squashed.
    Squash {
        /// Structural cycle.
        cycle: u64,
        /// Plane-2 clock skew at the event.
        skew_b: i64,
        /// The youngest surviving sequence number.
        after_idx: usize,
        /// Number of entries killed.
        killed: usize,
        /// What caused the squash: a redirect mnemonic
        /// (`branch-mispredict`, `jump-mispredict`, `return-mispredict`,
        /// `mem-disambiguation`) or a trap cause mnemonic.
        cause: &'static str,
    },
    /// A committed trap handed control to the swap runtime.
    Trap {
        /// Structural cycle.
        cycle: u64,
        /// Plane-2 clock skew at the event.
        skew_b: i64,
        /// Mnemonic of the trap cause.
        cause: &'static str,
    },
}

impl RobEvent {
    /// The structural cycle of the event.
    pub fn cycle(&self) -> u64 {
        match *self {
            RobEvent::Enq { cycle, .. }
            | RobEvent::Commit { cycle, .. }
            | RobEvent::Squash { cycle, .. }
            | RobEvent::Trap { cycle, .. } => cycle,
        }
    }
}

/// A detected transient window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowInfo {
    /// Swap-packet index the window occurred in.
    pub packet: usize,
    /// Cause of the squash that closed the window.
    pub cause: &'static str,
    /// Structural cycle of the first squashed instruction's enqueue.
    pub start_cycle: u64,
    /// Structural cycle of the squash.
    pub end_cycle: u64,
    /// Plane-1 window duration in cycles.
    pub cycles_a: u64,
    /// Plane-2 window duration in cycles.
    pub cycles_b: u64,
    /// Instructions enqueued inside the window.
    pub enqueued: usize,
    /// Instructions from the window range that committed.
    pub committed: usize,
    /// Instructions squashed.
    pub squashed: usize,
}

impl WindowInfo {
    /// The paper's trigger criterion: more enqueued than committed.
    pub fn triggered(&self) -> bool {
        self.enqueued > self.committed
    }

    /// Whether the window violates constant-time execution between the
    /// variants (Phase 3.1).
    pub fn timing_diverged(&self) -> bool {
        self.cycles_a != self.cycles_b
    }
}

/// The full RoB IO trace of one simulation.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<RobEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: RobEvent) {
        self.events.push(e);
    }

    /// All events in order.
    pub fn events(&self) -> &[RobEvent] {
        &self.events
    }

    /// Number of committed instructions.
    pub fn committed(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RobEvent::Commit { .. }))
            .count()
    }

    /// Number of enqueued instructions.
    pub fn enqueued(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RobEvent::Enq { .. }))
            .count()
    }

    /// Total squashed instructions.
    pub fn squashed(&self) -> usize {
        self.events
            .iter()
            .map(|e| {
                if let RobEvent::Squash { killed, .. } = e {
                    *killed
                } else {
                    0
                }
            })
            .sum()
    }

    /// Detects the transient window inside `packet`, if any: the span from
    /// the first enqueue that later got squashed to the squash event.
    pub fn window_in_packet(&self, packet: usize) -> Option<WindowInfo> {
        self.window_in_packet_caused(packet, None)
    }

    /// Like [`Trace::window_in_packet`], but only accepting squashes whose
    /// cause matches `cause` — Phase 1 uses this to reject windows opened
    /// by the wrong mechanism (e.g. the sequence-terminating `ecall`'s trap
    /// masquerading as a misprediction window, the invalid-test-case class
    /// the paper calls out in §6.3).
    pub fn window_in_packet_caused(
        &self,
        packet: usize,
        cause: Option<&str>,
    ) -> Option<WindowInfo> {
        // Find the first squash whose killed range intersects the packet.
        for (i, e) in self.events.iter().enumerate() {
            let RobEvent::Squash {
                cycle,
                skew_b,
                after_idx,
                killed,
                cause: c,
            } = *e
            else {
                continue;
            };
            if cause.is_some_and(|want| want != c) {
                continue;
            }
            if killed == 0 {
                continue;
            }
            // Collect enqueue events of the killed range [after_idx+1, ...]
            let mut enqueued = 0;
            let mut committed = 0;
            let mut start_cycle = cycle;
            let mut start_skew = skew_b;
            let mut in_packet = false;
            for prev in &self.events[..i] {
                match *prev {
                    RobEvent::Enq {
                        cycle: c,
                        skew_b: s,
                        idx,
                        pc: _,
                        packet: p,
                    } if idx > after_idx => {
                        if enqueued == 0 {
                            start_cycle = c;
                            start_skew = s;
                        }
                        enqueued += 1;
                        if p == packet {
                            in_packet = true;
                        }
                    }
                    RobEvent::Commit { idx, .. } if idx > after_idx => committed += 1,
                    _ => {}
                }
            }
            if !in_packet {
                continue;
            }
            let cycles_a = cycle.saturating_sub(start_cycle);
            let cycles_b = (cycle as i64 + skew_b - start_cycle as i64 - start_skew).max(0) as u64;
            return Some(WindowInfo {
                packet,
                cause: c,
                start_cycle,
                end_cycle: cycle,
                cycles_a,
                cycles_b,
                enqueued,
                committed,
                squashed: killed,
            });
        }
        None
    }

    /// Detects the *last* transient window anywhere in the trace.
    pub fn last_window(&self) -> Option<WindowInfo> {
        let max_packet = self.events.iter().fold(0, |m, e| {
            if let RobEvent::Enq { packet, .. } = e {
                m.max(*packet)
            } else {
                m
            }
        });
        (0..=max_packet)
            .rev()
            .find_map(|p| self.window_in_packet(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(cycle: u64, idx: usize, packet: usize) -> RobEvent {
        RobEvent::Enq {
            cycle,
            skew_b: 0,
            idx,
            pc: 0x1000 + 4 * idx as u64,
            packet,
        }
    }

    #[test]
    fn window_detection_from_squash() {
        let mut t = Trace::new();
        t.push(enq(1, 0, 1));
        t.push(RobEvent::Commit {
            cycle: 3,
            skew_b: 0,
            idx: 0,
        });
        t.push(enq(4, 1, 1)); // the trigger
        t.push(enq(5, 2, 1)); // transient
        t.push(enq(6, 3, 1)); // transient
        t.push(RobEvent::Squash {
            cycle: 10,
            skew_b: 4,
            after_idx: 1,
            killed: 2,
            cause: "branch-mispredict",
        });
        let w = t.window_in_packet(1).expect("window detected");
        assert!(
            w.triggered(),
            "enqueued {} > committed {}",
            w.enqueued,
            w.committed
        );
        assert_eq!(w.enqueued, 2);
        assert_eq!(w.committed, 0);
        assert_eq!(w.squashed, 2);
        assert_eq!(w.start_cycle, 5);
        assert_eq!(w.end_cycle, 10);
        assert_eq!(w.cycles_a, 5);
        assert_eq!(w.cycles_b, 9, "plane-2 skew of 4 extends its window");
        assert!(w.timing_diverged());
    }

    #[test]
    fn no_squash_means_no_window() {
        let mut t = Trace::new();
        t.push(enq(1, 0, 0));
        t.push(RobEvent::Commit {
            cycle: 2,
            skew_b: 0,
            idx: 0,
        });
        assert!(t.window_in_packet(0).is_none());
        assert!(t.last_window().is_none());
    }

    #[test]
    fn empty_squash_is_ignored() {
        let mut t = Trace::new();
        t.push(enq(1, 0, 0));
        t.push(RobEvent::Squash {
            cycle: 2,
            skew_b: 0,
            after_idx: 0,
            killed: 0,
            cause: "trap",
        });
        assert!(t.window_in_packet(0).is_none());
    }

    #[test]
    fn counting_helpers() {
        let mut t = Trace::new();
        t.push(enq(1, 0, 0));
        t.push(enq(2, 1, 0));
        t.push(RobEvent::Commit {
            cycle: 3,
            skew_b: 0,
            idx: 0,
        });
        t.push(RobEvent::Squash {
            cycle: 4,
            skew_b: 0,
            after_idx: 0,
            killed: 1,
            cause: "trap",
        });
        t.push(RobEvent::Trap {
            cycle: 5,
            skew_b: 0,
            cause: "ecall",
        });
        assert_eq!(t.enqueued(), 2);
        assert_eq!(t.committed(), 1);
        assert_eq!(t.squashed(), 1);
        assert_eq!(t.events().len(), 5);
        assert_eq!(t.events()[4].cycle(), 5);
    }

    #[test]
    fn cause_filter_rejects_wrong_mechanism() {
        let mut t = Trace::new();
        t.push(enq(1, 0, 0));
        t.push(enq(2, 1, 0));
        t.push(RobEvent::Squash {
            cycle: 3,
            skew_b: 0,
            after_idx: 0,
            killed: 1,
            cause: "ecall",
        });
        assert!(t
            .window_in_packet_caused(0, Some("branch-mispredict"))
            .is_none());
        assert!(t.window_in_packet_caused(0, Some("ecall")).is_some());
        assert_eq!(t.window_in_packet(0).unwrap().cause, "ecall");
    }

    #[test]
    fn last_window_prefers_latest_packet() {
        let mut t = Trace::new();
        // Packet 0 window.
        t.push(enq(1, 0, 0));
        t.push(enq(2, 1, 0));
        t.push(RobEvent::Squash {
            cycle: 3,
            skew_b: 0,
            after_idx: 0,
            killed: 1,
            cause: "branch-mispredict",
        });
        // Packet 2 window.
        t.push(enq(10, 2, 2));
        t.push(enq(11, 3, 2));
        t.push(RobEvent::Squash {
            cycle: 12,
            skew_b: 0,
            after_idx: 2,
            killed: 1,
            cause: "trap",
        });
        let w = t.last_window().expect("window");
        assert_eq!(w.packet, 2);
    }
}
