//! Core configurations: the BOOM-like and XiangShan-like models of Table 2,
//! including which planted bugs each carries (§6.4).

/// Which microarchitectural bugs are present in a core model.
///
/// The classic Meltdown/Spectre behaviours and the five new paper bugs
/// (B1–B5) are individually switchable so ablation benches can measure
/// detection of each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BugSet {
    /// Meltdown: a faulting load forwards its data to dependents before the
    /// exception commits.
    pub meltdown_forward: bool,
    /// B1 MeltDown-Sampling (CVE-2024-44594, XiangShan): the load-unit
    /// address wire is narrower than the pipeline's; high mask bits are
    /// implicitly truncated so an illegal masked address aliases — and
    /// samples — a legal one.
    pub mds_addr_truncate: bool,
    /// B2 Phantom-RSB (CVE-2024-44591, BOOM): squash recovery restores the
    /// TOS pointer and the top RAS entry but not entries below TOS that
    /// transient calls overwrote.
    pub phantom_rsb: bool,
    /// B3 Phantom-BTB (CVE-2024-44590, BOOM): an indirect-jump
    /// misprediction resolving in the same cycle as an exception commit
    /// applies the BTB correction to the excepting PC's entry.
    pub phantom_btb: bool,
    /// B4 Spectre-Refetch (CVE-2024-44592/3, both cores): transient fetches
    /// that miss the icache occupy the fetch port, delaying the first
    /// post-window fetch.
    pub refetch_contention: bool,
    /// B5 Spectre-Reload (CVE-2024-44595, XiangShan): the load pipeline and
    /// the load queue contend on the load write-back port.
    pub reload_contention: bool,
}

impl BugSet {
    /// Every bug enabled (stress/testing).
    pub const ALL: BugSet = BugSet {
        meltdown_forward: true,
        mds_addr_truncate: true,
        phantom_rsb: true,
        phantom_btb: true,
        refetch_contention: true,
        reload_contention: true,
    };

    /// No bugs (a hypothetical fixed design; ablation baseline).
    pub const NONE: BugSet = BugSet {
        meltdown_forward: false,
        mds_addr_truncate: false,
        phantom_rsb: false,
        phantom_btb: false,
        refetch_contention: false,
        reload_contention: false,
    };
}

/// Sizing and latency parameters of a core model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Core name as reported in tables.
    pub name: &'static str,
    /// Configuration name (Table 2 row "Configuration").
    pub configuration: &'static str,
    /// ISA string (Table 2).
    pub isa: &'static str,
    /// Verilog LoC of the real design (Table 2; used by Table 4 scale).
    pub verilog_loc: usize,
    /// `liveness_mask` annotation LoC (Table 2).
    pub annotation_loc: usize,

    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,

    /// Bimodal branch history table entries.
    pub bht_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Loop predictor entries.
    pub loop_entries: usize,

    /// Instruction cache: number of lines.
    pub icache_lines: usize,
    /// Data cache: number of lines.
    pub dcache_lines: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Miss-status holding registers / line-fill-buffer entries.
    pub mshr_entries: usize,
    /// TLB entries.
    pub tlb_entries: usize,
    /// L2 TLB entries.
    pub l2tlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Physical address width in bits (B1: the load-unit wire width).
    pub paddr_bits: u32,

    /// Cache hit latency in cycles.
    pub cache_hit_latency: u64,
    /// Cache miss (fill) latency in cycles.
    pub cache_miss_latency: u64,
    /// TLB miss (walk via L2 TLB) latency in cycles.
    pub tlb_miss_latency: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Integer divide latency.
    pub div_latency: u64,
    /// FP add/mul latency.
    pub fpu_latency: u64,
    /// FP divide latency (the Spectre-Rewind contention resource).
    pub fdiv_latency: u64,
    /// Branch resolve delay after operands are ready (pipeline depth
    /// between execute and redirect — the transient window length lever).
    pub branch_resolve_delay: u64,
    /// Writeback-to-commit depth for excepting instructions: the flush /
    /// trap sequence takes this many cycles after the fault is known,
    /// during which younger instructions keep executing transiently (the
    /// Meltdown window length lever).
    pub exception_commit_delay: u64,

    /// The bugs this model carries.
    pub bugs: BugSet,
}

/// The SmallBOOM-like configuration (Table 2, column BOOM).
pub fn boom_small() -> CoreConfig {
    CoreConfig {
        name: "BOOM",
        configuration: "SmallBOOM",
        isa: "RV64GC",
        verilog_loc: 171_000,
        annotation_loc: 212,
        rob_entries: 32,
        fetch_width: 1,
        commit_width: 1,
        lq_entries: 8,
        sq_entries: 8,
        bht_entries: 128,
        btb_entries: 32,
        ras_entries: 8,
        loop_entries: 16,
        icache_lines: 64,
        dcache_lines: 64,
        line_bytes: 64,
        mshr_entries: 4,
        tlb_entries: 8,
        l2tlb_entries: 32,
        page_bytes: 4096,
        paddr_bits: 40,
        cache_hit_latency: 2,
        cache_miss_latency: 20,
        tlb_miss_latency: 12,
        mul_latency: 3,
        div_latency: 16,
        fpu_latency: 4,
        fdiv_latency: 24,
        branch_resolve_delay: 6,
        exception_commit_delay: 8,
        bugs: BugSet {
            meltdown_forward: true,
            mds_addr_truncate: false,
            phantom_rsb: true,
            phantom_btb: true,
            refetch_contention: true,
            reload_contention: false,
        },
    }
}

/// The XiangShan-MinimalConfig-like configuration (Table 2).
pub fn xiangshan_minimal() -> CoreConfig {
    CoreConfig {
        name: "XiangShan",
        configuration: "MinimalConfig",
        isa: "RV64GC",
        verilog_loc: 893_000,
        annotation_loc: 592,
        rob_entries: 48,
        fetch_width: 2,
        commit_width: 2,
        lq_entries: 16,
        sq_entries: 12,
        bht_entries: 256,
        btb_entries: 64,
        ras_entries: 16,
        loop_entries: 32,
        icache_lines: 128,
        dcache_lines: 128,
        line_bytes: 64,
        mshr_entries: 8,
        tlb_entries: 16,
        l2tlb_entries: 64,
        page_bytes: 4096,
        paddr_bits: 39,
        cache_hit_latency: 2,
        cache_miss_latency: 24,
        tlb_miss_latency: 16,
        mul_latency: 3,
        div_latency: 20,
        fpu_latency: 4,
        fdiv_latency: 28,
        branch_resolve_delay: 8,
        exception_commit_delay: 10,
        bugs: BugSet {
            meltdown_forward: true,
            mds_addr_truncate: true,
            phantom_rsb: false,
            phantom_btb: false,
            refetch_contention: true,
            reload_contention: true,
        },
    }
}

/// The liveness annotations each core model ships with (Table 2's
/// "Annotation LoC" rows summarise these).
///
/// Every entry binds a sink array to its state-register liveness signal,
/// mirroring the paper's `(* liveness_mask = "..." *)` attributes.
pub fn annotations(cfg: &CoreConfig) -> Vec<dejavuzz_ift::LivenessMask> {
    use dejavuzz_ift::LivenessMask;
    let mut v = vec![
        LivenessMask::new("lfb", "lb", "mshr_valid_vec"),
        LivenessMask::new("dcache", "data_array", "dcache_line_valid_vec"),
        LivenessMask::new("icache", "data_array", "icache_line_valid_vec"),
        LivenessMask::new("ras", "stack", "ras_in_stack_vec"),
        LivenessMask::new("btb", "targets", "btb_entry_valid_vec"),
        LivenessMask::new("bht", "counters", "bht_trained_vec"),
        LivenessMask::new("loop", "entries", "loop_conf_vec"),
        LivenessMask::new("tlb", "entries", "tlb_valid_vec"),
        LivenessMask::new("rob", "results", "rob_entry_valid_vec"),
        LivenessMask::new("regfile", "regs", "prf_allocated_vec"),
        LivenessMask::new("lsu", "lq_data", "lq_valid_vec"),
        LivenessMask::new("lsu", "sq_data", "sq_valid_vec"),
    ];
    if cfg.l2tlb_entries > 0 {
        v.push(LivenessMask::new("l2tlb", "entries", "l2tlb_valid_vec"));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper() {
        let boom = boom_small();
        let xs = xiangshan_minimal();
        assert_eq!(boom.configuration, "SmallBOOM");
        assert_eq!(xs.configuration, "MinimalConfig");
        assert_eq!(boom.isa, "RV64GC");
        assert_eq!(xs.isa, "RV64GC");
        assert_eq!(boom.verilog_loc, 171_000);
        assert_eq!(xs.verilog_loc, 893_000);
        assert_eq!(boom.annotation_loc, 212);
        assert_eq!(xs.annotation_loc, 592);
    }

    #[test]
    fn bug_placement_matches_table5() {
        let boom = boom_small();
        let xs = xiangshan_minimal();
        // B1/B5 are XiangShan bugs, B2/B3 are BOOM bugs, B4 is on both.
        assert!(xs.bugs.mds_addr_truncate && !boom.bugs.mds_addr_truncate);
        assert!(xs.bugs.reload_contention && !boom.bugs.reload_contention);
        assert!(boom.bugs.phantom_rsb && !xs.bugs.phantom_rsb);
        assert!(boom.bugs.phantom_btb && !xs.bugs.phantom_btb);
        assert!(boom.bugs.refetch_contention && xs.bugs.refetch_contention);
        assert!(boom.bugs.meltdown_forward && xs.bugs.meltdown_forward);
    }

    #[test]
    fn xiangshan_is_the_bigger_machine() {
        let boom = boom_small();
        let xs = xiangshan_minimal();
        assert!(xs.rob_entries > boom.rob_entries);
        assert!(xs.fetch_width >= boom.fetch_width);
        assert!(xs.bht_entries > boom.bht_entries);
        assert!(xs.ras_entries > boom.ras_entries);
    }

    #[test]
    fn annotation_registry_covers_paper_examples() {
        let anns = annotations(&boom_small());
        assert!(anns
            .iter()
            .any(|a| a.module == "lfb" && a.signal == "mshr_valid_vec"));
        assert!(anns.iter().any(|a| a.module == "rob"));
        assert!(anns.iter().any(|a| a.module == "regfile"));
        assert!(anns.len() >= 12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the subject
    fn bugset_constants() {
        assert!(BugSet::ALL.meltdown_forward && BugSet::ALL.reload_contention);
        assert!(!BugSet::NONE.meltdown_forward && !BugSet::NONE.phantom_rsb);
    }

    #[test]
    fn b1_wire_width_is_narrower_than_pipeline() {
        assert!(xiangshan_minimal().paddr_bits < 64);
    }
}
