//! Out-of-order processor models for the DejaVuzz reproduction.
//!
//! This crate is the stand-in for the BOOM and XiangShan RTL the paper
//! fuzzes: a cycle-level speculative core ([`core::Core`]) with the full
//! microarchitectural cast — branch predictors (BHT, BTB, RAS, loop
//! predictor), I/D caches with MSHR/line-fill buffer, a two-level TLB,
//! port-contended execution units, a reorder buffer with squash recovery —
//! all operating on two-plane tainted words so the CellIFT / diffIFT
//! policies of `dejavuzz-ift` run inline with the simulation.
//!
//! Two configurations mirror Table 2: [`config::boom_small`] and
//! [`config::xiangshan_minimal`]. Each carries the planted bugs the paper
//! attributes to it (§6.4, B1–B5) plus the classic Meltdown/Spectre
//! behaviours; see [`config::BugSet`].
//!
//! Observation surfaces match the paper's artifacts:
//!
//! * the RoB IO **trace log** ([`trace::Trace`]) with transient-window
//!   detection (enqueued > committed, §4.1.2),
//! * the per-cycle **taint log** ([`dejavuzz_ift::TaintLog`]) feeding the
//!   taint coverage matrix (§4.2.2) and Figure 6,
//! * the final **tainted-sink sweep** with liveness annotations (§4.3.2),
//! * **timing events** from contended resources (Table 5's encoded timing
//!   components) and per-variant cycle counts (Phase 3.1 constant-time
//!   analysis).

pub mod attacks;
pub mod cache;
pub mod config;
pub mod core;
pub mod predict;
pub mod trace;
pub mod waveform;

pub use config::{annotations, boom_small, xiangshan_minimal, BugSet, CoreConfig};
pub use core::{Core, EndReason, RedirectKind, RunResult, TimingEvent, Unit};
pub use trace::{RobEvent, Trace, WindowInfo};
