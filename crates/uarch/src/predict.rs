//! Branch prediction structures: bimodal BHT, BTB, RAS and loop predictor.
//!
//! All tables are two-plane ([`TWord`]) because transient, secret-dependent
//! control flow trains them *differently per DUT variant* — that divergence
//! is both a taint source (diffIFT control rules) and a timing side channel
//! (Table 5's `(fau)btb`, `ras`, `loop` components).

use dejavuzz_ift::{Census, Policy, TWord};

/// A bimodal branch history table of 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Bht {
    counters: Vec<TWord>,
}

impl Bht {
    /// A table of `entries` counters, initialised weakly-not-taken (01).
    pub fn new(entries: usize) -> Self {
        Bht {
            counters: vec![TWord::lit(1); entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.counters.len()
    }

    /// Predicts the branch at `pc`: `(taken_plane_a, taken_plane_b)`.
    pub fn predict(&self, pc: u64) -> (bool, bool) {
        let c = self.counters[self.index(pc)];
        (c.a >= 2, c.b >= 2)
    }

    /// Updates the counter with the resolved outcome (per plane).
    ///
    /// In hardware the update is a multiplexer selecting increment or
    /// decrement with `taken` on the select pin, so the taint rule is
    /// exactly the MUX policy: CellIFT taints the counter whenever the
    /// outcome is tainted; diffIFT only when the variants' outcomes differ.
    pub fn update(&mut self, policy: Policy, pc: u64, taken: TWord) {
        let i = self.index(pc);
        let c = self.counters[i];
        let inc = TWord {
            a: (c.a + 1).min(3),
            b: (c.b + 1).min(3),
            t: c.t,
        };
        let dec = TWord {
            a: c.a.saturating_sub(1),
            b: c.b.saturating_sub(1),
            t: c.t,
        };
        self.counters[i] = policy.mux(taken, inc, dec);
    }

    /// Whether a counter is away from its reset value (the "trained"
    /// liveness signal).
    pub fn trained_vec(&self) -> Vec<bool> {
        self.counters.iter().map(|c| c.a != 1 || c.b != 1).collect()
    }

    /// Taints of all counters (census/sinks).
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.counters.iter().map(|c| c.t)
    }

    /// Resets every counter (new fuzzing iteration).
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = TWord::lit(1));
    }

    /// Reports into a census sweep.
    pub fn census(&self, census: &mut Census) {
        census.report("bht", self.taints());
    }
}

/// A direct-mapped branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    tags: Vec<Option<u64>>,
    targets: Vec<TWord>,
}

impl Btb {
    /// A BTB of `entries` entries.
    pub fn new(entries: usize) -> Self {
        Btb {
            tags: vec![None; entries],
            targets: vec![TWord::lit(0); entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.tags.len()
    }

    /// Predicted target for the jump at `pc`, if the entry is valid.
    pub fn predict(&self, pc: u64) -> Option<TWord> {
        let i = self.index(pc);
        (self.tags[i] == Some(pc)).then(|| self.targets[i])
    }

    /// Installs/corrects the target for `pc` (resolution-time update;
    /// speculative, like BOOM's).
    pub fn update(&mut self, pc: u64, target: TWord) {
        let i = self.index(pc);
        self.tags[i] = Some(pc);
        self.targets[i] = target;
    }

    /// Per-entry validity (liveness vector).
    pub fn valid_vec(&self) -> Vec<bool> {
        self.tags.iter().map(Option::is_some).collect()
    }

    /// Per-entry target taints.
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.targets.iter().map(|t| t.t)
    }

    /// Per-entry targets (sink values).
    pub fn targets(&self) -> &[TWord] {
        &self.targets
    }

    /// Clears all entries.
    pub fn reset(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
        self.targets.iter_mut().for_each(|t| *t = TWord::lit(0));
    }

    /// Reports into a census sweep.
    pub fn census(&self, census: &mut Census) {
        census.report("btb", self.taints());
    }
}

/// Snapshot of the RAS state taken at a speculation checkpoint.
///
/// BOOM's mitigation — and bug B2 — live here: the checkpoint captures only
/// the TOS pointer and the *top* entry; deeper entries overwritten by
/// transient calls are not restored (`full` = false). The XiangShan-like
/// model checkpoints the full stack.
#[derive(Clone, Debug)]
pub struct RasCheckpoint {
    tos: usize,
    top_entry: TWord,
    full_stack: Option<Vec<TWord>>,
}

/// The return address stack.
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<TWord>,
    tos: usize, // number of live entries; top is stack[tos-1]
    /// When true (B2 fixed / XiangShan), checkpoints capture the whole
    /// stack; when false (BOOM), only TOS + top entry are restored.
    full_restore: bool,
}

impl Ras {
    /// A RAS of `entries` slots. `full_restore` selects the recovery
    /// behaviour (see [`RasCheckpoint`]).
    pub fn new(entries: usize, full_restore: bool) -> Self {
        Ras {
            stack: vec![TWord::lit(0); entries],
            tos: 0,
            full_restore,
        }
    }

    /// Pushes a return address (speculative, at fetch of a call).
    pub fn push(&mut self, ra: TWord) {
        if self.tos < self.stack.len() {
            self.stack[self.tos] = ra;
            self.tos += 1;
        } else {
            // Saturating stack: overwrite the top (simple overflow policy).
            *self.stack.last_mut().expect("RAS has at least one slot") = ra;
        }
    }

    /// Pops the predicted return address (speculative, at fetch of a ret).
    pub fn pop(&mut self) -> Option<TWord> {
        if self.tos == 0 {
            return None;
        }
        self.tos -= 1;
        Some(self.stack[self.tos])
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.tos
    }

    /// Takes a speculation checkpoint.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            tos: self.tos,
            top_entry: if self.tos > 0 {
                self.stack[self.tos - 1]
            } else {
                TWord::lit(0)
            },
            full_stack: self.full_restore.then(|| self.stack.clone()),
        }
    }

    /// Restores a checkpoint on squash.
    ///
    /// BOOM flavour (B2): "restores the Top-Of-Stack pointer and the return
    /// address in the top entry after mispredictions \[but\] does not restore
    /// entries below the TOS pointer."
    pub fn restore(&mut self, cp: &RasCheckpoint) {
        self.tos = cp.tos;
        match &cp.full_stack {
            Some(full) => self.stack.clone_from(full),
            None => {
                if cp.tos > 0 {
                    self.stack[cp.tos - 1] = cp.top_entry;
                }
            }
        }
    }

    /// In-stack liveness vector: entries below TOS will be consumed by
    /// future returns.
    pub fn in_stack_vec(&self) -> Vec<bool> {
        (0..self.stack.len()).map(|i| i < self.tos).collect()
    }

    /// Per-slot taints.
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.stack.iter().map(|e| e.t)
    }

    /// Raw slots (sink inspection).
    pub fn slots(&self) -> &[TWord] {
        &self.stack
    }

    /// Empties the stack.
    pub fn reset(&mut self) {
        self.tos = 0;
        self.stack.iter_mut().for_each(|e| *e = TWord::lit(0));
    }

    /// Reports into a census sweep.
    pub fn census(&self, census: &mut Census) {
        census.report("ras", self.taints());
    }
}

/// One loop-predictor entry.
#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: Option<u64>,
    /// Learned trip count (two-plane: a secret could skew it transiently).
    limit: TWord,
    /// Current iteration counter.
    count: TWord,
    /// Confidence: number of consistent observations; predicts only when
    /// `conf >= CONF_THRESHOLD`.
    conf: u8,
}

/// A loop predictor: learns a branch's trip count and predicts the exit
/// iteration. Training it takes *much longer* than training the bimodal
/// table — the paper's "Training Preference" discussion (§7) notes the
/// reduction strategy therefore prefers the cheaper predictor.
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
}

/// Observations of the same trip count before the loop predictor engages.
pub const CONF_THRESHOLD: u8 = 3;

impl LoopPredictor {
    /// A predictor with `entries` entries.
    pub fn new(entries: usize) -> Self {
        LoopPredictor {
            entries: vec![LoopEntry::default(); entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.entries.len()
    }

    /// If confident about the loop at `pc`, predicts whether the *next*
    /// iteration's branch is taken (true while `count < limit`).
    pub fn predict(&self, pc: u64) -> Option<(bool, bool)> {
        let e = &self.entries[self.index(pc)];
        if e.tag != Some(pc) || e.conf < CONF_THRESHOLD {
            return None;
        }
        Some((e.count.a + 1 < e.limit.a, e.count.b + 1 < e.limit.b))
    }

    /// Observes a resolved loop-branch outcome. A taken back-edge bumps the
    /// iteration counter; a not-taken exit closes one trip and updates the
    /// learned limit/confidence.
    pub fn update(&mut self, pc: u64, taken: TWord) {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        if e.tag != Some(pc) {
            *e = LoopEntry {
                tag: Some(pc),
                ..LoopEntry::default()
            };
        }
        if taken.a != 0 {
            e.count = e.count.add(TWord::lit(1)).taint_union(taken);
        } else {
            let trip = e.count.add(TWord::lit(1));
            if trip.a == e.limit.a && trip.a > 1 {
                e.conf = (e.conf + 1).min(CONF_THRESHOLD + 1);
            } else {
                e.limit = trip;
                e.conf = 1;
            }
            e.count = TWord::lit(0);
        }
    }

    /// Confidence-based liveness vector.
    pub fn conf_vec(&self) -> Vec<bool> {
        self.entries.iter().map(|e| e.conf > 0).collect()
    }

    /// Per-entry taints (limit or count tainted).
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| e.limit.t | e.count.t)
    }

    /// Clears the table.
    pub fn reset(&mut self) {
        self.entries
            .iter_mut()
            .for_each(|e| *e = LoopEntry::default());
    }

    /// Reports into a census sweep.
    pub fn census(&self, census: &mut Census) {
        census.report("loop", self.taints());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz_ift::IftMode;

    const DIFF: Policy = Policy::new(IftMode::DiffIft);

    #[test]
    fn bht_trains_towards_taken() {
        let mut bht = Bht::new(16);
        assert_eq!(
            bht.predict(0x1010),
            (false, false),
            "reset state predicts not-taken"
        );
        bht.update(DIFF, 0x1010, TWord::lit(1));
        assert_eq!(
            bht.predict(0x1010),
            (true, true),
            "one taken moves 1 -> 2: predict taken"
        );
        bht.update(DIFF, 0x1010, TWord::lit(0));
        bht.update(DIFF, 0x1010, TWord::lit(0));
        assert_eq!(bht.predict(0x1010), (false, false));
    }

    #[test]
    fn bht_counters_saturate() {
        let mut bht = Bht::new(4);
        for _ in 0..10 {
            bht.update(DIFF, 0x4, TWord::lit(1));
        }
        bht.update(DIFF, 0x4, TWord::lit(0));
        assert_eq!(
            bht.predict(0x4),
            (true, true),
            "3 -> 2 still predicts taken"
        );
    }

    #[test]
    fn bht_diverged_outcome_taints_counter() {
        let mut bht = Bht::new(16);
        // Secret-dependent transient branch: taken in variant 1 only.
        bht.update(DIFF, 0x20, TWord::with_taint(1, 0, 1));
        let mut c = Census::new();
        bht.census(&mut c);
        assert_eq!(c.module_tainted("bht"), Some(1));
        let (pa, pb) = bht.predict(0x20);
        assert!(pa && !pb, "plane predictions diverge — a timing channel");
    }

    #[test]
    fn bht_equal_tainted_outcome_stays_clean_under_diffift() {
        // A tainted branch outcome that is identical in both variants
        // cannot select a different counter update — diffIFT suppresses the
        // control taint (the paper's core insight), CellIFT does not.
        let mut bht = Bht::new(16);
        bht.update(DIFF, 0x20, TWord::with_taint(1, 1, 1));
        let mut c = Census::new();
        bht.census(&mut c);
        assert_eq!(
            c.module_tainted("bht"),
            Some(0),
            "diffIFT: no divergence, no taint"
        );

        let mut bht2 = Bht::new(16);
        bht2.update(
            Policy::new(IftMode::CellIft),
            0x20,
            TWord::with_taint(1, 1, 1),
        );
        let mut c2 = Census::new();
        bht2.census(&mut c2);
        assert_eq!(
            c2.module_tainted("bht"),
            Some(1),
            "CellIFT over-taints the counter"
        );
    }

    #[test]
    fn bht_trained_vec_tracks_reset_state() {
        let mut bht = Bht::new(4);
        assert!(bht.trained_vec().iter().all(|&t| !t));
        bht.update(DIFF, 0x0, TWord::lit(1));
        assert!(bht.trained_vec()[0]);
        bht.reset();
        assert!(!bht.trained_vec()[0]);
    }

    #[test]
    fn btb_predicts_after_update() {
        let mut btb = Btb::new(8);
        assert!(btb.predict(0x1010).is_none());
        btb.update(0x1010, TWord::lit(0x2000));
        assert_eq!(btb.predict(0x1010).map(|t| t.a), Some(0x2000));
        // Different PC mapping to the same set but different tag misses.
        assert!(btb.predict(0x1010 + 8 * 4).is_none());
    }

    #[test]
    fn btb_tainted_target_is_a_sink() {
        let mut btb = Btb::new(8);
        btb.update(0x1010, TWord::secret(0x2000, 0x3000));
        assert_eq!(btb.taints().filter(|&t| t != 0).count(), 1);
        assert!(btb.valid_vec()[btb.index(0x1010)]);
    }

    #[test]
    fn ras_push_pop_lifo() {
        let mut ras = Ras::new(4, true);
        ras.push(TWord::lit(0x100));
        ras.push(TWord::lit(0x200));
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop().map(|w| w.a), Some(0x200));
        assert_eq!(ras.pop().map(|w| w.a), Some(0x100));
        assert!(ras.pop().is_none());
    }

    #[test]
    fn ras_overflow_saturates_at_top() {
        let mut ras = Ras::new(2, true);
        ras.push(TWord::lit(1));
        ras.push(TWord::lit(2));
        ras.push(TWord::lit(3)); // overwrites top
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop().map(|w| w.a), Some(3));
    }

    #[test]
    fn phantom_rsb_partial_restore_leaves_corruption() {
        // B2: transient calls overwrite entries below TOS; BOOM's recovery
        // restores TOS + top only.
        let mut ras = Ras::new(8, /*full_restore=*/ false);
        ras.push(TWord::lit(0x100)); // X-2
        ras.push(TWord::lit(0x200)); // X-1
        ras.push(TWord::lit(0x300)); // X (top)
        let cp = ras.checkpoint();
        // Transient: two rets pop to X-2, then two calls overwrite X-1, X.
        ras.pop();
        ras.pop();
        ras.push(TWord::secret(0xBAD0, 0xBAD8)); // overwrites slot of 0x200
        ras.push(TWord::secret(0xBAD0, 0xBAD8)); // overwrites slot of 0x300
        ras.restore(&cp);
        assert_eq!(ras.depth(), 3);
        assert_eq!(ras.slots()[2].a, 0x300, "top entry restored");
        assert_eq!(
            ras.slots()[1].a,
            0xBAD0,
            "entry below TOS NOT restored (B2)"
        );
        assert!(ras.slots()[1].is_tainted());
        assert!(
            ras.in_stack_vec()[1],
            "corrupted entry is live -> exploitable"
        );
    }

    #[test]
    fn full_restore_fixes_phantom_rsb() {
        let mut ras = Ras::new(8, /*full_restore=*/ true);
        ras.push(TWord::lit(0x100));
        ras.push(TWord::lit(0x200));
        ras.push(TWord::lit(0x300));
        let cp = ras.checkpoint();
        ras.pop();
        ras.pop();
        ras.push(TWord::secret(0xBAD0, 0xBAD8));
        ras.restore(&cp);
        assert_eq!(
            ras.slots()[1].a,
            0x200,
            "full checkpoint restores deep entries"
        );
        assert!(!ras.slots()[1].is_tainted());
    }

    #[test]
    fn loop_predictor_needs_long_training() {
        let mut lp = LoopPredictor::new(8);
        let pc = 0x40;
        // One full trip of 5 iterations: 4 taken + 1 exit.
        let trip = |lp: &mut LoopPredictor| {
            for _ in 0..4 {
                lp.update(pc, TWord::lit(1));
            }
            lp.update(pc, TWord::lit(0));
        };
        trip(&mut lp);
        assert!(lp.predict(pc).is_none(), "one trip is not confident");
        trip(&mut lp);
        trip(&mut lp);
        trip(&mut lp);
        assert!(
            lp.predict(pc).is_some(),
            "consistent trips build confidence"
        );
        assert!(lp.conf_vec()[lp.index(pc)]);
    }

    #[test]
    fn loop_predictor_predicts_exit() {
        let mut lp = LoopPredictor::new(8);
        let pc = 0x40;
        for _ in 0..4 {
            for _ in 0..2 {
                lp.update(pc, TWord::lit(1));
            }
            lp.update(pc, TWord::lit(0));
        }
        // Fresh trip: iterations 1..2 predicted taken, exit predicted after.
        let (t, _) = lp.predict(pc).expect("confident");
        assert!(t, "first iteration predicted taken");
        lp.update(pc, TWord::lit(1));
        lp.update(pc, TWord::lit(1));
        let (t, _) = lp.predict(pc).expect("confident");
        assert!(!t, "at the learned limit the exit is predicted");
    }
}
