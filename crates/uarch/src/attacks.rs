//! Hand-written transient-execution attack test cases.
//!
//! These are the five benchmarks of Table 4 / Figure 6 ("a benchmark
//! covering common transient execution vulnerability test cases"):
//! Spectre-V1, Spectre-V2, Meltdown, Spectre-V4 and Spectre-RSB, each
//! expressed as a swapMem schedule exactly the way the paper's Figure 4
//! stages them — training packets first, the transient packet last, with
//! training instructions pinned to the same addresses as their trigger
//! instructions.

use dejavuzz_isa::asm::ProgramBuilder;
use dejavuzz_isa::instr::{AluOp, BranchOp, Instr, LoadOp, Reg};
use dejavuzz_swapmem::{Layout, PacketKind, SecretPolicy, SwapMem, SwapPacket, DEFAULT_LAYOUT};

/// Address of the leak array (256 cache lines) inside the data region.
pub const LEAK_BASE: u64 = 0x8000;
/// Address of the Spectre-V4 pointer slot.
pub const V4_SLOT: u64 = 0xE000;
/// Address of the Spectre-V4 harmless replacement target.
pub const V4_DUMMY: u64 = 0xE800;

/// One ready-to-run attack scenario.
#[derive(Clone, Debug)]
pub struct AttackCase {
    /// Scenario name as printed in Table 4 / Figure 6.
    pub name: &'static str,
    /// The swap schedule (training packets, then the transient packet).
    pub packets: Vec<SwapPacket>,
    /// Secret permission handling.
    pub secret_policy: SecretPolicy,
    /// `(addr, bytes)` pairs written into memory before the run.
    pub data_init: Vec<(u64, Vec<u8>)>,
}

impl AttackCase {
    /// Builds a [`SwapMem`] with this scenario installed and the secret
    /// pair planted (variant 2 = bit-flip, per §3.3).
    pub fn build_mem(&self, secret: &[u8]) -> SwapMem {
        self.build_mem_with(secret, false)
    }

    /// Like [`AttackCase::build_mem`], but optionally planting *identical*
    /// secrets in both variants (the diffIFT_FN study of Figure 6).
    pub fn build_mem_with(&self, secret: &[u8], identical_secrets: bool) -> SwapMem {
        let mut mem = SwapMem::new(DEFAULT_LAYOUT);
        for (addr, bytes) in &self.data_init {
            mem.write_bytes(*addr, bytes);
        }
        if identical_secrets {
            mem.plant_secret_identical(secret);
        } else {
            mem.plant_secret(secret);
        }
        mem.set_secret_policy(self.secret_policy);
        mem.set_schedule(self.packets.clone());
        mem
    }
}

/// The canonical secret-access + secret-encode window body (paper Figure 1
/// steps 3: `lb s0, 0(t0); add t0, t0, s0; ld t0, 0(t0)` modulo register
/// allocation): loads one secret byte and touches a secret-indexed cache
/// line of the leak array.
fn emit_window_body(b: &mut ProgramBuilder) {
    b.push(Instr::Load {
        op: LoadOp::Lb,
        rd: Reg::S0,
        rs1: Reg::T0,
        offset: 0,
    });
    b.push(Instr::OpImm {
        op: AluOp::Sll,
        rd: Reg::S0,
        rs1: Reg::S0,
        imm: 6,
    });
    b.push(Instr::Op {
        op: AluOp::Add,
        rd: Reg::T1,
        rs1: Reg::T2,
        rs2: Reg::S0,
    });
    b.push(Instr::ld(Reg::T3, Reg::T1, 0));
    b.push(Instr::Ecall);
}

/// Register setup shared by the transient packets: `t0 = &secret`,
/// `t2 = &leak`.
fn emit_setup(b: &mut ProgramBuilder, layout: Layout) {
    b.label_at("secret", layout.secret);
    b.label_at("leak", LEAK_BASE);
    b.la(Reg::T0, "secret");
    b.la(Reg::T2, "leak");
}

/// Spectre-V1: a conditional branch trained taken, transiently executing
/// the taken path while the architectural path falls through.
pub fn spectre_v1() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let branch_addr = l.swappable + 0x40;
    // Training packet: `beq a0, a0, +8` at the shared branch address.
    let train = {
        let mut b = ProgramBuilder::new(l.swappable);
        b.pad_to(branch_addr);
        b.push(Instr::Branch {
            op: BranchOp::Beq,
            rs1: Reg::A0,
            rs2: Reg::A0,
            offset: 8,
        });
        b.push(Instr::NOP);
        b.push(Instr::Ecall); // branch target
        SwapPacket::new(
            "trigger_train_taken",
            PacketKind::TriggerTraining,
            b.assemble(),
        )
    };
    // Transient packet: `bne a0, a0, win` at the same address — never
    // taken, predicted taken.
    let transient = {
        let mut b = ProgramBuilder::new(l.swappable);
        emit_setup(&mut b, l);
        b.pad_to(branch_addr);
        b.branch_to(
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::A0,
                offset: 0,
            },
            "win",
        );
        b.push(Instr::Ecall); // architectural exit
        b.label("win");
        emit_window_body(&mut b);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "Spectre-V1",
        packets: vec![train.clone(), train, transient],
        secret_policy: SecretPolicy::AlwaysReadable,
        data_init: vec![],
    }
}

/// Spectre-V2: an indirect jump whose BTB entry is trained to the window,
/// then invoked with a different architectural target (paper Figure 1: the
/// same code, different `a0`).
pub fn spectre_v2() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let jump_addr = l.swappable + 0x40;
    let window_addr = l.swappable + 0x60;
    let exit_addr = l.swappable + 0x80;
    let train = {
        let mut b = ProgramBuilder::new(l.swappable);
        b.label_at("window", window_addr);
        b.la(Reg::A0, "window");
        b.pad_to(jump_addr);
        b.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::A0,
            offset: 0,
        });
        b.pad_to(window_addr);
        b.push(Instr::Ecall);
        SwapPacket::new(
            "trigger_train_btb",
            PacketKind::TriggerTraining,
            b.assemble(),
        )
    };
    let transient = {
        let mut b = ProgramBuilder::new(l.swappable);
        b.label_at("exit", exit_addr);
        emit_setup(&mut b, l);
        b.la(Reg::A0, "exit");
        b.pad_to(jump_addr);
        b.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::A0,
            offset: 0,
        });
        b.pad_to(window_addr);
        emit_window_body(&mut b);
        b.pad_to(exit_addr);
        b.push(Instr::Ecall);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "Spectre-V2",
        packets: vec![train, transient],
        secret_policy: SecretPolicy::AlwaysReadable,
        data_init: vec![],
    }
}

/// Spectre-RSB: the trigger training packet performs a call whose return
/// address equals the window start and exits *without* returning (paper
/// Figure 5: "exit w/o ret"); the transient packet's bare `ret` then pops
/// the stale entry and speculatively returns into the window.
pub fn spectre_rsb() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let window_addr = l.swappable + 0x60;
    let ret_addr = l.swappable + 0x40;
    let exit_addr = l.swappable + 0x80;
    let train = {
        let mut b = ProgramBuilder::new(l.swappable);
        // The call sits at window_addr - 4 so the pushed return address is
        // exactly the window start.
        b.pad_to(window_addr - 4);
        b.push(Instr::call(8)); // jal ra, +8 -> pushes window_addr
        b.pad_to(window_addr + 4);
        b.push(Instr::Ecall); // exit without ret: the RAS entry stays
        SwapPacket::new(
            "trigger_train_ras",
            PacketKind::TriggerTraining,
            b.assemble(),
        )
    };
    let transient = {
        let mut b = ProgramBuilder::new(l.swappable);
        b.label_at("exit", exit_addr);
        emit_setup(&mut b, l);
        b.la(Reg::RA, "exit"); // architectural return target
        b.pad_to(ret_addr);
        b.push(Instr::ret()); // RAS predicts window_addr
        b.pad_to(window_addr);
        emit_window_body(&mut b);
        b.pad_to(exit_addr);
        b.push(Instr::Ecall);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "Spectre-RSB",
        packets: vec![train, transient],
        secret_policy: SecretPolicy::AlwaysReadable,
        data_init: vec![],
    }
}

/// Spectre-V4 (memory disambiguation): a pointer slot holds `&secret`; a
/// late-resolving store overwrites it with `&dummy`, and the younger load
/// speculatively bypasses the store, dereferencing the stale secret
/// pointer.
pub fn spectre_v4() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let transient = {
        let mut b = ProgramBuilder::new(l.swappable);
        b.label_at("slot", V4_SLOT);
        b.label_at("dummy", V4_DUMMY);
        emit_setup(&mut b, l);
        b.la(Reg::T0, "slot"); // overrides t0: the slot, not the secret
        b.la(Reg::A2, "dummy");
        // Long-latency address computation delays the store's resolution.
        b.push(Instr::addi(Reg::T5, Reg::ZERO, 0));
        b.push(Instr::addi(Reg::T6, Reg::ZERO, 1));
        b.push(Instr::Op {
            op: AluOp::Div,
            rd: Reg::T4,
            rs1: Reg::T5,
            rs2: Reg::T6,
        }); // = 0
        b.push(Instr::Op {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::T0,
            rs2: Reg::T4,
        });
        b.push(Instr::sd(Reg::A2, Reg::A1, 0)); // resolves late
        b.push(Instr::ld(Reg::A3, Reg::T0, 0)); // bypasses: stale &secret
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::A3,
            offset: 0,
        });
        b.push(Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 6,
        });
        b.push(Instr::Op {
            op: AluOp::Add,
            rd: Reg::T1,
            rs1: Reg::T2,
            rs2: Reg::S0,
        });
        b.push(Instr::ld(Reg::T3, Reg::T1, 0));
        b.push(Instr::Ecall);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "Spectre-V4",
        packets: vec![transient],
        secret_policy: SecretPolicy::AlwaysReadable,
        data_init: vec![
            (V4_SLOT, DEFAULT_LAYOUT.secret.to_le_bytes().to_vec()),
            (V4_DUMMY, vec![0u8; 8]),
        ],
    }
}

/// Meltdown: the window training packet warms the (still readable) secret
/// into the data cache; the swap runtime then revokes read permission, and
/// the transient packet's faulting load forwards the secret to its
/// dependents before the exception commits.
pub fn meltdown() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let warm = {
        let mut b = ProgramBuilder::new(l.swappable);
        b.label_at("secret", l.secret);
        b.la(Reg::T0, "secret");
        b.push(Instr::ld(Reg::S1, Reg::T0, 0));
        b.push(Instr::Ecall);
        SwapPacket::new(
            "window_train_warm",
            PacketKind::WindowTraining,
            b.assemble(),
        )
    };
    let transient = {
        let mut b = ProgramBuilder::new(l.swappable);
        emit_setup(&mut b, l);
        emit_window_body(&mut b); // the lb faults; dependents run transiently
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "Meltdown",
        packets: vec![warm, transient],
        secret_policy: SecretPolicy::ProtectBeforeTransient,
        data_init: vec![],
    }
}

/// The five benchmark scenarios in Table 4's row order.
pub fn all() -> Vec<AttackCase> {
    vec![
        spectre_v1(),
        spectre_v2(),
        meltdown(),
        spectre_v4(),
        spectre_rsb(),
    ]
}

/// Address of the condition slot loaded (slowly) by the B2 trigger branch.
pub const B2_COND_SLOT: u64 = 0xE100;
/// Address of the pointer to [`B2_COND_SLOT`] (the first hop of the
/// pointer chase that keeps the B2 trigger branch unresolved).
pub const B2_COND_PTR: u64 = 0xE200;

/// B1 MeltDown-Sampling (CVE-2024-44594): the secret-access block masks the
/// high bits of the address ("DejaVuzz generates illegal addresses through
/// the secret access blocks with masks"); on the buggy XiangShan the mask
/// is truncated on the way to the load unit, sampling the aliased target.
pub fn meltdown_sampling() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let transient = {
        let mut b = ProgramBuilder::new(l.swappable);
        emit_setup(&mut b, l);
        // t0 |= 1 << 63: an illegal masked address aliasing the secret.
        b.push(Instr::addi(Reg::T4, Reg::ZERO, 1));
        b.push(Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::T4,
            rs1: Reg::T4,
            imm: 63,
        });
        b.push(Instr::Op {
            op: AluOp::Or,
            rd: Reg::T0,
            rs1: Reg::T0,
            rs2: Reg::T4,
        });
        emit_window_body(&mut b); // lb faults (access fault), samples anyway
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "MeltDown-Sampling (B1)",
        packets: vec![transient],
        secret_policy: SecretPolicy::ProtectBeforeTransient,
        data_init: vec![],
    }
}

/// B2 Phantom-RSB (CVE-2024-44591): transient returns pop below the
/// checkpointed TOS and a transient call through a secret-dependent target
/// overwrites the slot; BOOM's recovery restores only TOS + the top entry,
/// leaving the secret-dependent return address live in the stack.
pub fn phantom_rsb() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let s = l.swappable;
    let (c2_site, c1_ret, gadgets, exit) = (s + 0x4C, s + 0x60, s + 0x180, s + 0x100);
    // Trigger training: two calls leave RAS entries [c1_ret, c2_site+4].
    let train = {
        let mut b = ProgramBuilder::new(s);
        b.jal_to(Reg::ZERO, "start");
        b.pad_to(c2_site);
        b.push(Instr::call(8)); // pushes c2_site + 4 (top entry)
        b.pad_to(c2_site + 8);
        b.push(Instr::Ecall); // exit without ret: entries stay
        b.pad_to(c1_ret - 4);
        b.label("start");
        b.jal_to(Reg::RA, "back"); // pushes c1_ret (slot below top)
        b.label_at("back", c2_site);
        SwapPacket::new(
            "trigger_train_ras",
            PacketKind::TriggerTraining,
            b.assemble(),
        )
    };
    // Window training: warm the secret line so the window body runs far
    // ahead of the (deliberately cold) trigger condition.
    let warm = {
        let mut b = ProgramBuilder::new(s);
        b.label_at("secret", l.secret);
        b.la(Reg::T0, "secret");
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S1,
            rs1: Reg::T0,
            offset: 0,
        });
        b.push(Instr::Ecall);
        SwapPacket::new(
            "window_train_warm",
            PacketKind::WindowTraining,
            b.assemble(),
        )
    };
    let transient = {
        let mut b = ProgramBuilder::new(s);
        b.label_at("cond_ptr", B2_COND_PTR);
        b.label_at("gadgets", gadgets);
        b.label_at("exit", exit);
        b.label_at("c2ret", c2_site + 4);
        emit_setup(&mut b, l);
        // Slow trigger condition: a cold two-hop pointer chase keeps the
        // branch unresolved while the return chain plays out.
        b.la(Reg::A5, "cond_ptr");
        b.push(Instr::ld(Reg::A5, Reg::A5, 0)); // cold hop 1 -> &cond
        b.push(Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::A5,
            offset: 0,
        }); // cold hop 2
            // Secret-dependent gadget pointer: gadgets + (secret & 1) * 64.
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        });
        b.push(Instr::OpImm {
            op: AluOp::And,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 1,
        });
        b.push(Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 6,
        });
        b.la(Reg::T5, "gadgets");
        b.push(Instr::Op {
            op: AluOp::Add,
            rd: Reg::T5,
            rs1: Reg::T5,
            rs2: Reg::S0,
        });
        b.la(Reg::RA, "c2ret"); // makes the transient rets "return to next"
                                // The trigger: actually taken (a0 == 0), predicted not-taken.
        b.branch_to(
            Instr::Branch {
                op: BranchOp::Beq,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                offset: 0,
            },
            "exit",
        );
        // ---- transient window (fall-through) ----
        b.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        }); // ret #1: pop -> c2ret
        b.pad_to(c2_site + 4);
        b.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 16,
        }); // ret #2: pop -> c1_ret
        b.pad_to(c1_ret);
        b.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::T5,
            offset: 0,
        }); // secret-dep jump
        b.pad_to(exit);
        b.push(Instr::Ecall);
        b.pad_to(gadgets);
        b.push(Instr::call(8)); // pushes a secret-dependent (diverged-PC) ra
        b.push(Instr::NOP);
        b.push(Instr::NOP);
        b.pad_to(gadgets + 64);
        b.push(Instr::call(8)); // plane-b flavour of the same gadget
        b.push(Instr::NOP);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "Phantom-RSB (B2)",
        packets: vec![warm, train, transient],
        secret_policy: SecretPolicy::AlwaysReadable,
        data_init: vec![
            (B2_COND_SLOT, vec![0u8; 8]),
            (B2_COND_PTR, B2_COND_SLOT.to_le_bytes().to_vec()),
        ],
    }
}

/// B3 Phantom-BTB (CVE-2024-44590), parameterised by the nop padding
/// between the excepting load and the mispredicted indirect jump — the race
/// only fires when the misprediction resolves in the exception's commit
/// cycle, so the fuzzer (and [`find_phantom_btb`]) scans the offset.
pub fn phantom_btb(nops: usize) -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let s = l.swappable;
    // The jump follows the excepting load after `nops` pads; the scan moves
    // it until its resolution lands in the exception's commit cycle.
    let jump_site = s + 0x2C + 4 * nops as u64;
    let jtarget_a = s + 0x400;
    let jtarget_b = s + 0x440;
    // Train the BTB entry of the jump site to jtarget_a.
    let train = {
        let mut b = ProgramBuilder::new(s);
        b.label_at("jta", jtarget_a);
        b.la(Reg::T5, "jta");
        b.pad_to(jump_site);
        b.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::T5,
            offset: 0,
        });
        b.pad_to(jtarget_a);
        b.push(Instr::Ecall);
        SwapPacket::new(
            "trigger_train_btb",
            PacketKind::TriggerTraining,
            b.assemble(),
        )
    };
    let warm = {
        let mut b = ProgramBuilder::new(s);
        b.label_at("secret", l.secret);
        b.la(Reg::T0, "secret");
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S1,
            rs1: Reg::T0,
            offset: 0,
        });
        b.push(Instr::Ecall);
        SwapPacket::new(
            "window_train_warm",
            PacketKind::WindowTraining,
            b.assemble(),
        )
    };
    let transient = {
        let mut b = ProgramBuilder::new(s);
        b.label_at("jta", jtarget_a);
        b.label_at("jtb", jtarget_b);
        emit_setup(&mut b, l);
        // t5 = secret-dependent jump target (jta or jtb); bit 1 of the
        // secret selects, scaled by 32 so the offset lands on jtb.
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        });
        b.push(Instr::OpImm {
            op: AluOp::And,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 2,
        });
        b.push(Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 5,
        });
        b.la(Reg::T5, "jta");
        b.push(Instr::Op {
            op: AluOp::Add,
            rd: Reg::T5,
            rs1: Reg::T5,
            rs2: Reg::S0,
        });
        // The excepting instruction: lw t4, 1(x0) — misaligned.
        b.push(Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::T4,
            rs1: Reg::ZERO,
            offset: 1,
        });
        b.nops(nops);
        b.pad_to(jump_site);
        // Mispredicted (BTB says jta, actual is secret-dependent): the
        // correction races the exception commit.
        b.push(Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::T5,
            offset: 0,
        });
        b.pad_to(jtarget_a);
        b.push(Instr::Ecall);
        b.pad_to(jtarget_b);
        b.push(Instr::Ecall);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    AttackCase {
        name: "Phantom-BTB (B3)",
        packets: vec![train, warm, transient],
        secret_policy: SecretPolicy::AlwaysReadable,
        data_init: vec![],
    }
}

/// B4 Spectre-Refetch (CVE-2024-44592/3): a secret-dependent branch inside
/// the window steers fetch onto a cold icache line in one variant only; the
/// occupied fetch port delays the first post-window fetch.
pub fn spectre_refetch() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let mut case = spectre_v1();
    // Replace the transient packet's encode block with a secret-dependent
    // *control* dependency instead of a data access.
    let s = l.swappable;
    let branch_addr = s + 0x40;
    let transient = {
        let mut b = ProgramBuilder::new(s);
        emit_setup(&mut b, l);
        b.pad_to(branch_addr);
        b.branch_to(
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::A0,
                offset: 0,
            },
            "win",
        );
        b.push(Instr::Ecall);
        b.label("win");
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        });
        b.push(Instr::OpImm {
            op: AluOp::And,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 1,
        });
        // Secret-dependent branch: plane divergence lands one variant on a
        // far (cold) icache line.
        b.branch_to(
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::S0,
                rs2: Reg::ZERO,
                offset: 0,
            },
            "far",
        );
        b.push(Instr::NOP);
        b.push(Instr::Ecall);
        b.pad_to(s + 0x800); // a line never fetched before
        b.label("far");
        b.push(Instr::NOP);
        b.push(Instr::Ecall);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    let n = case.packets.len();
    case.packets[n - 1] = transient;
    case.name = "Spectre-Refetch (B4)";
    case
}

/// B5 Spectre-Reload (CVE-2024-44595): a cache-missing load is in flight
/// when a secret-dependent *cache-hitting* load claims the shared load
/// write-back port, delaying the miss's write-back in one variant only.
pub fn spectre_reload() -> AttackCase {
    let l = DEFAULT_LAYOUT;
    let s = l.swappable;
    let branch_addr = s + 0x40;
    let case = spectre_v1();
    let transient = {
        let mut b = ProgramBuilder::new(s);
        b.label_at("warm_a", LEAK_BASE);
        b.label_at("cold", V4_DUMMY);
        emit_setup(&mut b, l);
        b.la(Reg::A4, "warm_a");
        b.push(Instr::ld(Reg::A6, Reg::A4, 0)); // warm leak[0]
        b.la(Reg::A5, "cold");
        b.pad_to(branch_addr);
        b.branch_to(
            Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::A0,
                offset: 0,
            },
            "win",
        );
        b.push(Instr::Ecall);
        b.label("win");
        // The older cache-missing load…
        b.push(Instr::ld(Reg::A7, Reg::A5, 0));
        // …and a secret-dependent load that hits in one variant only
        // (leak[0] warm, leak[64] cold).
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        });
        b.push(Instr::OpImm {
            op: AluOp::And,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 1,
        });
        b.push(Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::S0,
            rs1: Reg::S0,
            imm: 6,
        });
        b.push(Instr::Op {
            op: AluOp::Add,
            rd: Reg::T1,
            rs1: Reg::A4,
            rs2: Reg::S0,
        });
        b.push(Instr::ld(Reg::T3, Reg::T1, 0));
        b.push(Instr::Ecall);
        SwapPacket::new("transient", PacketKind::Transient, b.assemble())
    };
    let mut case = case;
    let n = case.packets.len();
    case.packets[n - 1] = transient;
    case.name = "Spectre-Reload (B5)";
    case
}

/// PC of the excepting (misaligned) load in [`phantom_btb`] stimuli — the
/// address whose BTB entry the B3 race corrupts.
pub const B3_EXCEPTING_PC: u64 = DEFAULT_LAYOUT.swappable + 0x28;

/// Scans the B3 race window by varying the nop padding, returning the first
/// padding for which the *excepting PC's* BTB entry ends up tainted and
/// valid — the deterministic analogue of the fuzzer stumbling onto the
/// race. (A tainted entry at the jump's own PC is ordinary speculative BTB
/// training, not the bug.)
pub fn find_phantom_btb(
    cfg: &crate::config::CoreConfig,
    max_nops: usize,
) -> Option<(usize, crate::core::RunResult)> {
    use crate::core::Core;
    let index = ((B3_EXCEPTING_PC >> 2) as usize) % cfg.btb_entries;
    for nops in 0..=max_nops {
        let case = phantom_btb(nops);
        let mut mem = case.build_mem(&[0x2A]);
        let r = Core::new(*cfg, dejavuzz_ift::IftMode::DiffIft).run(&mut mem, 10_000);
        if r.sinks
            .iter()
            .any(|s| s.module == "btb" && s.index == index && s.exploitable())
        {
            return Some((nops, r));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::boom_small;
    use crate::core::Core;
    use dejavuzz_ift::IftMode;

    fn run(case: &AttackCase) -> crate::core::RunResult {
        let mut mem = case.build_mem(&[0x2A]);
        Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 5_000)
    }

    #[test]
    fn spectre_v1_triggers_window_and_taints_dcache() {
        let r = run(&spectre_v1());
        assert_eq!(r.end, crate::core::EndReason::Done);
        let w = r.window().expect("transient window triggered");
        assert!(w.triggered());
        assert!(w.squashed >= 2, "window body executed transiently: {w:?}");
        // Secret-indexed leak-array line: dcache divergence + taint.
        assert!(
            r.sinks
                .iter()
                .any(|s| s.module == "dcache" && s.exploitable()),
            "dcache must hold a live tainted line: {:?}",
            r.sinks
        );
    }

    #[test]
    fn spectre_v2_mispredicts_into_trained_target() {
        let r = run(&spectre_v2());
        assert_eq!(r.end, crate::core::EndReason::Done);
        let w = r.window().expect("indirect-jump window");
        assert!(w.triggered());
        assert!(r
            .sinks
            .iter()
            .any(|s| s.module == "dcache" && s.exploitable()));
    }

    #[test]
    fn spectre_rsb_returns_into_window() {
        let r = run(&spectre_rsb());
        assert_eq!(r.end, crate::core::EndReason::Done);
        let w = r.window().expect("return-mispredict window");
        assert!(w.triggered());
        assert!(r
            .sinks
            .iter()
            .any(|s| s.module == "dcache" && s.exploitable()));
    }

    #[test]
    fn spectre_v4_bypasses_store() {
        let r = run(&spectre_v4());
        assert_eq!(r.end, crate::core::EndReason::Done);
        let w = r.window().expect("disambiguation window");
        assert!(w.triggered());
        assert!(r
            .sinks
            .iter()
            .any(|s| s.module == "dcache" && s.exploitable()));
    }

    #[test]
    fn meltdown_forwards_faulting_secret() {
        let r = run(&meltdown());
        assert_eq!(r.end, crate::core::EndReason::Done);
        let w = r.window().expect("exception window");
        assert!(w.triggered());
        assert!(r
            .sinks
            .iter()
            .any(|s| s.module == "dcache" && s.exploitable()));
    }

    #[test]
    fn meltdown_fixed_hardware_leaks_nothing() {
        let mut cfg = boom_small();
        cfg.bugs.meltdown_forward = false;
        let case = meltdown();
        let mut mem = case.build_mem(&[0x2A]);
        let fixed = Core::new(cfg, IftMode::DiffIft).run(&mut mem, 5_000);
        let vulnerable = run(&meltdown());
        // The warm-up packet legitimately leaves the secret's own line
        // tainted in both runs (Phase 3's encode sanitization subtracts
        // it); what the fixed design must NOT have is the *additional*
        // secret-indexed leak-array lines the forwarded data touches.
        let count = |r: &crate::core::RunResult| {
            r.sinks
                .iter()
                .filter(|s| s.module == "dcache" && s.exploitable())
                .count()
        };
        assert!(
            count(&vulnerable) > count(&fixed),
            "forwarding must taint extra leak lines: vulnerable={} fixed={}",
            count(&vulnerable),
            count(&fixed)
        );
        assert_eq!(
            count(&fixed),
            1,
            "fixed design: only the warmed secret line is tainted"
        );
    }

    #[test]
    fn all_cases_build() {
        let cases = all();
        assert_eq!(cases.len(), 5);
        for c in &cases {
            assert!(!c.packets.is_empty());
            assert_eq!(c.packets.last().unwrap().kind, PacketKind::Transient);
        }
    }

    // ---- the five paper bugs (B1–B5, §6.4) ----

    fn run_on(case: &AttackCase, cfg: crate::config::CoreConfig) -> crate::core::RunResult {
        let mut mem = case.build_mem(&[0x2A]);
        Core::new(cfg, IftMode::DiffIft).run(&mut mem, 10_000)
    }

    #[test]
    fn b1_meltdown_sampling_leaks_on_xiangshan_only() {
        use crate::config::xiangshan_minimal;
        let case = meltdown_sampling();
        let xs = run_on(&case, xiangshan_minimal());
        assert!(
            xs.sinks
                .iter()
                .any(|s| s.module == "dcache" && s.exploitable()),
            "B1: truncated illegal address samples the secret on XiangShan"
        );
        let boom = run_on(&case, boom_small());
        assert!(
            !boom
                .sinks
                .iter()
                .any(|s| s.module == "dcache" && s.exploitable()),
            "BOOM's full-width wire blocks the illegal address outright"
        );
    }

    #[test]
    fn b2_phantom_rsb_corrupts_entry_below_tos() {
        let case = phantom_rsb();
        let boom = run_on(&case, boom_small());
        let ras_leak = boom
            .sinks
            .iter()
            .any(|s| s.module == "ras" && s.exploitable());
        assert!(
            ras_leak,
            "B2: BOOM leaves a secret-dependent RAS entry below TOS: {:?}",
            boom.sinks
        );
        // XiangShan (full RAS checkpointing) does not exhibit B2.
        let xs = run_on(&case, crate::config::xiangshan_minimal());
        assert!(
            !xs.sinks
                .iter()
                .any(|s| s.module == "ras" && s.exploitable()),
            "full restore must fix B2: {:?}",
            xs.sinks
        );
    }

    #[test]
    fn b3_phantom_btb_race_found_by_scanning() {
        let cfg = boom_small();
        let found = find_phantom_btb(&cfg, 48);
        assert!(
            found.is_some(),
            "B3: some padding must hit the race on BOOM"
        );
        // The fixed design never exhibits it, at any padding.
        let mut fixed = cfg;
        fixed.bugs.phantom_btb = false;
        assert!(find_phantom_btb(&fixed, 48).is_none());
    }

    #[test]
    fn b4_spectre_refetch_diverges_fetch_timing() {
        let case = spectre_refetch();
        let r = run_on(&case, boom_small());
        assert!(
            r.timing_events.iter().any(|t| t.resource == "icache"),
            "B4: the secret-dependent transient fetch must diverge icache timing: {:?}",
            r.timing_events
        );
        assert!(r.timing_diverged(), "variants finish at different times");
    }

    #[test]
    fn b5_spectre_reload_contends_on_writeback() {
        use crate::config::xiangshan_minimal;
        let case = spectre_reload();
        let r = run_on(&case, xiangshan_minimal());
        assert!(
            r.timing_events
                .iter()
                .any(|t| t.resource == "dcache" || t.resource == "lsu-wb" || t.resource == "lsu"),
            "B5: load-path timing must diverge: {:?}",
            r.timing_events
        );
        assert!(r.timing_diverged());
    }
}
