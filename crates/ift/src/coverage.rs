//! The taint coverage matrix of §4.2.2.
//!
//! "The taint coverage treats the total number of taints within a local
//! range as an independent coverage point. […] DejaVuzz inserts a new
//! register array bitmap into each RTL module. During each clock cycle,
//! DejaVuzz uses the number of tainted registers within the module as the
//! index and writes 1 to the corresponding slot in the bitmap."
//!
//! Coverage points are therefore `(module, tainted-register-count)` tuples.
//! The matrix has the two properties the paper highlights: it is *local*
//! (module-granular, reflecting propagation across hierarchies) and
//! *position-insensitive* (which slot of a cache data array holds the secret
//! does not matter, only how many slots do).

use std::collections::HashSet;
use std::sync::Arc;

use crate::census::Census;

/// One coverage point: a (module, tainted-count) tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoveragePoint {
    /// Module instance name.
    pub module: &'static str,
    /// Number of simultaneously tainted registers observed in the module.
    pub index: usize,
}

/// Anything that can accumulate taint-coverage observations: the plain
/// [`CoverageMatrix`], the concurrent [`crate::SharedCoverage`] (through a
/// shared reference), or composition wrappers like
/// [`crate::RecordingCoverage`]. Phase 2 of the fuzzing pipeline is generic
/// over this trait so single-worker and pooled executors share one code
/// path.
pub trait TaintCoverage {
    /// Observes one cycle's census; returns the number of *new* points.
    fn observe(&mut self, census: &Census) -> usize;

    /// Observes every cycle of a taint log, returning the new points found.
    fn observe_log(&mut self, log: &crate::census::TaintLog) -> usize {
        log.iter().map(|(_, c)| self.observe(c)).sum()
    }
}

/// A mutable destination for individual coverage points: the plain
/// [`CoverageMatrix`] or the two-level [`OverlayCoverage`]. The executor's
/// iteration pipeline is generic over this trait so a work-stealing slot
/// can run against a cheap base+overlay pair instead of cloning the whole
/// round-start matrix.
pub trait CoverageView {
    /// Inserts one point; true if it was fresh against this view.
    fn insert_point(&mut self, point: CoveragePoint) -> bool;

    /// True if the view already holds `point`.
    fn contains_point(&self, point: &CoveragePoint) -> bool;
}

/// The accumulated taint coverage of a fuzzing campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageMatrix {
    points: HashSet<CoveragePoint>,
}

impl CoverageMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        CoverageMatrix::default()
    }

    /// Inserts one point directly; true if it was new. This is the primitive
    /// the pipeline's coverage wrappers build on when they route points
    /// between a worker-local view and the shared union.
    pub fn insert(&mut self, point: CoveragePoint) -> bool {
        self.points.insert(point)
    }

    /// True if `point` has been set (the `(module, index)` overload is
    /// [`CoverageMatrix::contains`]).
    pub fn contains_point(&self, point: &CoveragePoint) -> bool {
        self.points.contains(point)
    }

    /// Iterates all points in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &CoveragePoint> {
        self.points.iter()
    }

    /// Observes one cycle's census, setting the bitmap slot of every module.
    /// Returns the number of *new* coverage points this census contributed.
    ///
    /// A count of zero tainted registers is not a coverage point: the paper
    /// indexes the bitmap by the number of taints explored, and "no taint"
    /// carries no information about propagation.
    pub fn observe(&mut self, census: &Census) -> usize {
        let mut fresh = 0;
        for m in census.modules() {
            if m.tainted == 0 {
                continue;
            }
            if self.points.insert(CoveragePoint {
                module: m.module,
                index: m.tainted,
            }) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Observes every cycle of a taint log, returning the new points found.
    pub fn observe_log(&mut self, log: &crate::census::TaintLog) -> usize {
        log.iter().map(|(_, c)| self.observe(c)).sum()
    }

    /// Number of distinct coverage points collected so far — the y-axis of
    /// Figure 7.
    pub fn points(&self) -> usize {
        self.points.len()
    }

    /// True if the (module, index) slot has been set.
    pub fn contains(&self, module: &str, index: usize) -> bool {
        self.points
            .iter()
            .any(|p| p.module == module && p.index == index)
    }

    /// How many new points a census *would* add, without committing them.
    pub fn gain(&self, census: &Census) -> usize {
        census
            .modules()
            .iter()
            .filter(|m| {
                m.tainted != 0
                    && !self.points.contains(&CoveragePoint {
                        module: m.module,
                        index: m.tainted,
                    })
            })
            .count()
    }

    /// Merges another matrix into this one (multi-threaded campaigns).
    pub fn merge(&mut self, other: &CoverageMatrix) {
        self.points.extend(other.points.iter().copied());
    }

    /// Removes one point; true if it was present. Used when reconstructing
    /// a mid-pipeline resume state: the snapshot's coverage minus the
    /// points committed after the pending round was planned gives each
    /// worker's dispatch-time view.
    pub fn remove(&mut self, point: &CoveragePoint) -> bool {
        self.points.remove(point)
    }

    /// True if no point has been collected yet. Callers that only need the
    /// count should use [`CoverageMatrix::points`] — both are O(1) against
    /// the backing set, no sort or collect involved.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points, sorted for deterministic reporting. The vector is
    /// pre-sized to the (cached, O(1)) point count so snapshot encoding
    /// pays one allocation, not a doubling series.
    pub fn sorted_points(&self) -> Vec<CoveragePoint> {
        let mut v = Vec::with_capacity(self.points.len());
        v.extend(self.points.iter().copied());
        v.sort();
        v
    }
}

impl TaintCoverage for CoverageMatrix {
    fn observe(&mut self, census: &Census) -> usize {
        CoverageMatrix::observe(self, census)
    }
}

impl CoverageView for CoverageMatrix {
    fn insert_point(&mut self, point: CoveragePoint) -> bool {
        self.insert(point)
    }

    fn contains_point(&self, point: &CoveragePoint) -> bool {
        CoverageMatrix::contains_point(self, point)
    }
}

/// A coverage union with an append-only discovery log: the delta-since-
/// watermark primitive behind every incremental coverage exchange in the
/// workspace.
///
/// The executor's round-start view broadcasts and the fleet gossip
/// protocol both need the same thing: "every point the union gained since
/// the last time *this consumer* looked", in discovery order, without
/// re-shipping the whole matrix. A [`CoverageLog`] is a
/// [`CoverageMatrix`] plus the ordered log of points inserted *through*
/// it; consumers hold a [`CoverageLog::watermark`] cursor and read
/// [`CoverageLog::delta_since`] — each delta is O(points gained), never
/// O(coverage space).
///
/// Points present at construction ([`CoverageLog::seeded`], the
/// snapshot-resume path) are deliberately *not* in the log: a restored
/// consumer's view already holds them, so only post-restore discoveries
/// need broadcasting — exactly the executor's resume contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageLog {
    matrix: CoverageMatrix,
    log: Vec<CoveragePoint>,
}

impl CoverageLog {
    /// An empty union with an empty log.
    pub fn new() -> Self {
        CoverageLog::default()
    }

    /// A log over an already-populated union (snapshot restore): the
    /// seeded points are in the matrix but not in the log, so
    /// `delta_since(0)` yields only what is inserted after this call.
    pub fn seeded(matrix: CoverageMatrix) -> Self {
        CoverageLog {
            matrix,
            log: Vec::new(),
        }
    }

    /// Inserts one point; true (and appended to the log) if it was new.
    pub fn insert(&mut self, point: CoveragePoint) -> bool {
        let fresh = self.matrix.insert(point);
        if fresh {
            self.log.push(point);
        }
        fresh
    }

    /// Re-appends already-present points to the log without touching the
    /// matrix. This is the mid-pipeline resume splice: points committed
    /// after an in-flight round was dispatched are in the restored union
    /// but still owed to consumers whose cursors predate them.
    pub fn replay(&mut self, points: &[CoveragePoint]) {
        for p in points {
            debug_assert!(
                self.matrix.contains_point(p),
                "replay is for points the union already holds"
            );
            self.log.push(*p);
        }
    }

    /// The current log position. A consumer that stores this and later
    /// calls [`CoverageLog::delta_since`] with it sees exactly the points
    /// inserted in between, in discovery order.
    pub fn watermark(&self) -> usize {
        self.log.len()
    }

    /// Every point inserted (or [`CoverageLog::replay`]ed) since
    /// `watermark`, in order.
    pub fn delta_since(&self, watermark: usize) -> &[CoveragePoint] {
        &self.log[watermark.min(self.log.len())..]
    }

    /// The underlying union.
    pub fn matrix(&self) -> &CoverageMatrix {
        &self.matrix
    }

    /// Consumes the log, returning the union.
    pub fn into_matrix(self) -> CoverageMatrix {
        self.matrix
    }

    /// Distinct points in the union (seeded + inserted).
    pub fn points(&self) -> usize {
        self.matrix.points()
    }

    /// True if the union holds `point`.
    pub fn contains_point(&self, point: &CoveragePoint) -> bool {
        self.matrix.contains_point(point)
    }

    /// Iterates the union in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &CoveragePoint> {
        self.matrix.iter()
    }
}

impl CoverageView for CoverageLog {
    fn insert_point(&mut self, point: CoveragePoint) -> bool {
        self.insert(point)
    }

    fn contains_point(&self, point: &CoveragePoint) -> bool {
        CoverageLog::contains_point(self, point)
    }
}

/// A two-level coverage view: a frozen, `Arc`-shared round-start base plus
/// a small private overlay holding only the points this slot discovered.
///
/// Work-stealing slots used to clone the worker's entire `CoverageMatrix`
/// per slot, an O(coverage-space) setup cost that dominates once coverage
/// reaches netlist scale. An overlay costs O(points found this slot):
/// lookups consult the shared base first, inserts land in the overlay only
/// when the base does not already hold the point.
#[derive(Clone, Debug)]
pub struct OverlayCoverage {
    base: Arc<CoverageMatrix>,
    overlay: CoverageMatrix,
}

impl OverlayCoverage {
    /// A fresh overlay over a frozen base.
    pub fn new(base: Arc<CoverageMatrix>) -> Self {
        OverlayCoverage {
            base,
            overlay: CoverageMatrix::new(),
        }
    }

    /// Points found through this view that the base did not already hold.
    pub fn overlay(&self) -> &CoverageMatrix {
        &self.overlay
    }

    /// Total distinct points visible through the view (base + overlay).
    pub fn points(&self) -> usize {
        self.base.points() + self.overlay.points()
    }
}

impl CoverageView for OverlayCoverage {
    fn insert_point(&mut self, point: CoveragePoint) -> bool {
        if self.base.contains_point(&point) {
            return false;
        }
        self.overlay.insert(point)
    }

    fn contains_point(&self, point: &CoveragePoint) -> bool {
        self.base.contains_point(point) || self.overlay.contains_point(point)
    }
}

impl TaintCoverage for OverlayCoverage {
    fn observe(&mut self, census: &Census) -> usize {
        let mut fresh = 0;
        for m in census.modules() {
            if m.tainted == 0 {
                continue;
            }
            if self.insert_point(CoveragePoint {
                module: m.module,
                index: m.tainted,
            }) {
                fresh += 1;
            }
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census(counts: &[(&'static str, usize)]) -> Census {
        let mut c = Census::new();
        for &(m, tainted) in counts {
            c.report_counts(m, tainted, 64);
        }
        c
    }

    #[test]
    fn observe_inserts_module_count_tuples() {
        let mut m = CoverageMatrix::new();
        assert_eq!(m.observe(&census(&[("rob", 3), ("lsu", 1)])), 2);
        assert!(m.contains("rob", 3));
        assert!(m.contains("lsu", 1));
        assert!(!m.contains("rob", 1));
        assert_eq!(m.points(), 2);
    }

    #[test]
    fn repeated_observation_adds_nothing() {
        let mut m = CoverageMatrix::new();
        m.observe(&census(&[("rob", 3)]));
        assert_eq!(m.observe(&census(&[("rob", 3)])), 0);
        assert_eq!(m.points(), 1);
    }

    #[test]
    fn zero_taint_is_not_coverage() {
        let mut m = CoverageMatrix::new();
        assert_eq!(m.observe(&census(&[("rob", 0)])), 0);
        assert_eq!(m.points(), 0);
    }

    #[test]
    fn position_insensitivity_is_inherent() {
        // Secret in cache slot 0 vs slot 7 produces the same tainted count,
        // hence the same coverage point — the paper's redundancy filter.
        let mut m = CoverageMatrix::new();
        m.observe(&census(&[("dcache", 1)])); // slot 0 tainted
        let gain = m.gain(&census(&[("dcache", 1)])); // slot 7 tainted
        assert_eq!(gain, 0);
    }

    #[test]
    fn gain_previews_without_commit() {
        let mut m = CoverageMatrix::new();
        let c = census(&[("rob", 3), ("lsu", 1)]);
        assert_eq!(m.gain(&c), 2);
        assert_eq!(m.points(), 0, "gain must not mutate");
        m.observe(&c);
        assert_eq!(m.gain(&c), 0);
    }

    #[test]
    fn merge_unions_points() {
        let mut m1 = CoverageMatrix::new();
        m1.observe(&census(&[("rob", 3)]));
        let mut m2 = CoverageMatrix::new();
        m2.observe(&census(&[("rob", 3), ("lsu", 2)]));
        m1.merge(&m2);
        assert_eq!(m1.points(), 2);
    }

    #[test]
    fn observe_log_sums_new_points() {
        use crate::census::TaintLog;
        let mut log = TaintLog::new();
        log.push(census(&[("rob", 1)]));
        log.push(census(&[("rob", 2)]));
        log.push(census(&[("rob", 2)]));
        let mut m = CoverageMatrix::new();
        assert_eq!(m.observe_log(&log), 2);
    }

    #[test]
    fn sorted_points_are_deterministic() {
        let mut m = CoverageMatrix::new();
        m.observe(&census(&[("rob", 3), ("lsu", 1), ("dcache", 2)]));
        let pts = m.sorted_points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0] <= w[1]));
        // Pin the exact order: lexicographic by module, then by index —
        // the canonical order the snapshot codec relies on.
        assert_eq!(
            pts,
            vec![
                CoveragePoint {
                    module: "dcache",
                    index: 2
                },
                CoveragePoint {
                    module: "lsu",
                    index: 1
                },
                CoveragePoint {
                    module: "rob",
                    index: 3
                },
            ]
        );
    }

    #[test]
    fn remove_round_trips_with_insert() {
        let mut m = CoverageMatrix::new();
        let p = CoveragePoint {
            module: "rob",
            index: 3,
        };
        assert!(!m.remove(&p), "removing an absent point is a no-op");
        assert!(m.insert(p));
        assert!(!m.is_empty());
        assert!(m.remove(&p));
        assert!(!m.remove(&p));
        assert!(m.is_empty());
        assert_eq!(m.points(), 0);
    }

    fn pt(module: &'static str, index: usize) -> CoveragePoint {
        CoveragePoint { module, index }
    }

    #[test]
    fn coverage_log_deltas_are_ordered_and_watermarked() {
        let mut log = CoverageLog::new();
        assert_eq!(log.watermark(), 0);
        assert!(log.insert(pt("rob", 3)));
        assert!(log.insert(pt("lsu", 1)));
        assert!(!log.insert(pt("rob", 3)), "duplicates never enter the log");
        let mark = log.watermark();
        assert_eq!(mark, 2);
        assert_eq!(log.delta_since(0), &[pt("rob", 3), pt("lsu", 1)]);
        assert!(log.delta_since(mark).is_empty());
        assert!(log.insert(pt("dcache", 7)));
        assert_eq!(log.delta_since(mark), &[pt("dcache", 7)]);
        assert_eq!(log.points(), 3);
        assert_eq!(log.matrix().points(), 3);
    }

    #[test]
    fn seeded_points_are_in_the_union_but_not_the_log() {
        let mut base = CoverageMatrix::new();
        base.insert(pt("rob", 3));
        let mut log = CoverageLog::seeded(base);
        assert_eq!(log.points(), 1);
        assert_eq!(log.watermark(), 0, "seeded points owe no delta");
        assert!(log.delta_since(0).is_empty());
        assert!(!log.insert(pt("rob", 3)), "the union still dedups them");
        assert!(log.insert(pt("lsu", 1)));
        assert_eq!(log.delta_since(0), &[pt("lsu", 1)]);
    }

    #[test]
    fn replay_reappends_without_reinserting() {
        let mut base = CoverageMatrix::new();
        base.insert(pt("rob", 3));
        base.insert(pt("lsu", 1));
        let mut log = CoverageLog::seeded(base);
        log.replay(&[pt("lsu", 1)]);
        assert_eq!(log.points(), 2, "replay never grows the union");
        assert_eq!(log.delta_since(0), &[pt("lsu", 1)]);
        assert_eq!(log.watermark(), 1);
    }

    #[test]
    fn delta_since_a_future_watermark_is_empty() {
        let mut log = CoverageLog::new();
        log.insert(pt("rob", 3));
        assert!(log.delta_since(99).is_empty());
    }

    #[test]
    fn overlay_filters_points_the_base_already_holds() {
        let mut base = CoverageMatrix::new();
        base.observe(&census(&[("rob", 3)]));
        let mut view = OverlayCoverage::new(Arc::new(base));

        // A base point is not fresh and never lands in the overlay.
        assert_eq!(view.observe(&census(&[("rob", 3)])), 0);
        assert_eq!(view.overlay().points(), 0);

        // A genuinely new point is fresh exactly once.
        assert_eq!(view.observe(&census(&[("lsu", 1)])), 1);
        assert_eq!(view.observe(&census(&[("lsu", 1)])), 0);
        assert_eq!(view.overlay().points(), 1);
        assert!(view.overlay().contains("lsu", 1));

        // The combined view sees both levels.
        assert!(view.contains_point(&CoveragePoint {
            module: "rob",
            index: 3
        }));
        assert!(view.contains_point(&CoveragePoint {
            module: "lsu",
            index: 1
        }));
        assert_eq!(view.points(), 2);
    }

    #[test]
    fn overlay_matches_a_full_clone_observation_for_observation() {
        // The overlay replaces steal-mode's per-slot full-view clone; the
        // freshness verdicts must be identical to observing into the clone.
        let mut start = CoverageMatrix::new();
        start.observe(&census(&[("rob", 1), ("rob", 2)]));
        let rounds = [
            census(&[("rob", 1), ("lsu", 4)]),
            census(&[("rob", 2), ("lsu", 4), ("dcache", 7)]),
        ];

        let mut cloned = start.clone();
        let mut overlaid = OverlayCoverage::new(Arc::new(start));
        for c in &rounds {
            assert_eq!(cloned.observe(c), overlaid.observe(c));
        }
        assert_eq!(cloned.points(), overlaid.points());
    }
}
