//! The two-plane tainted word and its *data-flow* taint operators.
//!
//! Plane `a` is the value seen by DUT variant 1, plane `b` the value seen by
//! DUT variant 2 (the variant whose secret is the bit-flip of variant 1's,
//! §3.3 of the paper). The shadow mask `t` marks which bits are derived from
//! sensitive data. Data-flow cells (AND/OR/XOR/ADD/…) propagate taint the
//! same way under CellIFT and diffIFT, so their policies live here as plain
//! methods; control-flow cells (MUX, comparison, enabled register, memory
//! ports) differ between the regimes and live in [`crate::policy::Policy`].

use std::fmt;

/// A 64-bit word carried through both DUT variants plus a shared taint mask.
///
/// `t` bit *i* set means bit *i* of the word is influenced by the secret in
/// at least one of the two variants (the union of the two per-variant shadow
/// registers the paper instantiates — a conservative approximation that is
/// exact whenever the variants' shadows agree, which they do for identical
/// programs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TWord {
    /// Value plane of DUT variant 1.
    pub a: u64,
    /// Value plane of DUT variant 2.
    pub b: u64,
    /// Shared taint shadow mask.
    pub t: u64,
}

impl TWord {
    /// An untainted literal, identical in both variants.
    #[inline]
    pub const fn lit(v: u64) -> Self {
        TWord { a: v, b: v, t: 0 }
    }

    /// An untainted boolean literal (`1` or `0` in both planes).
    #[inline]
    pub const fn bool_lit(v: bool) -> Self {
        TWord::lit(v as u64)
    }

    /// A fully tainted secret: variant 1 sees `a`, variant 2 sees `b`.
    ///
    /// Every bit is marked tainted regardless of whether the two values
    /// happen to agree on it, mirroring the paper's "mark sensitive state
    /// elements with taints" at the source.
    #[inline]
    pub const fn secret(a: u64, b: u64) -> Self {
        TWord { a, b, t: u64::MAX }
    }

    /// A word with explicit planes and taint mask.
    #[inline]
    pub const fn with_taint(a: u64, b: u64, t: u64) -> Self {
        TWord { a, b, t }
    }

    /// True if any bit of the shadow mask is set.
    #[inline]
    pub const fn is_tainted(self) -> bool {
        self.t != 0
    }

    /// The cross-instance comparison signal of Table 1: true when the two
    /// variants disagree on the value.
    #[inline]
    pub const fn diff(self) -> bool {
        self.a != self.b
    }

    /// XOR of the two planes (the raw `A ^ B` diff vector of Table 1).
    #[inline]
    pub const fn plane_xor(self) -> u64 {
        self.a ^ self.b
    }

    /// True when plane `a` is non-zero (variant 1's view of a boolean).
    #[inline]
    pub const fn truthy_a(self) -> bool {
        self.a != 0
    }

    /// True when plane `b` is non-zero (variant 2's view of a boolean).
    #[inline]
    pub const fn truthy_b(self) -> bool {
        self.b != 0
    }

    /// True when the boolean is set in *both* variants.
    #[inline]
    pub const fn both(self) -> bool {
        self.a != 0 && self.b != 0
    }

    /// True when the boolean is set in *either* variant.
    #[inline]
    pub const fn either(self) -> bool {
        self.a != 0 || self.b != 0
    }

    /// The value of the requested plane (0 = variant 1, 1 = variant 2).
    ///
    /// # Panics
    ///
    /// Panics if `plane > 1`.
    #[inline]
    pub fn plane(self, plane: usize) -> u64 {
        match plane {
            0 => self.a,
            1 => self.b,
            _ => panic!("TWord has exactly two planes, got index {plane}"),
        }
    }

    /// Replaces the value of one plane, keeping the taint mask.
    #[inline]
    pub fn set_plane(&mut self, plane: usize, v: u64) {
        match plane {
            0 => self.a = v,
            1 => self.b = v,
            _ => panic!("TWord has exactly two planes, got index {plane}"),
        }
    }

    /// Applies a pure per-plane function, spreading taint to the whole
    /// result when any input bit is tainted.
    ///
    /// This is the generic data-taint rule for opaque combinational logic
    /// (e.g. an instruction decoder): any tainted input taints the output.
    #[inline]
    pub fn map(self, f: impl Fn(u64) -> u64) -> TWord {
        TWord {
            a: f(self.a),
            b: f(self.b),
            t: if self.t != 0 { u64::MAX } else { 0 },
        }
    }

    /// Returns the word truncated to the low `bits` bits in every plane
    /// (including the shadow mask). `bits >= 64` is the identity.
    ///
    /// This models an RTL wire of narrower width than its driver — the exact
    /// mechanism behind the paper's B1 MeltDown-Sampling bug, where an
    /// address mask is implicitly truncated on the way to the load unit.
    #[inline]
    pub fn truncate(self, bits: u32) -> TWord {
        if bits >= 64 {
            return self;
        }
        let m = (1u64 << bits) - 1;
        TWord {
            a: self.a & m,
            b: self.b & m,
            t: self.t & m,
        }
    }

    // ---- data-flow cells (identical under CellIFT and diffIFT) ----

    /// Policy 1 of the paper: `Ot = (A & Bt) | (B & At) | (At & Bt)`,
    /// evaluated in each plane and unioned.
    #[inline]
    pub fn and(self, rhs: TWord) -> TWord {
        let ta = (self.a & rhs.t) | (rhs.a & self.t) | (self.t & rhs.t);
        let tb = (self.b & rhs.t) | (rhs.b & self.t) | (self.t & rhs.t);
        TWord {
            a: self.a & rhs.a,
            b: self.b & rhs.b,
            t: ta | tb,
        }
    }

    /// Dual of Policy 1 for OR: a tainted input bit matters only where the
    /// other input is 0.
    #[inline]
    pub fn or(self, rhs: TWord) -> TWord {
        let ta = (!self.a & rhs.t) | (!rhs.a & self.t) | (self.t & rhs.t);
        let tb = (!self.b & rhs.t) | (!rhs.b & self.t) | (self.t & rhs.t);
        TWord {
            a: self.a | rhs.a,
            b: self.b | rhs.b,
            t: ta | tb,
        }
    }

    /// XOR propagates taint bit-exactly.
    #[inline]
    pub fn xor(self, rhs: TWord) -> TWord {
        TWord {
            a: self.a ^ rhs.a,
            b: self.b ^ rhs.b,
            t: self.t | rhs.t,
        }
    }

    /// NOT keeps the shadow mask unchanged.
    #[inline]
    #[allow(clippy::should_implement_trait)] // ALU mnemonic, not operator sugar
    pub fn not(self) -> TWord {
        TWord {
            a: !self.a,
            b: !self.b,
            t: self.t,
        }
    }

    /// Addition: carries only travel towards the MSB, so the result is
    /// tainted from the lowest tainted input bit upward.
    #[inline]
    #[allow(clippy::should_implement_trait)] // ALU mnemonic, not operator sugar
    pub fn add(self, rhs: TWord) -> TWord {
        TWord {
            a: self.a.wrapping_add(rhs.a),
            b: self.b.wrapping_add(rhs.b),
            t: smear_up(self.t | rhs.t),
        }
    }

    /// Subtraction: same carry direction as addition.
    #[inline]
    #[allow(clippy::should_implement_trait)] // ALU mnemonic, not operator sugar
    pub fn sub(self, rhs: TWord) -> TWord {
        TWord {
            a: self.a.wrapping_sub(rhs.a),
            b: self.b.wrapping_sub(rhs.b),
            t: smear_up(self.t | rhs.t),
        }
    }

    /// Multiplication: partial products move taint towards the MSB only.
    #[inline]
    #[allow(clippy::should_implement_trait)] // ALU mnemonic, not operator sugar
    pub fn mul(self, rhs: TWord) -> TWord {
        TWord {
            a: self.a.wrapping_mul(rhs.a),
            b: self.b.wrapping_mul(rhs.b),
            t: smear_up(self.t | rhs.t),
        }
    }

    /// Logical left shift by an *untainted, plane-identical* amount.
    ///
    /// If the shift amount is tainted or differs between planes, the whole
    /// result is tainted (a tainted shamt is control-like: every output bit
    /// could change).
    #[inline]
    #[allow(clippy::should_implement_trait)] // ALU mnemonic, not operator sugar
    pub fn shl(self, shamt: TWord) -> TWord {
        let sa = (shamt.a & 63) as u32;
        let sb = (shamt.b & 63) as u32;
        let t = if shamt.t != 0 || sa != sb {
            u64::MAX
        } else {
            self.t << sa
        };
        TWord {
            a: self.a << sa,
            b: self.b << sb,
            t,
        }
    }

    /// Logical right shift; see [`TWord::shl`] for the taint rule.
    #[inline]
    #[allow(clippy::should_implement_trait)] // ALU mnemonic, not operator sugar
    pub fn shr(self, shamt: TWord) -> TWord {
        let sa = (shamt.a & 63) as u32;
        let sb = (shamt.b & 63) as u32;
        let t = if shamt.t != 0 || sa != sb {
            u64::MAX
        } else {
            self.t >> sa
        };
        TWord {
            a: self.a >> sa,
            b: self.b >> sb,
            t,
        }
    }

    /// Arithmetic right shift; the sign bit replicates its taint.
    #[inline]
    pub fn sra(self, shamt: TWord) -> TWord {
        let sa = (shamt.a & 63) as u32;
        let sb = (shamt.b & 63) as u32;
        let t = if shamt.t != 0 || sa != sb {
            u64::MAX
        } else {
            let sign_taint = if self.t >> 63 != 0 {
                !(u64::MAX >> sa)
            } else {
                0
            };
            (self.t >> sa) | sign_taint
        };
        TWord {
            a: ((self.a as i64) >> sa) as u64,
            b: ((self.b as i64) >> sb) as u64,
            t,
        }
    }

    /// Extracts bits `[lo, lo+width)` into the low bits of the result.
    #[inline]
    pub fn bits(self, lo: u32, width: u32) -> TWord {
        let m = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        TWord {
            a: (self.a >> lo) & m,
            b: (self.b >> lo) & m,
            t: (self.t >> lo) & m,
        }
    }

    /// The taint union of two words without changing values (used to model
    /// "this state was computed under the influence of that one").
    #[inline]
    pub fn taint_union(self, rhs: TWord) -> TWord {
        TWord {
            a: self.a,
            b: self.b,
            t: self.t | rhs.t,
        }
    }

    /// A copy with the shadow mask cleared.
    #[inline]
    pub fn untainted(self) -> TWord {
        TWord {
            a: self.a,
            b: self.b,
            t: 0,
        }
    }

    /// A copy with every bit of the shadow mask set.
    #[inline]
    pub fn fully_tainted(self) -> TWord {
        TWord {
            a: self.a,
            b: self.b,
            t: u64::MAX,
        }
    }
}

/// Taints every bit at or above the lowest set bit of `t` (the carry-chain
/// smear used by the ADD/SUB/MUL data policies).
#[inline]
pub fn smear_up(t: u64) -> u64 {
    if t == 0 {
        0
    } else {
        !((1u64 << t.trailing_zeros()) - 1)
    }
}

impl fmt::Debug for TWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.a == self.b && self.t == 0 {
            write!(f, "TWord({:#x})", self.a)
        } else {
            write!(
                f,
                "TWord(a={:#x}, b={:#x}, t={:#x})",
                self.a, self.b, self.t
            )
        }
    }
}

impl fmt::Display for TWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for TWord {
    fn from(v: u64) -> Self {
        TWord::lit(v)
    }
}

impl From<bool> for TWord {
    fn from(v: bool) -> Self {
        TWord::bool_lit(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_is_untainted_and_plane_identical() {
        let w = TWord::lit(42);
        assert_eq!(w.a, 42);
        assert_eq!(w.b, 42);
        assert!(!w.is_tainted());
        assert!(!w.diff());
    }

    #[test]
    fn secret_is_fully_tainted() {
        let s = TWord::secret(0x12, !0x12);
        assert!(s.is_tainted());
        assert!(s.diff());
        assert_eq!(s.t, u64::MAX);
    }

    #[test]
    fn and_policy1_matches_paper_equation() {
        // A untainted 1-bits pass the other operand's taint through.
        let a = TWord::lit(0b1100);
        let b = TWord::with_taint(0b1010, 0b1010, 0b0010);
        let o = a.and(b);
        assert_eq!(o.a, 0b1000);
        // Ot = (A & Bt) | (B & At) | (At & Bt) = (1100 & 0010) = 0.
        assert_eq!(o.t, 0);

        // Where A has a 1, a tainted B bit taints the output bit.
        let b2 = TWord::with_taint(0b1010, 0b1010, 0b1000);
        assert_eq!(a.and(b2).t, 0b1000);
    }

    #[test]
    fn and_with_zero_masks_taint() {
        // ANDing a fully tainted word with constant 0 yields untainted 0 —
        // the key precision CellIFT gains over naive OR-of-taints.
        let secret = TWord::secret(0xff, 0x00);
        let zero = TWord::lit(0);
        let o = secret.and(zero);
        assert_eq!(o.a, 0);
        assert_eq!(o.t, 0);
    }

    #[test]
    fn or_with_ones_masks_taint() {
        let secret = TWord::secret(0xff, 0x00);
        let ones = TWord::lit(u64::MAX);
        let o = secret.or(ones);
        assert_eq!(o.a, u64::MAX);
        assert_eq!(o.t, 0);
    }

    #[test]
    fn xor_is_bit_exact() {
        let a = TWord::with_taint(0xf0, 0xf0, 0x10);
        let b = TWord::with_taint(0x0f, 0x0f, 0x01);
        assert_eq!(a.xor(b).t, 0x11);
    }

    #[test]
    fn add_smears_upward_only() {
        let a = TWord::with_taint(8, 8, 0b1000);
        let b = TWord::lit(1);
        let o = a.add(b);
        assert_eq!(o.a, 9);
        // Bits below the lowest tainted bit stay clean.
        assert_eq!(o.t & 0b0111, 0);
        assert_ne!(o.t & 0b1000, 0);
    }

    #[test]
    fn smear_up_edges() {
        assert_eq!(smear_up(0), 0);
        assert_eq!(smear_up(1), u64::MAX);
        assert_eq!(smear_up(1 << 63), 1 << 63);
    }

    #[test]
    fn shl_shifts_taint_with_value() {
        let a = TWord::with_taint(0b1, 0b1, 0b1);
        let o = a.shl(TWord::lit(4));
        assert_eq!(o.a, 0b10000);
        assert_eq!(o.t, 0b10000);
    }

    #[test]
    fn tainted_shamt_taints_everything() {
        let a = TWord::lit(0b1);
        let o = a.shl(TWord::with_taint(4, 4, 1));
        assert_eq!(o.t, u64::MAX);
    }

    #[test]
    fn diverged_shamt_taints_everything() {
        let a = TWord::lit(0b1);
        let o = a.shl(TWord::with_taint(4, 5, 0));
        assert_eq!(o.t, u64::MAX);
        assert_ne!(o.a, o.b);
    }

    #[test]
    fn truncate_models_wire_narrowing() {
        // B1: a 64-bit masked address implicitly truncated to 39 bits drops
        // the high "illegal" mask bits, aliasing a legal address.
        let masked = TWord::lit(0x8000_0000_8000_4000);
        let narrowed = masked.truncate(39);
        // The illegal high mask bits vanish; the address aliases 0x8000_4000,
        // exactly the paper's "attackers can sample the secret at 0x80004000".
        assert_eq!(narrowed.a, 0x8000_4000);
        assert_eq!(narrowed.a & !((1u64 << 39) - 1), 0);
    }

    #[test]
    fn bits_extracts_subfield() {
        let w = TWord::with_taint(0xABCD, 0xABCD, 0xF0);
        let f = w.bits(4, 8);
        assert_eq!(f.a, 0xBC);
        assert_eq!(f.t, 0x0F);
    }

    #[test]
    fn sra_replicates_sign_taint() {
        let w = TWord::with_taint(0x8000_0000_0000_0000, 0, 0x8000_0000_0000_0000);
        let o = w.sra(TWord::lit(8));
        // The replicated sign bits must all be tainted.
        assert_eq!(o.t & 0xFF80_0000_0000_0000, 0xFF80_0000_0000_0000);
        assert_eq!(o.a, 0xFF80_0000_0000_0000);
    }

    #[test]
    fn plane_accessors_roundtrip() {
        let mut w = TWord::lit(7);
        w.set_plane(1, 9);
        assert_eq!(w.plane(0), 7);
        assert_eq!(w.plane(1), 9);
        assert!(w.diff());
    }

    #[test]
    #[should_panic(expected = "two planes")]
    fn plane_out_of_range_panics() {
        TWord::lit(0).plane(2);
    }

    #[test]
    fn map_spreads_taint_conservatively() {
        let w = TWord::with_taint(3, 3, 1);
        let o = w.map(|x| x * 10);
        assert_eq!(o.a, 30);
        assert_eq!(o.t, u64::MAX);
        let clean = TWord::lit(3).map(|x| x * 10);
        assert_eq!(clean.t, 0);
    }
}
