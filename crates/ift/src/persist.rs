//! [`Persist`] wire formats for the coverage types.
//!
//! A [`CoveragePoint`] holds a `&'static str` module name; decoding goes
//! through [`dejavuzz_persist::intern()`] so points read back from a
//! snapshot compare (and hash) equal to the ones a live census produces.
//! A [`CoverageMatrix`] encodes its points *sorted*, so equal sets
//! produce byte-identical encodings regardless of `HashSet` iteration
//! order — snapshot files are reproducible artifacts, diffable across
//! runs.

use dejavuzz_persist::{intern, DecodeError, Decoder, Encoder, Persist};

use crate::coverage::{CoverageMatrix, CoveragePoint};
use crate::policy::IftMode;

impl Persist for IftMode {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(match self {
            IftMode::Base => 0,
            IftMode::CellIft => 1,
            IftMode::DiffIft => 2,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u32()? {
            0 => Ok(IftMode::Base),
            1 => Ok(IftMode::CellIft),
            2 => Ok(IftMode::DiffIft),
            tag => Err(DecodeError::InvalidTag {
                what: "IftMode",
                tag,
            }),
        }
    }
}

impl Persist for CoveragePoint {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(self.module);
        enc.usize(self.index);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let module = intern(&dec.string()?);
        let index = dec.usize()?;
        Ok(CoveragePoint { module, index })
    }
}

impl Persist for CoverageMatrix {
    fn encode(&self, enc: &mut Encoder) {
        self.sorted_points().encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let points = Vec::<CoveragePoint>::decode(dec)?;
        let mut m = CoverageMatrix::new();
        for p in points {
            m.insert(p);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::Census;

    fn matrix(counts: &[(&'static str, usize)]) -> CoverageMatrix {
        let mut c = Census::new();
        for &(m, tainted) in counts {
            c.report_counts(m, tainted, 64);
        }
        let mut m = CoverageMatrix::new();
        m.observe(&c);
        m
    }

    #[test]
    fn coverage_matrix_round_trips_exactly() {
        let m = matrix(&[("rob", 3), ("lsu", 1), ("dcache", 7)]);
        let bytes = dejavuzz_persist::to_bytes(&m);
        let back: CoverageMatrix = dejavuzz_persist::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.sorted_points(), m.sorted_points());
        assert!(back.contains("dcache", 7));
    }

    #[test]
    fn empty_matrix_round_trips() {
        let bytes = dejavuzz_persist::to_bytes(&CoverageMatrix::new());
        let back: CoverageMatrix = dejavuzz_persist::from_bytes(&bytes).unwrap();
        assert_eq!(back.points(), 0);
    }

    #[test]
    fn encoding_is_canonical_regardless_of_insertion_order() {
        let a = matrix(&[("rob", 3), ("lsu", 1), ("dcache", 7)]);
        let b = matrix(&[("dcache", 7), ("rob", 3), ("lsu", 1)]);
        assert_eq!(
            dejavuzz_persist::to_bytes(&a),
            dejavuzz_persist::to_bytes(&b),
            "equal sets must encode byte-identically"
        );
    }

    #[test]
    fn decoded_points_interoperate_with_live_ones() {
        let m = matrix(&[("rob", 2)]);
        let bytes = dejavuzz_persist::to_bytes(&m);
        let back: CoverageMatrix = dejavuzz_persist::from_bytes(&bytes).unwrap();
        // A live observation of the same (module, count) must deduplicate
        // against the decoded point — interning makes them one value.
        let mut merged = back;
        let mut c = Census::new();
        c.report_counts("rob", 2, 64);
        assert_eq!(merged.observe(&c), 0, "decoded point dedups live census");
    }

    #[test]
    fn truncated_matrix_fails_structurally() {
        let m = matrix(&[("rob", 3), ("lsu", 1)]);
        let bytes = dejavuzz_persist::to_bytes(&m);
        for cut in 0..bytes.len() {
            assert!(
                dejavuzz_persist::from_bytes::<CoverageMatrix>(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
