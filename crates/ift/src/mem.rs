//! Tainted two-plane memory with the Table 1 read/write port policies.

use crate::policy::{IftMode, Policy};
use crate::tword::TWord;

/// A word-addressed memory with independent value planes for the two DUT
/// variants and a shared taint plane.
///
/// Read and write ports implement the last two rows of Table 1:
///
/// * read:  `mem_t[addr] | {WIDTH{addr_diff}}`
/// * write: `(Wen ? Wdata_t : mem_t[addr]) | {WIDTH{Wen_diff | (addr_diff & Wen)}}`
///
/// Under CellIFT the `*_diff` gates are replaced by "the signal is tainted".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TMem {
    a: Vec<u64>,
    b: Vec<u64>,
    t: Vec<u64>,
}

impl TMem {
    /// An all-zero, untainted memory of `len` words.
    pub fn new(len: usize) -> Self {
        TMem {
            a: vec![0; len],
            b: vec![0; len],
            t: vec![0; len],
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True if the memory has no words.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Direct (testbench) access to a slot, bypassing the port policies.
    pub fn peek(&self, idx: usize) -> TWord {
        TWord {
            a: self.a[idx],
            b: self.b[idx],
            t: self.t[idx],
        }
    }

    /// Direct (testbench) store to a slot, bypassing the port policies.
    /// Used to initialise program images and to plant secrets.
    pub fn poke(&mut self, idx: usize, w: TWord) {
        self.a[idx] = w.a;
        self.b[idx] = w.b;
        self.t[idx] = w.t;
    }

    /// Clears every taint bit, leaving values intact.
    pub fn clear_taint(&mut self) {
        self.t.iter_mut().for_each(|t| *t = 0);
    }

    /// Number of slots with at least one taint bit set.
    pub fn tainted_slots(&self) -> usize {
        self.t.iter().filter(|&&t| t != 0).count()
    }

    /// Iterates over the taint plane.
    pub fn taints(&self) -> impl Iterator<Item = u64> + '_ {
        self.t.iter().copied()
    }

    /// Memory read port (Table 1 row 4). Addresses are wrapped into range so
    /// transiently wild addresses behave like a hardware index truncation.
    pub fn read(&self, policy: Policy, addr: TWord) -> TWord {
        let n = self.a.len() as u64;
        let ia = (addr.a % n) as usize;
        let ib = (addr.b % n) as usize;
        let a = self.a[ia];
        let b = self.b[ib];
        if policy.mode() == IftMode::Base {
            return TWord { a, b, t: 0 };
        }
        // Data taint: the union of the slots each variant actually read.
        let mut t = self.t[ia] | self.t[ib];
        let addr_gate = match policy.mode() {
            IftMode::CellIft => addr.is_tainted(),
            IftMode::DiffIft => ia != ib,
            IftMode::Base => false,
        };
        if addr_gate {
            t = u64::MAX; // {WIDTH{addr_diff}}
        }
        TWord { a, b, t }
    }

    /// Memory write port (Table 1 row 5).
    pub fn write(&mut self, policy: Policy, wen: TWord, addr: TWord, data: TWord) {
        let n = self.a.len() as u64;
        let ia = (addr.a % n) as usize;
        let ib = (addr.b % n) as usize;
        if wen.a != 0 {
            self.a[ia] = data.a;
        }
        if wen.b != 0 {
            self.b[ib] = data.b;
        }
        if policy.mode() == IftMode::Base {
            return;
        }
        // Wen ? Wdata_t : mem_t[addr], applied to each plane's slot.
        if wen.a != 0 {
            self.t[ia] = data.t;
        }
        if wen.b != 0 && ib != ia {
            self.t[ib] = data.t;
        } else if wen.b != 0 {
            self.t[ib] |= data.t;
        }
        let wen_gate = match policy.mode() {
            IftMode::CellIft => wen.is_tainted(),
            IftMode::DiffIft => wen.a != wen.b,
            IftMode::Base => false,
        };
        let addr_gate = wen.either()
            && match policy.mode() {
                IftMode::CellIft => addr.is_tainted(),
                IftMode::DiffIft => ia != ib,
                IftMode::Base => false,
            };
        if wen_gate || addr_gate {
            // {WIDTH{Wen_diff | (addr_diff & Wen)}} over both touched slots:
            // the variants disagree on *which* slot (or whether a slot) got
            // the data, so both candidate slots become secret-dependent.
            self.t[ia] = u64::MAX;
            self.t[ib] = u64::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIFF: Policy = Policy::new(IftMode::DiffIft);
    const CELL: Policy = Policy::new(IftMode::CellIft);
    const BASE: Policy = Policy::new(IftMode::Base);

    fn mem_with(idx: usize, w: TWord) -> TMem {
        let mut m = TMem::new(16);
        m.poke(idx, w);
        m
    }

    #[test]
    fn read_returns_per_plane_slots() {
        let mut m = TMem::new(16);
        m.poke(3, TWord::lit(30));
        m.poke(5, TWord::lit(50));
        let o = m.read(DIFF, TWord::with_taint(3, 5, u64::MAX));
        assert_eq!(o.a, 30);
        assert_eq!(o.b, 50);
        assert_eq!(o.t, u64::MAX, "diverged address fully taints the read");
    }

    #[test]
    fn read_same_address_keeps_data_taint_only() {
        let m = mem_with(3, TWord::with_taint(30, 31, 0xFF));
        let o = m.read(DIFF, TWord::with_taint(3, 3, u64::MAX));
        assert_eq!(
            o.t, 0xFF,
            "tainted-but-equal address: no control taint under diffIFT"
        );
        let o2 = m.read(CELL, TWord::with_taint(3, 3, u64::MAX));
        assert_eq!(
            o2.t,
            u64::MAX,
            "CellIFT taints the whole read on a tainted address"
        );
    }

    #[test]
    fn read_untainted_address_unaffected() {
        let m = mem_with(3, TWord::lit(30));
        assert_eq!(m.read(DIFF, TWord::lit(3)).t, 0);
        assert_eq!(m.read(CELL, TWord::lit(3)).t, 0);
    }

    #[test]
    fn write_stores_per_plane() {
        let mut m = TMem::new(16);
        m.write(
            DIFF,
            TWord::lit(1),
            TWord::lit(2),
            TWord::with_taint(7, 9, 0x1),
        );
        let s = m.peek(2);
        assert_eq!(s.a, 7);
        assert_eq!(s.b, 9);
        assert_eq!(s.t, 0x1);
    }

    #[test]
    fn write_disabled_is_noop() {
        let mut m = mem_with(2, TWord::lit(5));
        m.write(DIFF, TWord::lit(0), TWord::lit(2), TWord::lit(9));
        assert_eq!(m.peek(2).a, 5);
    }

    #[test]
    fn write_diverged_address_taints_both_slots() {
        // Spectre-V1 signature: the transient leak store/load touches a
        // secret-dependent slot, so both candidate slots become tainted.
        let mut m = TMem::new(16);
        m.write(DIFF, TWord::lit(1), TWord::secret(4, 8), TWord::lit(1));
        assert_eq!(m.peek(4).t, u64::MAX);
        assert_eq!(m.peek(8).t, u64::MAX);
        assert_eq!(m.peek(4).a, 1);
        assert_eq!(m.peek(8).b, 1);
        assert_eq!(m.tainted_slots(), 2);
    }

    #[test]
    fn write_diverged_wen_taints_slot() {
        // Only variant A performs the write (secret-dependent enable).
        let mut m = mem_with(2, TWord::lit(5));
        m.write(
            DIFF,
            TWord::with_taint(1, 0, 1),
            TWord::lit(2),
            TWord::lit(9),
        );
        let s = m.peek(2);
        assert_eq!(s.a, 9);
        assert_eq!(s.b, 5);
        assert_eq!(s.t, u64::MAX);
    }

    #[test]
    fn cellift_write_taints_on_tainted_wen_even_without_diff() {
        let mut m = mem_with(2, TWord::lit(5));
        m.write(
            CELL,
            TWord::with_taint(1, 1, 1),
            TWord::lit(9),
            TWord::lit(9),
        );
        assert_eq!(m.peek(9).t, u64::MAX);
        let mut m2 = mem_with(2, TWord::lit(5));
        m2.write(
            DIFF,
            TWord::with_taint(1, 1, 1),
            TWord::lit(9),
            TWord::lit(9),
        );
        assert_eq!(
            m2.peek(9).t,
            0,
            "diffIFT suppresses the equal-enable control taint"
        );
    }

    #[test]
    fn base_mode_tracks_values_not_taint() {
        let mut m = TMem::new(8);
        m.write(BASE, TWord::lit(1), TWord::lit(1), TWord::secret(3, 4));
        assert_eq!(m.peek(1).a, 3);
        assert_eq!(m.peek(1).t, 0);
        assert_eq!(m.read(BASE, TWord::secret(1, 2)).t, 0);
    }

    #[test]
    fn clear_taint_and_census() {
        let mut m = TMem::new(8);
        m.poke(1, TWord::secret(0, 1));
        m.poke(2, TWord::secret(0, 1));
        assert_eq!(m.tainted_slots(), 2);
        m.clear_taint();
        assert_eq!(m.tainted_slots(), 0);
        assert_eq!(m.peek(1).a, 0);
        assert_eq!(m.peek(1).b, 1, "values survive taint clearing");
    }

    #[test]
    fn addresses_wrap_into_range() {
        let m = TMem::new(8);
        let _ = m.read(DIFF, TWord::lit(u64::MAX));
    }
}
