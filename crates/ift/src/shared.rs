//! Concurrent taint coverage: the shared, exact union of every worker's
//! observations in a parallel fuzzing campaign.
//!
//! The paper's §5 pipeline runs "multiple RTL simulation instances in
//! parallel". A naive parallelisation gives each worker a private
//! [`CoverageMatrix`] and sums the point counts at the end — an *inflated*
//! union whenever two workers discover the same `(module, tainted-count)`
//! tuple. [`SharedCoverage`] instead stripes the point set over a fixed
//! array of mutex-guarded shards: workers commit observations as they
//! happen, duplicates deduplicate under the shard lock, and a relaxed
//! atomic counter exposes the exact global point count without taking any
//! lock.
//!
//! Striping keys on the hash of the whole `(module, index)` tuple, not the
//! module alone, so a hot module (the RoB appears in nearly every census)
//! still spreads its points across shards instead of serialising every
//! worker behind one mutex.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::census::{Census, TaintLog};
use crate::coverage::{CoverageMatrix, CoveragePoint, CoverageView, TaintCoverage};

/// Default shard count: enough stripes that 8–16 workers rarely collide,
/// small enough that a snapshot stays cheap.
pub const DEFAULT_SHARDS: usize = 32;

/// A sharded, lock-striped concurrent coverage set. See the module docs.
#[derive(Debug)]
pub struct SharedCoverage {
    shards: Box<[Mutex<CoverageMatrix>]>,
    /// Exact global point count, maintained on successful inserts.
    points: AtomicUsize,
    /// Append-only discovery log, in commit order: the delta-since-
    /// watermark view of the union (see [`SharedCoverage::delta_since`]).
    /// Locked only when a point is globally fresh, so the duplicate-heavy
    /// hot path never touches it.
    log: Mutex<Vec<CoveragePoint>>,
}

impl Default for SharedCoverage {
    fn default() -> Self {
        SharedCoverage::new(DEFAULT_SHARDS)
    }
}

impl SharedCoverage {
    /// A new empty set striped over `shards` locks (rounded up to a power
    /// of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        SharedCoverage {
            shards: (0..n).map(|_| Mutex::new(CoverageMatrix::new())).collect(),
            points: AtomicUsize::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, point: &CoveragePoint) -> usize {
        // FNV-1a over the module name and index: cheap, deterministic, and
        // independent of the HashMap hasher so the stripe distribution is
        // stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in point.module.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h = (h ^ point.index as u64).wrapping_mul(0x0000_0100_0000_01B3);
        (h as usize) & (self.shards.len() - 1)
    }

    /// Commits one point; true if it was globally new.
    pub fn observe_point(&self, point: CoveragePoint) -> bool {
        let mut shard = self.shards[self.shard_of(&point)]
            .lock()
            .expect("shard poisoned");
        let fresh = shard.insert(point);
        drop(shard);
        if fresh {
            self.log.lock().expect("log poisoned").push(point);
            self.points.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Commits one cycle's census; returns the number of globally new
    /// points this call inserted. Note that under contention another worker
    /// may commit the same point first — the *union* is exact, the
    /// attribution of freshness is first-come-first-served.
    pub fn observe(&self, census: &Census) -> usize {
        census
            .modules()
            .iter()
            .filter(|m| m.tainted != 0)
            .filter(|m| {
                self.observe_point(CoveragePoint {
                    module: m.module,
                    index: m.tainted,
                })
            })
            .count()
    }

    /// Commits every cycle of a taint log.
    pub fn observe_log(&self, log: &TaintLog) -> usize {
        log.iter().map(|(_, c)| self.observe(c)).sum()
    }

    /// Exact global point count (lock-free).
    pub fn points(&self) -> usize {
        self.points.load(Ordering::Relaxed)
    }

    /// True if the `(module, index)` slot has been committed. Requires a
    /// `'static` module name (all census module names are) so the probe
    /// hashes straight to its owning shard — one lock, one set probe.
    pub fn contains(&self, module: &'static str, index: usize) -> bool {
        let p = CoveragePoint { module, index };
        self.shards[self.shard_of(&p)]
            .lock()
            .expect("shard poisoned")
            .contains_point(&p)
    }

    /// The current position of the discovery log. Store it, keep
    /// observing, then ask [`SharedCoverage::delta_since`] for exactly
    /// the points committed in between — the O(delta) sync primitive
    /// shard gossip and live telemetry build on.
    pub fn watermark(&self) -> usize {
        self.log.lock().expect("log poisoned").len()
    }

    /// Every point committed since `watermark`, in commit order. Under
    /// concurrent writers the order reflects who committed first (the
    /// union is exact, attribution is first-come-first-served — same
    /// contract as [`SharedCoverage::observe`]).
    pub fn delta_since(&self, watermark: usize) -> Vec<CoveragePoint> {
        let log = self.log.lock().expect("log poisoned");
        log[watermark.min(log.len())..].to_vec()
    }

    /// A point-in-time union of all shards as a plain matrix.
    pub fn snapshot(&self) -> CoverageMatrix {
        let mut out = CoverageMatrix::new();
        for shard in self.shards.iter() {
            out.merge(&shard.lock().expect("shard poisoned"));
        }
        out
    }
}

/// A shared reference observes concurrently, so the `&mut self` of the
/// trait is trivially satisfiable from many workers at once.
impl TaintCoverage for &SharedCoverage {
    fn observe(&mut self, census: &Census) -> usize {
        SharedCoverage::observe(self, census)
    }
}

/// The coverage sink a pipeline worker threads through Phase 2.
///
/// One observation fans out three ways:
///
/// * `view` — the worker's deterministic local union (round-start global
///   state plus its own in-round observations). *Freshness against the
///   view* is what drives mutation-gain feedback, so worker decisions
///   never race on shared state.
/// * `observed` — optionally, everything this worker ever saw (the
///   per-worker matrices whose union the orchestrator's exactness
///   invariant is stated over).
/// * `shared` — optionally, the live concurrent union.
///
/// Points that are fresh against the view are appended to `recorded`, in
/// observation order, so the orchestrator can replay them into the global
/// matrix deterministically. Points fresh against `observed` are likewise
/// appended to `observed_recorded` (when attached): the orchestrator
/// mirrors each worker's lifetime observation matrix from these deltas,
/// which is what lets a campaign snapshot carry exact per-worker state
/// without ever shipping whole matrices over the channel.
/// The view is generic over [`CoverageView`] so a work-stealing slot can
/// plug in a cheap [`crate::OverlayCoverage`] (frozen round-start base +
/// per-slot overlay) where single-worker paths keep the plain matrix; the
/// default type parameter keeps existing struct literals compiling.
pub struct RecordingCoverage<'a, V: CoverageView = CoverageMatrix> {
    /// Worker-local deterministic view.
    pub view: &'a mut V,
    /// Fresh-against-view points, in observation order.
    pub recorded: &'a mut Vec<CoveragePoint>,
    /// Everything observed (exactness accounting), if tracked.
    pub observed: Option<&'a mut CoverageMatrix>,
    /// Fresh-against-`observed` points, in observation order, if tracked.
    pub observed_recorded: Option<&'a mut Vec<CoveragePoint>>,
    /// Live concurrent union, if attached.
    pub shared: Option<&'a SharedCoverage>,
}

impl<V: CoverageView> TaintCoverage for RecordingCoverage<'_, V> {
    fn observe(&mut self, census: &Census) -> usize {
        let mut fresh = 0;
        for m in census.modules() {
            if m.tainted == 0 {
                continue;
            }
            let p = CoveragePoint {
                module: m.module,
                index: m.tainted,
            };
            if let Some(observed) = self.observed.as_deref_mut() {
                if observed.insert(p) {
                    if let Some(rec) = self.observed_recorded.as_deref_mut() {
                        rec.push(p);
                    }
                }
            }
            if self.view.insert_point(p) {
                // Commit to the shared union only on view-freshness: a
                // point already in the view was committed by whichever
                // worker first recorded it (own points on their fresh
                // observation, broadcast points by their discoverer), so
                // the union stays exact while the phase-2 hot loop skips
                // a shard lock round-trip per duplicate census point.
                if let Some(shared) = self.shared {
                    shared.observe_point(p);
                }
                self.recorded.push(p);
                fresh += 1;
            }
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn census(counts: &[(&'static str, usize)]) -> Census {
        let mut c = Census::new();
        for &(m, tainted) in counts {
            c.report_counts(m, tainted, 64);
        }
        c
    }

    #[test]
    fn observe_point_dedups_and_counts() {
        let s = SharedCoverage::new(4);
        assert!(s.observe_point(CoveragePoint {
            module: "rob",
            index: 3
        }));
        assert!(!s.observe_point(CoveragePoint {
            module: "rob",
            index: 3
        }));
        assert!(s.observe_point(CoveragePoint {
            module: "rob",
            index: 4
        }));
        assert_eq!(s.points(), 2);
        assert!(s.contains("rob", 3));
        assert!(!s.contains("lsu", 1));
    }

    #[test]
    fn snapshot_equals_committed_set() {
        let s = SharedCoverage::new(8);
        s.observe(&census(&[("rob", 3), ("lsu", 1), ("dcache", 7)]));
        let snap = s.snapshot();
        assert_eq!(snap.points(), 3);
        assert_eq!(snap.points(), s.points());
        assert!(snap.contains("dcache", 7));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SharedCoverage::new(0).shards(), 1);
        assert_eq!(SharedCoverage::new(5).shards(), 8);
        assert_eq!(SharedCoverage::new(32).shards(), 32);
    }

    #[test]
    fn concurrent_union_is_exact_not_summed() {
        // 8 threads all observe overlapping point sets; the union must be
        // the distinct count, never the inflated per-thread sum.
        let s = Arc::new(SharedCoverage::new(8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut mine = 0;
                    for i in 1..=64 {
                        // Every thread shares points 1..=32; points above
                        // are striped per thread.
                        if i <= 32 || i % 8 == t {
                            s.observe_point(CoveragePoint {
                                module: "rob",
                                index: i,
                            });
                            mine += 1;
                        }
                    }
                    mine
                })
            })
            .collect();
        let per_thread_sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(s.points(), 64, "exact union of 1..=64");
        assert_eq!(s.snapshot().points(), 64);
        assert!(per_thread_sum > s.points(), "the naive sum would inflate");
    }

    #[test]
    fn watermark_deltas_track_commit_order() {
        let s = SharedCoverage::new(4);
        let rob3 = CoveragePoint {
            module: "rob",
            index: 3,
        };
        let lsu1 = CoveragePoint {
            module: "lsu",
            index: 1,
        };
        assert_eq!(s.watermark(), 0);
        s.observe_point(rob3);
        s.observe_point(rob3); // duplicate: no log entry
        let mark = s.watermark();
        assert_eq!(mark, 1);
        assert_eq!(s.delta_since(0), vec![rob3]);
        s.observe_point(lsu1);
        assert_eq!(s.delta_since(mark), vec![lsu1]);
        assert!(s.delta_since(s.watermark()).is_empty());
        assert!(s.delta_since(99).is_empty(), "future watermark is empty");
        assert_eq!(s.watermark(), s.points(), "one log entry per fresh point");
    }

    #[test]
    fn concurrent_deltas_cover_the_union_exactly_once() {
        let s = Arc::new(SharedCoverage::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 1..=32 {
                        if i % 4 == t || i <= 16 {
                            s.observe_point(CoveragePoint {
                                module: "rob",
                                index: i,
                            });
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let delta = s.delta_since(0);
        assert_eq!(delta.len(), 32, "each fresh point logged exactly once");
        let mut sorted = delta.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
        assert_eq!(s.snapshot().sorted_points(), sorted);
    }

    #[test]
    fn recording_coverage_fans_out() {
        let shared = SharedCoverage::new(4);
        let mut view = CoverageMatrix::new();
        // Pre-populate the view as if another worker had found rob/3.
        view.insert(CoveragePoint {
            module: "rob",
            index: 3,
        });
        let mut observed = CoverageMatrix::new();
        let mut recorded = Vec::new();
        let mut observed_recorded = Vec::new();
        let mut rec = RecordingCoverage {
            view: &mut view,
            recorded: &mut recorded,
            observed: Some(&mut observed),
            observed_recorded: Some(&mut observed_recorded),
            shared: Some(&shared),
        };
        let fresh = rec.observe(&census(&[("rob", 3), ("lsu", 1)]));
        assert_eq!(fresh, 1, "rob/3 was already in the view");
        assert_eq!(
            recorded,
            vec![CoveragePoint {
                module: "lsu",
                index: 1
            }]
        );
        assert_eq!(observed.points(), 2, "observed tracks everything seen");
        assert_eq!(
            observed_recorded.len(),
            2,
            "both points were observed-fresh — the delta a snapshot mirror replays"
        );
        assert_eq!(
            shared.points(),
            1,
            "shared commits only view-fresh points (rob/3's discoverer \
             already committed it — no duplicate lock traffic)"
        );
    }

    /// Resume equivalence leans on this: seeding a fresh [`SharedCoverage`]
    /// from a snapshot matrix must reproduce the committed set exactly —
    /// same point count, same membership, same snapshot back out.
    #[test]
    fn snapshot_restore_round_trip_is_faithful() {
        let original = SharedCoverage::new(8);
        original.observe(&census(&[("rob", 3), ("lsu", 1), ("dcache", 7)]));
        original.observe(&census(&[("rob", 5), ("btb", 2)]));
        let snap = original.snapshot();

        // Restore into a *differently sharded* set: the stripe layout is an
        // implementation detail, the committed set is the contract.
        let restored = SharedCoverage::new(2);
        for p in snap.iter() {
            restored.observe_point(*p);
        }

        assert_eq!(restored.points(), original.points());
        for p in snap.iter() {
            assert!(
                restored.contains(p.module, p.index),
                "{p:?} lost in restore"
            );
        }
        assert_eq!(
            restored.snapshot().sorted_points(),
            snap.sorted_points(),
            "snapshot of the restore equals the original snapshot"
        );
        // And restored state dedups exactly like the original would.
        assert_eq!(restored.observe(&census(&[("rob", 3)])), 0);
        assert_eq!(restored.points(), original.points());
    }

    #[test]
    fn trait_impl_through_shared_ref() {
        let s = SharedCoverage::new(2);
        let mut sink: &SharedCoverage = &s;
        let n = TaintCoverage::observe(&mut sink, &census(&[("rob", 2)]));
        assert_eq!(n, 1);
        assert_eq!(s.points(), 1);
    }
}
