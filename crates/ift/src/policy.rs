//! Control-flow cell taint policies: CellIFT's Policy 2 versus the paper's
//! diffIFT rules (Table 1).
//!
//! The difference between the regimes is exactly one gate. For a multiplexer
//! with selection signal `S`, inputs `A`/`B` and taints `At`/`Bt`/`St`:
//!
//! * CellIFT (Policy 2):
//!   `Ot = (S ? Bt : At) | (St ? (A^B)|(At|Bt) : 0)`
//! * diffIFT (Table 1):
//!   `Ot = (S ? Bt : At) | (St & S_diff ? (A^B)|(At|Bt) : 0)`
//!
//! where `S_diff` is the cross-instance comparison signal — high only when
//! the two DUT variants (running with different secrets) disagree on `S`.
//! If no secret can change a control signal's value, the control taint is
//! suppressed: "even if it is tainted, it should be ignored, as it cannot
//! select an alternative path" (§3.3).

use crate::tword::TWord;

/// Which taint regime the control-flow cells apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum IftMode {
    /// No taint tracking at all: values propagate, shadows stay zero.
    /// Used for the "Base" rows of Table 4.
    Base,
    /// CellIFT policies: control taints propagate whenever the control
    /// signal is tainted (over-tainting baseline).
    CellIft,
    /// diffIFT policies: control taints propagate only when the two DUT
    /// variants disagree on the control signal (the paper's contribution).
    #[default]
    DiffIft,
}

impl IftMode {
    /// All modes, in the order Table 4 reports them.
    pub const ALL: [IftMode; 3] = [IftMode::Base, IftMode::CellIft, IftMode::DiffIft];

    /// The name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            IftMode::Base => "Base",
            IftMode::CellIft => "CellIFT",
            IftMode::DiffIft => "diffIFT",
        }
    }

    /// True if this mode computes any taints at all.
    pub fn tracks_taint(self) -> bool {
        !matches!(self, IftMode::Base)
    }
}

/// The control-flow taint policy for one IFT regime.
///
/// `Policy` is [`Copy`] and carries no state beyond the mode; cores and
/// netlist simulators embed one and route every control-flow cell through
/// it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Policy {
    mode: IftMode,
}

impl Policy {
    /// Creates the policy for `mode`.
    pub const fn new(mode: IftMode) -> Self {
        Policy { mode }
    }

    /// The regime this policy implements.
    pub const fn mode(self) -> IftMode {
        self.mode
    }

    /// Whether the control-taint gate fires for a control word `s`.
    ///
    /// CellIFT: fires whenever `s` is tainted. diffIFT: fires only when `s`
    /// is tainted *and* the variants disagree on it.
    #[inline]
    pub fn control_gate(self, s: TWord) -> bool {
        match self.mode {
            IftMode::Base => false,
            IftMode::CellIft => s.is_tainted(),
            IftMode::DiffIft => s.is_tainted() && s.diff(),
        }
    }

    /// Multiplexer cell: `S ? then_v : else_v` (row 1 of Table 1).
    #[inline]
    pub fn mux(self, s: TWord, then_v: TWord, else_v: TWord) -> TWord {
        let a = if s.a != 0 { then_v.a } else { else_v.a };
        let b = if s.b != 0 { then_v.b } else { else_v.b };
        if self.mode == IftMode::Base {
            return TWord { a, b, t: 0 };
        }
        let data_a = if s.a != 0 { then_v.t } else { else_v.t };
        let data_b = if s.b != 0 { then_v.t } else { else_v.t };
        let mut t = data_a | data_b;
        if self.control_gate(s) {
            // (A ^ B) | (At | Bt): any bit that could change had the other
            // branch been selected.
            t |= (then_v.a ^ else_v.a) | (then_v.b ^ else_v.b) | then_v.t | else_v.t;
        }
        TWord { a, b, t }
    }

    /// Comparison cell producing a 1-bit result (`A == B`); row 2 of
    /// Table 1: `Ot = O_diff & |(At|Bt)`.
    #[inline]
    pub fn eq(self, x: TWord, y: TWord) -> TWord {
        let a = (x.a == y.a) as u64;
        let b = (x.b == y.b) as u64;
        TWord {
            a,
            b,
            t: self.cmp_taint(a, b, x, y),
        }
    }

    /// Comparison cell for `A != B`.
    #[inline]
    pub fn ne(self, x: TWord, y: TWord) -> TWord {
        let a = (x.a != y.a) as u64;
        let b = (x.b != y.b) as u64;
        TWord {
            a,
            b,
            t: self.cmp_taint(a, b, x, y),
        }
    }

    /// Comparison cell for unsigned `A < B`.
    #[inline]
    pub fn lt(self, x: TWord, y: TWord) -> TWord {
        let a = (x.a < y.a) as u64;
        let b = (x.b < y.b) as u64;
        TWord {
            a,
            b,
            t: self.cmp_taint(a, b, x, y),
        }
    }

    /// Comparison cell for signed `A < B`.
    #[inline]
    pub fn lt_signed(self, x: TWord, y: TWord) -> TWord {
        let a = ((x.a as i64) < (y.a as i64)) as u64;
        let b = ((x.b as i64) < (y.b as i64)) as u64;
        TWord {
            a,
            b,
            t: self.cmp_taint(a, b, x, y),
        }
    }

    /// Comparison cell for unsigned `A >= B`.
    #[inline]
    pub fn ge(self, x: TWord, y: TWord) -> TWord {
        let a = (x.a >= y.a) as u64;
        let b = (x.b >= y.b) as u64;
        TWord {
            a,
            b,
            t: self.cmp_taint(a, b, x, y),
        }
    }

    #[inline]
    fn cmp_taint(self, out_a: u64, out_b: u64, x: TWord, y: TWord) -> u64 {
        let any_in_taint = (x.t | y.t) != 0;
        match self.mode {
            IftMode::Base => 0,
            // CellIFT: any tainted input taints the 1-bit output.
            IftMode::CellIft => any_in_taint as u64,
            // diffIFT: O_diff & |(At | Bt).
            IftMode::DiffIft => ((out_a != out_b) && any_in_taint) as u64,
        }
    }

    /// Register with enable (row 3 of Table 1): returns the register's next
    /// value given current value `q`, input `d` and enable `en`.
    ///
    /// `En ? Dt : Qt | (En_t & En_diff ? (D^Q)|(Dt|Qt) : 0)` — structurally
    /// a mux with `q` on the else-branch.
    #[inline]
    pub fn reg_en(self, en: TWord, d: TWord, q: TWord) -> TWord {
        self.mux(en, d, q)
    }

    /// Boolean AND of two control words (1-bit semantics, planes computed
    /// independently, data-taint only).
    #[inline]
    pub fn bool_and(self, x: TWord, y: TWord) -> TWord {
        let a = (x.a != 0 && y.a != 0) as u64;
        let b = (x.b != 0 && y.b != 0) as u64;
        let t = if self.mode == IftMode::Base {
            0
        } else {
            // Policy 1 on the 1-bit domain.
            ((x.a != 0 || x.b != 0) as u64 & ((y.t != 0) as u64))
                | ((y.a != 0 || y.b != 0) as u64 & ((x.t != 0) as u64))
                | ((x.t != 0 && y.t != 0) as u64)
        };
        TWord { a, b, t }
    }

    /// Boolean OR of two control words.
    #[inline]
    pub fn bool_or(self, x: TWord, y: TWord) -> TWord {
        let a = (x.a != 0 || y.a != 0) as u64;
        let b = (x.b != 0 || y.b != 0) as u64;
        let t = if self.mode == IftMode::Base {
            0
        } else {
            ((x.a == 0 || x.b == 0) as u64 & ((y.t != 0) as u64))
                | ((y.a == 0 || y.b == 0) as u64 & ((x.t != 0) as u64))
                | ((x.t != 0 && y.t != 0) as u64)
        };
        TWord { a, b, t }
    }

    /// Boolean NOT of a control word.
    #[inline]
    pub fn bool_not(self, x: TWord) -> TWord {
        TWord {
            a: (x.a == 0) as u64,
            b: (x.b == 0) as u64,
            t: if self.mode == IftMode::Base {
                0
            } else {
                (x.t != 0) as u64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CELL: Policy = Policy::new(IftMode::CellIft);
    const DIFF: Policy = Policy::new(IftMode::DiffIft);
    const BASE: Policy = Policy::new(IftMode::Base);

    #[test]
    fn mux_selects_per_plane() {
        let s = TWord::with_taint(1, 0, 0);
        let then_v = TWord::lit(0xAA);
        let else_v = TWord::lit(0xBB);
        let o = DIFF.mux(s, then_v, else_v);
        assert_eq!(o.a, 0xAA);
        assert_eq!(o.b, 0xBB);
    }

    #[test]
    fn cellift_mux_control_taint_fires_on_tainted_sel() {
        // Selection tainted but identical in both planes: CellIFT taints the
        // differing data bits, diffIFT does not (paper §3.3, core insight).
        let s = TWord::with_taint(1, 1, 1);
        let then_v = TWord::lit(0xAA);
        let else_v = TWord::lit(0x55);
        assert_eq!(CELL.mux(s, then_v, else_v).t, 0xAA ^ 0x55);
        assert_eq!(DIFF.mux(s, then_v, else_v).t, 0);
    }

    #[test]
    fn diffift_mux_control_taint_fires_on_diverged_sel() {
        // A secret actually flipped the selection between variants.
        let s = TWord::with_taint(1, 0, 1);
        let then_v = TWord::lit(0xAA);
        let else_v = TWord::lit(0x55);
        let o = DIFF.mux(s, then_v, else_v);
        assert_eq!(o.t, 0xFF);
        assert_eq!(o.a, 0xAA);
        assert_eq!(o.b, 0x55);
    }

    #[test]
    fn untainted_diverged_sel_is_not_control_taint() {
        // Planes may legitimately differ on untainted data (e.g. variant
        // IDs); without taint there is no information flow from a secret.
        let s = TWord::with_taint(1, 0, 0);
        let o = DIFF.mux(s, TWord::lit(1), TWord::lit(2));
        assert_eq!(o.t, 0);
    }

    #[test]
    fn base_mode_never_taints() {
        let s = TWord::secret(1, 0);
        let o = BASE.mux(s, TWord::secret(1, 2), TWord::secret(3, 4));
        assert_eq!(o.t, 0);
        assert_eq!(BASE.eq(s, s).t, 0);
    }

    #[test]
    fn mux_data_taint_follows_selected_branch() {
        let s = TWord::lit(1);
        let tainted = TWord::with_taint(5, 5, 0xF);
        let clean = TWord::lit(9);
        assert_eq!(DIFF.mux(s, tainted, clean).t, 0xF);
        assert_eq!(DIFF.mux(TWord::lit(0), tainted, clean).t, 0);
    }

    #[test]
    fn comparison_cell_cellift_vs_diffift() {
        // Tainted inputs, equal outcome in both planes.
        let x = TWord::with_taint(5, 5, 1);
        let y = TWord::lit(5);
        assert_eq!(CELL.eq(x, y).t, 1, "CellIFT taints any tainted comparison");
        assert_eq!(DIFF.eq(x, y).t, 0, "diffIFT: O_diff is low");

        // Secret flips the comparison outcome between variants.
        let x2 = TWord::secret(5, 6);
        let o = DIFF.eq(x2, y);
        assert_eq!(o.a, 1);
        assert_eq!(o.b, 0);
        assert_eq!(o.t, 1, "diffIFT: O_diff high and inputs tainted");
    }

    #[test]
    fn comparison_diff_without_taint_is_clean() {
        let x = TWord::with_taint(5, 6, 0);
        let y = TWord::lit(5);
        assert_eq!(DIFF.eq(x, y).t, 0);
    }

    #[test]
    fn lt_signed_and_unsigned_disagree() {
        let x = TWord::lit(u64::MAX); // -1 signed
        let y = TWord::lit(1);
        assert_eq!(DIFF.lt(x, y).a, 0);
        assert_eq!(DIFF.lt_signed(x, y).a, 1);
    }

    #[test]
    fn reg_en_is_mux_with_q_fallback() {
        let q = TWord::lit(7);
        let d = TWord::lit(8);
        assert_eq!(DIFF.reg_en(TWord::lit(0), d, q).a, 7);
        assert_eq!(DIFF.reg_en(TWord::lit(1), d, q).a, 8);
    }

    #[test]
    fn reg_en_diverged_enable_taints_update() {
        // The RoB example of §2.2: a tainted, diverged enable taints the
        // entry field because the variants disagree on whether it updates.
        let q = TWord::lit(0x13); // old uopc
        let d = TWord::lit(0x33); // enq uopc
        let en = TWord::with_taint(1, 0, 1);
        let o = DIFF.reg_en(en, d, q);
        assert_eq!(o.a, 0x33);
        assert_eq!(o.b, 0x13);
        assert_eq!(o.t, 0x13 ^ 0x33);
    }

    #[test]
    fn bool_ops_track_taint() {
        let clean_true = TWord::lit(1);
        let tainted_true = TWord::with_taint(1, 1, 1);
        assert_eq!(DIFF.bool_and(clean_true, tainted_true).t, 1);
        assert_eq!(
            DIFF.bool_and(TWord::lit(0), tainted_true).t,
            0,
            "0 AND x masks taint"
        );
        assert_eq!(
            DIFF.bool_or(clean_true, tainted_true).t,
            0,
            "1 OR x masks taint"
        );
        assert_eq!(DIFF.bool_not(tainted_true).a, 0);
        assert_eq!(DIFF.bool_not(tainted_true).t, 1);
    }

    #[test]
    fn mode_names_match_paper() {
        assert_eq!(IftMode::Base.name(), "Base");
        assert_eq!(IftMode::CellIft.name(), "CellIFT");
        assert_eq!(IftMode::DiffIft.name(), "diffIFT");
        assert!(!IftMode::Base.tracks_taint());
        assert!(IftMode::DiffIft.tracks_taint());
    }
}
