//! Per-cycle taint observation: the census (who is tainted, per module) and
//! the taint log (Figure 6's "taint sum over cycles").

/// Tainted-register statistics for one hardware module in one cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleCensus {
    /// Module instance name (e.g. `"rob"`, `"dcache"`, `"ras"`).
    pub module: &'static str,
    /// Number of registers in the module with at least one tainted bit.
    pub tainted: usize,
    /// Total number of registers the module reported.
    pub total: usize,
}

/// A single cycle's taint census across all modules of a DUT.
///
/// Modules report themselves during a census sweep; the fuzzer then derives
/// the global taint sum (Figure 6) and feeds the per-module counts into the
/// [`crate::coverage::CoverageMatrix`] (§4.2.2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Census {
    modules: Vec<ModuleCensus>,
}

impl Census {
    /// An empty census.
    pub fn new() -> Self {
        Census::default()
    }

    /// Reports one module's counts. `taints` yields the shadow mask of each
    /// register in the module.
    pub fn report(&mut self, module: &'static str, taints: impl IntoIterator<Item = u64>) {
        let mut tainted = 0;
        let mut total = 0;
        for t in taints {
            total += 1;
            if t != 0 {
                tainted += 1;
            }
        }
        self.modules.push(ModuleCensus {
            module,
            tainted,
            total,
        });
    }

    /// Reports a module with precomputed counts.
    pub fn report_counts(&mut self, module: &'static str, tainted: usize, total: usize) {
        self.modules.push(ModuleCensus {
            module,
            tainted,
            total,
        });
    }

    /// The modules reported this cycle, in report order.
    pub fn modules(&self) -> &[ModuleCensus] {
        &self.modules
    }

    /// Total number of tainted registers across all modules — the y-axis of
    /// Figure 6.
    pub fn taint_sum(&self) -> usize {
        self.modules.iter().map(|m| m.tainted).sum()
    }

    /// Total number of registers across all modules.
    pub fn register_count(&self) -> usize {
        self.modules.iter().map(|m| m.total).sum()
    }

    /// The tainted count for a specific module, if it reported.
    pub fn module_tainted(&self, module: &str) -> Option<usize> {
        self.modules
            .iter()
            .find(|m| m.module == module)
            .map(|m| m.tainted)
    }
}

/// The taint log: one census per simulated cycle.
///
/// This is the paper's "taint log" artifact — Phase 2 reads taint increases
/// inside the transient window from it, Phase 3 diffs it against the
/// sanitized re-run, and Figure 6 plots its taint sums.
#[derive(Clone, Debug, Default)]
pub struct TaintLog {
    cycles: Vec<Census>,
}

impl TaintLog {
    /// An empty log.
    pub fn new() -> Self {
        TaintLog::default()
    }

    /// Appends the census for the next cycle.
    pub fn push(&mut self, census: Census) {
        self.cycles.push(census);
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True if no cycle has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// The census of cycle `c`.
    pub fn cycle(&self, c: usize) -> Option<&Census> {
        self.cycles.get(c)
    }

    /// Iterates over (cycle, census).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Census)> {
        self.cycles.iter().enumerate()
    }

    /// The taint-sum series (Figure 6 curve).
    pub fn taint_sums(&self) -> Vec<usize> {
        self.cycles.iter().map(Census::taint_sum).collect()
    }

    /// Whether the taint sum strictly increases anywhere inside
    /// `[from, to)` — Phase 2's "if taints increase, sensitive data has been
    /// successfully propagated" check.
    pub fn taint_increased_in(&self, from: usize, to: usize) -> bool {
        let to = to.min(self.cycles.len());
        if from >= to {
            return false;
        }
        let mut prev = if from == 0 {
            0
        } else {
            self.cycles[from - 1].taint_sum()
        };
        for c in &self.cycles[from..to] {
            let s = c.taint_sum();
            if s > prev {
                return true;
            }
            prev = s;
        }
        false
    }

    /// The maximum taint sum over the whole log.
    pub fn peak_taint(&self) -> usize {
        self.cycles.iter().map(Census::taint_sum).max().unwrap_or(0)
    }

    /// The final cycle's taint sum (0 for an empty log).
    pub fn final_taint(&self) -> usize {
        self.cycles.last().map(Census::taint_sum).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census(counts: &[(&'static str, usize, usize)]) -> Census {
        let mut c = Census::new();
        for &(m, tainted, total) in counts {
            c.report_counts(m, tainted, total);
        }
        c
    }

    #[test]
    fn report_counts_tainted_registers() {
        let mut c = Census::new();
        c.report("rob", [0u64, 3, 0, 7]);
        assert_eq!(c.taint_sum(), 2);
        assert_eq!(c.register_count(), 4);
        assert_eq!(c.module_tainted("rob"), Some(2));
        assert_eq!(c.module_tainted("lsu"), None);
    }

    #[test]
    fn taint_sum_spans_modules() {
        let c = census(&[("rob", 2, 10), ("lsu", 3, 8), ("dcache", 0, 64)]);
        assert_eq!(c.taint_sum(), 5);
        assert_eq!(c.register_count(), 82);
        assert_eq!(c.modules().len(), 3);
    }

    #[test]
    fn log_taint_sums_series() {
        let mut log = TaintLog::new();
        for s in [0usize, 0, 4, 9, 9] {
            log.push(census(&[("rob", s, 10)]));
        }
        assert_eq!(log.taint_sums(), vec![0, 0, 4, 9, 9]);
        assert_eq!(log.peak_taint(), 9);
        assert_eq!(log.final_taint(), 9);
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn taint_increase_detection() {
        let mut log = TaintLog::new();
        for s in [0usize, 0, 4, 9, 9] {
            log.push(census(&[("rob", s, 10)]));
        }
        assert!(
            log.taint_increased_in(1, 4),
            "taint rises inside the window"
        );
        assert!(!log.taint_increased_in(4, 5), "flat tail shows no increase");
        assert!(!log.taint_increased_in(4, 4), "empty range");
        assert!(!log.taint_increased_in(10, 20), "out of range");
    }

    #[test]
    fn empty_log_is_sane() {
        let log = TaintLog::new();
        assert!(log.is_empty());
        assert_eq!(log.peak_taint(), 0);
        assert_eq!(log.final_taint(), 0);
        assert!(log.cycle(0).is_none());
    }
}
