//! Information flow tracking primitives for the DejaVuzz reproduction.
//!
//! This crate implements the paper's two taint-propagation regimes as
//! *word-level operators* usable both by the netlist simulator
//! (`dejavuzz-rtl`) and by the behavioural out-of-order cores
//! (`dejavuzz-uarch`):
//!
//! * **CellIFT** (Solt et al., USENIX Security '22): the state-of-the-art
//!   policies the paper uses as its baseline. Policy 1 (AND) and Policy 2
//!   (MUX) from §2.2 of the paper, where control taints propagate whenever
//!   the selection signal is tainted — the source of control-flow
//!   over-tainting.
//! * **diffIFT** (the paper's contribution, §3.3 / Table 1): control taints
//!   propagate only when the *cross-instance comparison signal* is high,
//!   i.e. when the two DUT variants (running with different secrets)
//!   actually disagree on the control signal's value.
//!
//! The central type is [`TWord`], a **two-plane tainted word**: plane `a`
//! holds DUT-variant-1's value, plane `b` holds DUT-variant-2's value, and a
//! shared shadow mask `t` holds the (union of the two variants') taint. With
//! both planes in one value, the `diff` gates of Table 1 are available
//! immediately — no lock-step plumbing between separate simulator instances
//! is needed.
//!
//! On top of the operators the crate provides the observation machinery of
//! §4.2–§4.3:
//!
//! * [`census::Census`] — per-module tainted-register counts and the global
//!   taint sum (Figure 6's y-axis),
//! * [`coverage::CoverageMatrix`] — the taint coverage matrix: one bitmap
//!   slot per (module, tainted-register-count) tuple (§4.2.2),
//! * [`liveness`] — taint liveness annotations binding buffer arrays to
//!   their state registers, and the exploitability filter of §4.3.2.
//!
//! # Example
//!
//! ```
//! use dejavuzz_ift::{IftMode, Policy, TWord};
//!
//! let diffift = Policy::new(IftMode::DiffIft);
//! let cellift = Policy::new(IftMode::CellIft);
//!
//! // A tainted selection signal whose value is identical in both variants:
//! let sel = TWord::with_taint(1, 1, 1);
//! let x = TWord::lit(0xAAAA);
//! let y = TWord::lit(0x5555);
//!
//! // CellIFT over-taints: the output is tainted although no secret could
//! // have selected a different input.
//! assert!(cellift.mux(sel, y, x).is_tainted());
//! // diffIFT suppresses the control taint: both variants select `y`.
//! assert!(!diffift.mux(sel, y, x).is_tainted());
//! ```

pub mod census;
pub mod coverage;
pub mod liveness;
pub mod mem;
pub mod persist;
pub mod policy;
pub mod shared;
pub mod tword;

pub use census::{Census, ModuleCensus, TaintLog};
pub use coverage::{
    CoverageLog, CoverageMatrix, CoveragePoint, CoverageView, OverlayCoverage, TaintCoverage,
};
pub use liveness::{LivenessMask, SinkReport};
pub use mem::TMem;
pub use policy::{IftMode, Policy};
pub use shared::{RecordingCoverage, SharedCoverage};
pub use tword::TWord;
