//! Taint liveness annotations (§4.3.2).
//!
//! "The taints produced by diffIFT only indicate reachability. […] not all
//! encoded secrets are exploitable." A buffer such as BOOM's line-fill
//! buffer keeps stale secret bytes after its MSHR invalidates them; matching
//! those bytes (IntroSpectre/TEESec) or hashing them (SpecDoctor) yields
//! false positives.
//!
//! DejaVuzz's answer is the `liveness_mask` annotation: a register array is
//! bound to a *liveness signal vector* whose bit *i* says whether slot *i*
//! currently holds architecturally reachable data. A tainted sink is
//! reported as exploitable only when its liveness bit is high.

/// A liveness annotation: binds a register array (the sink) to a liveness
/// signal vector, one bit per slot.
///
/// This mirrors the paper's Verilog attribute:
///
/// ```text
/// (* liveness_mask = "mshr_valid_vec" *)
/// reg [63:0] lb [15:0];
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LivenessMask {
    /// Module that owns the sink array.
    pub module: &'static str,
    /// Name of the annotated register array.
    pub array: &'static str,
    /// Name of the liveness signal the annotation references.
    pub signal: &'static str,
}

impl LivenessMask {
    /// Creates an annotation binding `module.array` to `signal`.
    pub const fn new(module: &'static str, array: &'static str, signal: &'static str) -> Self {
        LivenessMask {
            module,
            array,
            signal,
        }
    }
}

/// One tainted-sink observation produced during the final analysis sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkReport {
    /// Module that owns the sink.
    pub module: &'static str,
    /// Annotated array name.
    pub array: String,
    /// Slot index within the array.
    pub index: usize,
    /// The slot's shadow mask.
    pub taint: u64,
    /// The slot's liveness bit at sweep time.
    pub live: bool,
}

impl SinkReport {
    /// True if this sink is tainted *and* live — the paper's definition of
    /// an exploitable leakage sink.
    pub fn exploitable(&self) -> bool {
        self.taint != 0 && self.live
    }

    /// True if tainted but dead — the residue class that causes the false
    /// positives of §6.3 (e.g. stale LFB data under an invalid MSHR).
    pub fn residue(&self) -> bool {
        self.taint != 0 && !self.live
    }
}

/// Sweeps a register array against its liveness vector, producing one
/// [`SinkReport`] per slot that carries taint.
///
/// `taints` yields each slot's shadow mask; `live` yields the corresponding
/// liveness bit. The two iterators are zipped, so a mismatched length simply
/// truncates to the shorter one (mirroring a hardware vector width
/// mismatch, which the annotation interface forbids but a sweep tolerates).
pub fn sweep_sinks(
    module: &'static str,
    array: impl Into<String>,
    taints: impl IntoIterator<Item = u64>,
    live: impl IntoIterator<Item = bool>,
    out: &mut Vec<SinkReport>,
) {
    let array = array.into();
    for (index, (taint, live)) in taints.into_iter().zip(live).enumerate() {
        if taint != 0 {
            out.push(SinkReport {
                module,
                array: array.clone(),
                index,
                taint,
                live,
            });
        }
    }
}

/// Filters a sweep down to the exploitable sinks.
pub fn exploitable(reports: &[SinkReport]) -> Vec<&SinkReport> {
    reports.iter().filter(|r| r.exploitable()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_carries_binding() {
        let a = LivenessMask::new("lfb", "lb", "mshr_valid_vec");
        assert_eq!(a.module, "lfb");
        assert_eq!(a.signal, "mshr_valid_vec");
    }

    #[test]
    fn sweep_reports_only_tainted_slots() {
        let mut out = Vec::new();
        sweep_sinks(
            "lfb",
            "lb",
            [0u64, 0xFF, 0, 0x1],
            [true, true, true, false],
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 1);
        assert_eq!(out[1].index, 3);
    }

    #[test]
    fn lfb_stale_data_is_residue_not_exploitable() {
        // The paper's MSHR/LFB example: refill completed, MSHR switched to
        // invalid, secret bytes remain in the LFB. Tainted but dead.
        let mut out = Vec::new();
        sweep_sinks("lfb", "lb", [0xDEAD_u64], [false], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].residue());
        assert!(!out[0].exploitable());
        assert!(exploitable(&out).is_empty());
    }

    #[test]
    fn live_tainted_sink_is_exploitable() {
        let mut out = Vec::new();
        sweep_sinks("dcache", "data", [0u64, 0xBEEF], [true, true], &mut out);
        let ex = exploitable(&out);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].index, 1);
    }

    #[test]
    fn generic_vector_interface_composes_from_submodules() {
        // Lines 2-3 of the paper's listing: lower 8 entries managed by
        // mshrs_0, upper 8 by mshrs_1 — the liveness vector is built by
        // concatenation before the sweep.
        let mshrs_0_valid = false;
        let mshrs_1_valid = true;
        let live_vec: Vec<bool> = std::iter::repeat_n(mshrs_0_valid, 8)
            .chain(std::iter::repeat_n(mshrs_1_valid, 8))
            .collect();
        let taints = vec![0xAAu64; 16];
        let mut out = Vec::new();
        sweep_sinks("lfb", "lb", taints, live_vec, &mut out);
        assert_eq!(out.len(), 16);
        assert_eq!(out.iter().filter(|r| r.exploitable()).count(), 8);
        assert_eq!(out.iter().filter(|r| r.residue()).count(), 8);
    }
}
