//! `dejavuzz-telemetry` — fleet-wide metrics for the campaign engine.
//!
//! The engine's headline claims are observability claims: coverage-over-
//! time curves (the paper's Figures 6–7) and per-phase throughput tables
//! are what demonstrate the fuzzer works. This crate is the always-on,
//! off-the-commit-path instrumentation layer behind them — hand-rolled,
//! because the build environment has no registry access:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free atomic
//!   instruments. Histograms are log₂-bucketed (values land in the
//!   bucket of their bit width), sized for nanosecond latencies.
//! * [`Registry`] — a process-global named instrument table
//!   ([`global()`]) rendering [Prometheus text exposition]
//!   ([`Registry::render_prometheus`]) and a JSON dump
//!   ([`Registry::render_json`], the `dejavuzz-fuzz --metrics-out`
//!   format).
//! * [`CoverageSeries`] — a fixed-budget downsampled series that halves
//!   its resolution as it fills, powering `dejavuzz-serve`'s
//!   coverage-over-time `series <shard>` query.
//!
//! # The determinism contract
//!
//! Metrics live entirely **off the commit path**: instruments are
//! write-only from the campaign's perspective, and no campaign decision,
//! report field, stdout byte or snapshot byte ever reads one back.
//! Wall-clock readings therefore never enter campaign state — a run with
//! metrics recording on, off ([`set_recording`]), or scraped mid-run
//! from another thread is byte-identical to any other (asserted by
//! `tests/metrics.rs` and the CI metrics smoke).
//!
//! [Prometheus text exposition]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

#![warn(missing_docs)]

mod instruments;
mod registry;
mod series;

pub use instruments::{Counter, Gauge, Histogram, Timer, HISTOGRAM_BUCKETS};
pub use registry::{InstrumentKind, Registry};
pub use series::CoverageSeries;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide recording switch. On (the default) instruments
/// record; off they are no-ops — [`Timer`]s skip even the clock read, so
/// the disabled cost of a span is one relaxed atomic load.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Turns metric recording on or off process-wide. Recording is on by
/// default; turning it off is for overhead measurement (the EXPERIMENTS
/// "Observability" bar) — campaign results are byte-identical either
/// way, so there is never a *correctness* reason to disable it.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether instruments currently record. Checked by every instrument
/// write and by [`Timer`] creation.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// The process-global registry every DejaVuzz subsystem registers its
/// instruments in: the executor's phase spans, the gossip layer's
/// exchange counters, the fleet transport's fan-out lag. One registry
/// per process keeps `dejavuzz-serve metrics` a single exposition pass
/// over everything its shards did.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Serialises this crate's unit tests around the process-wide
/// [`RECORDING`] flag: any test that writes instruments (or toggles the
/// flag) holds this lock, so the parallel test harness cannot interleave
/// a disabled window into another test's recording.
#[cfg(test)]
pub(crate) fn recording_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_toggle_gates_instrument_writes() {
        let _serial = recording_test_lock();
        let c = Counter::new();
        c.inc();
        set_recording(false);
        c.inc();
        c.add(10);
        set_recording(true);
        c.inc();
        assert_eq!(c.get(), 2, "writes while disabled are dropped");
    }

    #[test]
    fn global_registry_is_one_instance() {
        let _serial = recording_test_lock();
        let a = global().counter("test_global_total", "a test counter");
        let b = global().counter("test_global_total", "a test counter");
        a.inc();
        assert_eq!(b.get(), 1, "same name resolves to the same instrument");
    }
}
