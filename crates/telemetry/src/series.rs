//! Fixed-budget coverage-over-time series.
//!
//! `dejavuzz-serve` keeps one of these per shard to answer the
//! `series <shard>` query. A campaign can commit millions of slots; the
//! series keeps a bounded number of `(x, y)` points by *stride
//! doubling*: it records every `stride`-th pushed sample, and whenever
//! the kept buffer hits its budget it drops every other kept point and
//! doubles the stride — resolution halves as the run grows, memory
//! never does. The most recent push is additionally tracked exactly, so
//! the final point of the rendered series always equals the shard's
//! latest reported value regardless of where the stride landed.

/// A downsampled `(x, y)` series with a fixed point budget.
///
/// `x` is a monotone progress coordinate (committed iterations), `y`
/// the value at that point (total coverage points). Pushing is O(1)
/// amortised; rendering is O(budget).
#[derive(Debug, Clone)]
pub struct CoverageSeries {
    /// Maximum kept points before a compaction halves resolution.
    budget: usize,
    /// Current sampling stride: every `stride`-th push is kept.
    stride: u64,
    /// Total pushes observed (kept or not).
    seen: u64,
    /// Kept points, oldest first. Point `k` is push number
    /// `k * stride` (0-based), an invariant compaction preserves.
    kept: Vec<(u64, u64)>,
    /// The most recent push, tracked exactly so the rendered series
    /// always ends on the true latest value.
    last: Option<(u64, u64)>,
}

impl CoverageSeries {
    /// A series keeping at most `budget` sampled points (plus the exact
    /// final point). Budgets below 2 are clamped to 2 — a 1-point
    /// "series" cannot show a curve.
    pub fn new(budget: usize) -> Self {
        Self {
            budget: budget.max(2),
            stride: 1,
            seen: 0,
            kept: Vec::new(),
            last: None,
        }
    }

    /// Records a sample. `x` must be non-decreasing across pushes for
    /// the rendered series to be monotone in `x` (callers push commit
    /// progress, which is).
    pub fn push(&mut self, x: u64, y: u64) {
        let index = self.seen;
        self.seen += 1;
        self.last = Some((x, y));
        if !index.is_multiple_of(self.stride) {
            return;
        }
        self.kept.push((x, y));
        if self.kept.len() >= self.budget {
            // Halve resolution: keep points 0, 2, 4, … — each kept
            // point k was push k*stride, so the survivors are pushes
            // 0, 2*stride, 4*stride, …, i.e. every (2*stride)-th push.
            let mut keep_even = 0usize;
            self.kept.retain(|_| {
                let keep = keep_even.is_multiple_of(2);
                keep_even += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    /// Total pushes observed, kept or not.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sampling stride (doubles at each compaction).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The rendered series: the kept downsampled points, with the exact
    /// most recent push appended when the stride skipped it. Never more
    /// than `budget + 1` points.
    pub fn points(&self) -> Vec<(u64, u64)> {
        let mut out = self.kept.clone();
        if let Some(last) = self.last {
            if out.last() != Some(&last) {
                out.push(last);
            }
        }
        out
    }

    /// The exact most recent push, if any.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.last
    }

    /// Renders [`CoverageSeries::points`] as a JSON array of `[x, y]`
    /// pairs: `[[0,1],[4,9],…]`.
    pub fn render_json_points(&self) -> String {
        let mut out = String::from("[");
        for (i, (x, y)) in self.points().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{x},{y}]"));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_renders_empty() {
        let s = CoverageSeries::new(8);
        assert_eq!(s.points(), vec![]);
        assert_eq!(s.render_json_points(), "[]");
        assert_eq!(s.last(), None);
        assert_eq!(s.seen(), 0);
    }

    #[test]
    fn small_series_keeps_every_point() {
        let mut s = CoverageSeries::new(8);
        for i in 0..5u64 {
            s.push(i, i * 10);
        }
        assert_eq!(s.stride(), 1);
        assert_eq!(s.points(), vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(
            s.render_json_points(),
            "[[0,0],[1,10],[2,20],[3,30],[4,40]]"
        );
    }

    #[test]
    fn compaction_halves_resolution_and_doubles_stride() {
        let mut s = CoverageSeries::new(4);
        for i in 0..4u64 {
            s.push(i, i);
        }
        // Hitting the budget compacts to pushes 0 and 2, stride 2.
        assert_eq!(s.stride(), 2);
        assert_eq!(s.kept, vec![(0, 0), (2, 2)]);
        // Exact last (push 3) still closes the rendered series.
        assert_eq!(s.points(), vec![(0, 0), (2, 2), (3, 3)]);
    }

    #[test]
    fn final_point_is_exact_regardless_of_stride() {
        let mut s = CoverageSeries::new(8);
        for i in 0..1000u64 {
            s.push(i, i * 3);
        }
        let points = s.points();
        assert_eq!(*points.last().unwrap(), (999, 2997), "exact last value");
        assert!(
            points.len() <= 9,
            "budget + exact last, got {}",
            points.len()
        );
    }

    #[test]
    fn long_series_stays_within_budget_and_monotone() {
        let mut s = CoverageSeries::new(16);
        let mut y = 0u64;
        for i in 0..100_000u64 {
            if i % 97 == 0 {
                y += 1;
            }
            s.push(i, y);
        }
        let points = s.points();
        assert!(points.len() <= 17, "got {} points", points.len());
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "x strictly grows"
        );
        assert!(points.windows(2).all(|w| w[0].1 <= w[1].1), "y monotone");
        assert_eq!(points.last().unwrap().1, y, "ends on the true total");
        // The stride doubled several times getting here.
        assert!(s.stride() >= 4096, "stride {}", s.stride());
    }

    #[test]
    fn kept_points_remain_aligned_to_stride_after_compactions() {
        let mut s = CoverageSeries::new(4);
        for i in 0..64u64 {
            s.push(i, i);
        }
        // Invariant: kept point k is push k * stride.
        for (k, &(x, _)) in s.kept.iter().enumerate() {
            assert_eq!(x, k as u64 * s.stride(), "point {k} off-stride");
        }
    }

    #[test]
    fn tiny_budget_is_clamped() {
        let mut s = CoverageSeries::new(0);
        for i in 0..10u64 {
            s.push(i, i);
        }
        assert!(s.points().len() >= 2, "clamped budget still yields a curve");
    }
}
