//! The atomic instruments: counters, gauges, log₂-bucketed histograms
//! and the [`Timer`] span guard that feeds them.
//!
//! Every write checks the process-wide recording flag first
//! ([`crate::recording`]); when recording is off an instrument write is
//! a single relaxed load and nothing else — no clock read, no RMW.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::recording;

/// A monotonically increasing atomic counter. Rendered to Prometheus as
/// a `counter` family; by convention names end in `_total`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Saturates at `u64::MAX` rather than wrapping: a pinned
    /// counter is an obvious artefact, a wrapped one silently lies.
    #[inline]
    pub fn add(&self, n: u64) {
        if !recording() {
            return;
        }
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge, with an accumulate mode ([`Gauge::add`])
/// for per-run totals that several shards in one process contribute to
/// (e.g. busy nanoseconds across a `dejavuzz-serve` fleet).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if !recording() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Accumulates `n` into the gauge, saturating. Used for fleet-wide
    /// totals where each shard's run adds its share.
    #[inline]
    pub fn add(&self, n: u64) {
        if !recording() {
            return;
        }
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket count for [`Histogram`]: bucket `i` (for `i ≥ 1`) holds values
/// whose bit width is `i`, i.e. the range `[2^(i-1), 2^i - 1]`; bucket 0
/// holds exactly the value 0. 64 bit-width buckets + the zero bucket
/// cover every `u64`, so there is no overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free latency histogram with log₂ buckets.
///
/// Values (by convention, nanoseconds) land in the bucket of their bit
/// width: 0 → bucket 0, 1 → bucket 1, 2..=3 → bucket 2, 4..=7 → bucket
/// 3, and so on. That trades per-bucket precision (each bucket spans a
/// 2× range) for a constant-time, allocation-free `observe` — the right
/// trade for spans on a fuzzing hot path, where the interesting signal
/// is order-of-magnitude shifts, not microsecond deltas.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of observed values, saturating.
    sum: AtomicU64,
    /// Number of observations, saturating.
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: its bit width (0 for 0).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (the Prometheus `le`
    /// label): `2^i - 1`, with the last bucket's bound being `u64::MAX`.
    pub fn bucket_bound(i: usize) -> u64 {
        debug_assert!(i < HISTOGRAM_BUCKETS);
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation. Saturating on both sum and count.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !recording() {
            return;
        }
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, v);
        saturating_fetch_add(&self.count, 1);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), indexed by bit width.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// The highest bucket index with a nonzero count, if any sample has
    /// been observed. Rendering stops here (plus `+Inf`) to keep the
    /// exposition short.
    pub fn highest_nonzero_bucket(&self) -> Option<usize> {
        (0..HISTOGRAM_BUCKETS)
            .rev()
            .find(|&i| self.buckets[i].load(Ordering::Relaxed) != 0)
    }
}

/// `fetch_add` that pins at `u64::MAX` instead of wrapping.
fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A span guard: created at the start of a phase, records the elapsed
/// nanoseconds into a [`Histogram`] when dropped.
///
/// When recording is off at creation time the guard holds no start
/// instant and the drop is free — the *entire* disabled cost of a span
/// is one relaxed atomic load, which is what keeps always-on
/// instrumentation viable on the per-slot hot path.
#[must_use = "a Timer records on drop; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Timer<'h> {
    histogram: &'h Histogram,
    start: Option<Instant>,
}

impl<'h> Timer<'h> {
    /// Starts a span against `histogram`. Reads the clock only if
    /// recording is on.
    #[inline]
    pub fn start(histogram: &'h Histogram) -> Self {
        let start = if recording() {
            Some(Instant::now())
        } else {
            None
        };
        Self { histogram, start }
    }

    /// Ends the span early (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.observe(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{recording_test_lock, set_recording};

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let _serial = recording_test_lock();
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_set_and_accumulate() {
        let _serial = recording_test_lock();
        let g = Gauge::new();
        g.set(42);
        assert_eq!(g.get(), 42);
        g.add(8);
        assert_eq!(g.get(), 50);
        g.set(7);
        assert_eq!(g.get(), 7);
        set_recording(false);
        g.set(99);
        g.add(99);
        set_recording(true);
        assert_eq!(g.get(), 7, "writes while disabled are dropped");
    }

    #[test]
    fn histogram_zero_samples() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.highest_nonzero_bucket(), None);
        assert!(h.bucket_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn histogram_single_sample() {
        let _serial = recording_test_lock();
        let h = Histogram::new();
        h.observe(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1000);
        // 1000 has bit width 10 (512..=1023).
        assert_eq!(h.highest_nonzero_bucket(), Some(10));
        assert_eq!(h.bucket_counts()[10], 1);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Value 0 is its own bucket; powers of two open a new bucket;
        // 2^i - 1 closes bucket i.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Bounds are inclusive: bucket_index(bound(i)) == i for nonzero
        // buckets, and bound(i) + 1 lands in bucket i + 1.
        for i in 1..HISTOGRAM_BUCKETS {
            let bound = Histogram::bucket_bound(i);
            assert_eq!(Histogram::bucket_index(bound), i, "bound of bucket {i}");
            if i < 64 {
                assert_eq!(
                    Histogram::bucket_index(bound + 1),
                    i + 1,
                    "first value past bucket {i}"
                );
            }
        }
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_saturating_counts() {
        let _serial = recording_test_lock();
        let h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum pins at MAX instead of wrapping");
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts()[64], 2);
    }

    #[test]
    fn histogram_disabled_recording_drops_observations() {
        let _serial = recording_test_lock();
        let h = Histogram::new();
        set_recording(false);
        h.observe(123);
        set_recording(true);
        assert_eq!(h.count(), 0);
        h.observe(123);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn timer_records_elapsed_nanos_on_drop() {
        let _serial = recording_test_lock();
        let h = Histogram::new();
        {
            let t = Timer::start(&h);
            t.finish();
        }
        assert_eq!(h.count(), 1);
        // Elapsed is at least zero and the histogram recorded it.
        assert!(h.highest_nonzero_bucket().is_some() || h.bucket_counts()[0] == 1);
    }

    #[test]
    fn timer_disabled_reads_no_clock_and_records_nothing() {
        let _serial = recording_test_lock();
        let h = Histogram::new();
        set_recording(false);
        let t = Timer::start(&h);
        assert!(t.start.is_none(), "disabled timer holds no start instant");
        drop(t);
        set_recording(true);
        assert_eq!(h.count(), 0);
    }
}
