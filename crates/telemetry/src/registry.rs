//! The named instrument table and its two exposition formats.
//!
//! A [`Registry`] maps metric family names to shared instrument handles.
//! Registration is idempotent — `counter("x_total", ...)` twice returns
//! the same [`Counter`] — so call sites resolve their handles lazily
//! without coordination. Rendering walks the table in name order, which
//! makes both expositions deterministic in *structure* (family set,
//! ordering, no duplicates); the sampled values are wall-clock derived
//! and of course vary run to run.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::instruments::{Counter, Gauge, Histogram};

/// What a registered metric family is. Mostly for introspection and
/// exposition tests; the typed accessors on [`Registry`] are the normal
/// way in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// A monotonically increasing count ([`Counter`]).
    Counter,
    /// A point-in-time value ([`Gauge`]).
    Gauge,
    /// A log₂-bucketed latency distribution ([`Histogram`]).
    Histogram,
}

impl InstrumentKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    fn prometheus_type(self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> InstrumentKind {
        match self {
            Instrument::Counter(_) => InstrumentKind::Counter,
            Instrument::Gauge(_) => InstrumentKind::Gauge,
            Instrument::Histogram(_) => InstrumentKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    instrument: Instrument,
}

/// A named table of instruments with Prometheus and JSON exposition.
///
/// Most code uses the process-global instance ([`crate::global`]);
/// separate registries exist for tests and for embedders that want
/// isolated metric namespaces.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it with `help` on
    /// first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind —
    /// that is a programming error (two subsystems disagreeing on a
    /// family's type), not a runtime condition.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            instrument: Instrument::Counter(Arc::new(Counter::new())),
        });
        match &entry.instrument {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!(
                "metric {name:?} already registered as {:?}, requested counter",
                other.kind()
            ),
        }
    }

    /// The gauge registered under `name`, creating it with `help` on
    /// first use. Panics on a kind mismatch, like [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            instrument: Instrument::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.instrument {
            Instrument::Gauge(g) => Arc::clone(g),
            other => panic!(
                "metric {name:?} already registered as {:?}, requested gauge",
                other.kind()
            ),
        }
    }

    /// The histogram registered under `name`, creating it with `help` on
    /// first use. Panics on a kind mismatch, like [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            instrument: Instrument::Histogram(Arc::new(Histogram::new())),
        });
        match &entry.instrument {
            Instrument::Histogram(h) => Arc::clone(h),
            other => panic!(
                "metric {name:?} already registered as {:?}, requested histogram",
                other.kind()
            ),
        }
    }

    /// The kind registered under `name`, if any.
    pub fn kind(&self, name: &str) -> Option<InstrumentKind> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.get(name).map(|e| e.instrument.kind())
    }

    /// Registered family names, sorted.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.keys().cloned().collect()
    }

    /// Renders the whole registry in Prometheus text exposition format:
    /// one `# HELP` + `# TYPE` pair per family, families in name order,
    /// histograms as cumulative `_bucket{le="..."}` samples up to their
    /// highest populated bucket plus `+Inf`, then `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        // Snapshot the instrument handles, then render outside the lock:
        // rendering reads atomics only, and holding the table lock across
        // it would stall concurrent first-use registrations for no
        // consistency gain (samples are racy reads by design).
        let snapshot: Vec<(String, String, Instrument)> = {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            entries
                .iter()
                .map(|(name, e)| (name.clone(), e.help.clone(), e.instrument.clone()))
                .collect()
        };
        let mut out = String::new();
        for (name, help, instrument) in &snapshot {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(out, "# TYPE {name} {}", instrument.kind().prometheus_type());
            match instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let top = h.highest_nonzero_bucket();
                    let mut cumulative = 0u64;
                    if let Some(top) = top {
                        for (i, &count) in counts.iter().enumerate().take(top + 1) {
                            cumulative = cumulative.saturating_add(count);
                            let _ = writeln!(
                                out,
                                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                                Histogram::bucket_bound(i)
                            );
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON object — the `dejavuzz-fuzz
    /// --metrics-out` dump format:
    ///
    /// ```json
    /// {"counters":{"name":N,...},
    ///  "gauges":{"name":N,...},
    ///  "histograms":{"name":{"count":N,"sum":N,"buckets":[[le,cum],..]},...}}
    /// ```
    ///
    /// Bucket entries are `[inclusive_bound, cumulative_count]` pairs up
    /// to the highest populated bucket; an empty histogram has
    /// `"buckets":[]`.
    pub fn render_json(&self) -> String {
        let snapshot: Vec<(String, Instrument)> = {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            entries
                .iter()
                .map(|(name, e)| (name.clone(), e.instrument.clone()))
                .collect()
        };
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, instrument) in &snapshot {
            match instrument {
                Instrument::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    let _ = write!(counters, "{}:{}", json_string(name), c.get());
                }
                Instrument::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    let _ = write!(gauges, "{}:{}", json_string(name), g.get());
                }
                Instrument::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    let counts = h.bucket_counts();
                    let mut buckets = String::new();
                    let mut cumulative = 0u64;
                    if let Some(top) = h.highest_nonzero_bucket() {
                        for (i, &count) in counts.iter().enumerate().take(top + 1) {
                            cumulative = cumulative.saturating_add(count);
                            if !buckets.is_empty() {
                                buckets.push(',');
                            }
                            let _ =
                                write!(buckets, "[{},{cumulative}]", Histogram::bucket_bound(i));
                        }
                    }
                    let _ = write!(
                        histograms,
                        "{}:{{\"count\":{},\"sum\":{},\"buckets\":[{buckets}]}}",
                        json_string(name),
                        h.count(),
                        h.sum()
                    );
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }
}

/// Escapes a help string for a `# HELP` line: Prometheus requires `\\`
/// and newline escaping there (and our help strings are single-line
/// ASCII anyway — this is belt and braces).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// A minimal JSON string encoder for metric names (this crate is
/// dependency-free, so it cannot borrow `dejavuzz`'s escaper).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording_test_lock;

    #[test]
    fn registration_is_idempotent_per_kind() {
        let _serial = recording_test_lock();
        let r = Registry::new();
        let a = r.counter("a_total", "first help wins");
        let b = r.counter("a_total", "ignored on re-registration");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert_eq!(r.kind("a_total"), Some(InstrumentKind::Counter));
        assert_eq!(r.kind("missing"), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "a counter");
        let _ = r.gauge("x_total", "now a gauge?");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let _serial = recording_test_lock();
        let r = Registry::new();
        r.counter("b_iters_total", "iterations").add(7);
        r.gauge("a_depth", "queue depth").set(2);
        let h = r.histogram("c_lat_nanos", "latency");
        h.observe(0);
        h.observe(3);
        h.observe(3);
        let text = r.render_prometheus();
        // Families in name order, each with exactly one HELP/TYPE pair.
        let a = text.find("# HELP a_depth queue depth").expect("gauge help");
        let b = text
            .find("# HELP b_iters_total iterations")
            .expect("counter help");
        let c = text
            .find("# HELP c_lat_nanos latency")
            .expect("histogram help");
        assert!(a < b && b < c, "families render in name order");
        assert!(text.contains("# TYPE a_depth gauge\na_depth 2\n"));
        assert!(text.contains("# TYPE b_iters_total counter\nb_iters_total 7\n"));
        assert!(text.contains("# TYPE c_lat_nanos histogram\n"));
        // 0 → bucket 0 (le=0), two 3s → bucket 2 (le=3); cumulative.
        assert!(text.contains("c_lat_nanos_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("c_lat_nanos_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("c_lat_nanos_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("c_lat_nanos_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("c_lat_nanos_sum 6\n"));
        assert!(text.contains("c_lat_nanos_count 3\n"));
        // No duplicate families.
        assert_eq!(text.matches("# TYPE c_lat_nanos ").count(), 1);
    }

    #[test]
    fn prometheus_empty_histogram_renders_inf_only() {
        let r = Registry::new();
        let _ = r.histogram("empty_nanos", "never observed");
        let text = r.render_prometheus();
        assert!(text.contains("empty_nanos_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_nanos_sum 0\n"));
        assert!(text.contains("empty_nanos_count 0\n"));
        assert!(!text.contains("le=\"0\""), "no finite buckets when empty");
    }

    #[test]
    fn json_dump_shape() {
        let _serial = recording_test_lock();
        let r = Registry::new();
        r.counter("iters_total", "iterations").add(4);
        r.gauge("depth", "queue depth").set(9);
        let h = r.histogram("lat_nanos", "latency");
        h.observe(2);
        let json = r.render_json();
        assert_eq!(
            json,
            "{\"counters\":{\"iters_total\":4},\
             \"gauges\":{\"depth\":9},\
             \"histograms\":{\"lat_nanos\":{\"count\":1,\"sum\":2,\
             \"buckets\":[[0,0],[1,0],[3,1]]}}}"
        );
    }

    #[test]
    fn json_dump_empty_registry() {
        let r = Registry::new();
        assert_eq!(
            r.render_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
