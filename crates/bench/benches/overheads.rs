//! Criterion micro-benchmarks backing Table 4's per-mode costs: attack
//! simulation under Base / CellIFT / diffIFT, instrumentation passes, and
//! one fuzzing iteration end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use dejavuzz::campaign::{Campaign, FuzzerOptions};
use dejavuzz_ift::IftMode;
use dejavuzz_rtl::examples::{synthetic_core, CoreScale};
use dejavuzz_rtl::instrument;
use dejavuzz_uarch::core::Core;
use dejavuzz_uarch::{attacks, boom_small};

fn sim_modes(c: &mut Criterion) {
    let case = attacks::spectre_v1();
    let mut g = c.benchmark_group("spectre_v1_simulation");
    for mode in IftMode::ALL {
        g.bench_function(mode.name(), |b| {
            b.iter(|| {
                let mut mem = case.build_mem(&dejavuzz_specdoctor::SECRET);
                Core::new(boom_small(), mode).run(&mut mem, 20_000)
            })
        });
    }
    g.finish();
}

fn instrument_passes(c: &mut Criterion) {
    let scale = CoreScale {
        name: "bench",
        verilog_loc: 0,
        comb_cells: 2_000,
        regs: 400,
        mems: (4, 128),
    };
    let netlist = synthetic_core(scale);
    let mut g = c.benchmark_group("instrumentation");
    for mode in [IftMode::DiffIft, IftMode::CellIft] {
        g.bench_function(mode.name(), |b| b.iter(|| instrument(&netlist, mode)));
    }
    g.finish();
}

fn fuzz_iteration(c: &mut Criterion) {
    c.bench_function("fuzz_iteration", |b| {
        let mut campaign = Campaign::with_backend(
            dejavuzz::BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            1,
        );
        b.iter(|| campaign.iteration())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sim_modes, instrument_passes, fuzz_iteration
}
criterion_main!(benches);
