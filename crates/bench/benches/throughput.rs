//! End-to-end fuzzing throughput: the same iteration budget on a
//! single-worker pool vs. multi-worker shared-corpus pools. The
//! acceptance bar for the executor refactor is that N ≥ 2 workers beat
//! one worker's wall-clock on a multicore host.

use criterion::{criterion_group, criterion_main, Criterion};
use dejavuzz::campaign::FuzzerOptions;
use dejavuzz::executor;
use dejavuzz_uarch::boom_small;

/// Enough work per measurement that thread startup and channel traffic
/// are noise, small enough to keep the bench quick.
const ITERATIONS: usize = 24;

fn pool_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_throughput");
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    // Always bench 1 vs 2 so the scaling row exists even on small hosts
    // (on a single hardware thread the 2-worker pool is work-conserving
    // and lands within noise of 1 worker); wider pools only where the
    // cores exist to back them.
    for workers in [1, 2, 4, 8] {
        if workers > 2 && workers > available {
            continue;
        }
        g.bench_function(&format!("{ITERATIONS}_iters_{workers}_workers"), |b| {
            b.iter(|| {
                executor::run(
                    boom_small(),
                    FuzzerOptions::default(),
                    workers,
                    ITERATIONS,
                    7,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pool_scaling
}
criterion_main!(benches);
