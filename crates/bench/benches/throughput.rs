//! End-to-end fuzzing throughput: the same iteration budget on a
//! single-worker pool vs. multi-worker shared-corpus pools. The
//! acceptance bar for the executor refactor is that N ≥ 2 workers beat
//! one worker's wall-clock on a multicore host.
//!
//! The `backends` group measures the `SimBackend` seam itself: the same
//! phase-1 workload statically dispatched on `BehaviouralBackend` vs.
//! dyn-dispatched through `Box<dyn SimBackend>` (the acceptance bar for
//! the seam is <2% overhead on the behavioural path — one virtual call
//! per simulation is noise against the simulation), plus one
//! netlist-backend campaign round for the CI smoke.

use criterion::{criterion_group, criterion_main, Criterion};
use dejavuzz::backend::{BackendSpec, BehaviouralBackend, SimBackend};
use dejavuzz::campaign::FuzzerOptions;
use dejavuzz::executor;
use dejavuzz::gen::WindowType;
use dejavuzz::phases::{phase1, PhaseOptions};
use dejavuzz::Seed;
use dejavuzz_rtl::examples::SMALL_SCALE;
use dejavuzz_uarch::boom_small;

/// Enough work per measurement that thread startup and channel traffic
/// are noise, small enough to keep the bench quick.
const ITERATIONS: usize = 24;

fn pool_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_throughput");
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    // Always bench 1 vs 2 so the scaling row exists even on small hosts
    // (on a single hardware thread the 2-worker pool is work-conserving
    // and lands within noise of 1 worker); wider pools only where the
    // cores exist to back them.
    for workers in [1, 2, 4, 8] {
        if workers > 2 && workers > available {
            continue;
        }
        g.bench_function(&format!("{ITERATIONS}_iters_{workers}_workers"), |b| {
            b.iter(|| {
                executor::run(
                    BackendSpec::behavioural(boom_small()),
                    FuzzerOptions::default(),
                    workers,
                    ITERATIONS,
                    7,
                )
            })
        });
    }
    g.finish();
}

/// Round robin vs. work stealing on the same campaign: wall-clock here,
/// with the machine-independent modelled-makespan comparison living in
/// the `throughput_json` bin (one-core CI runners serialise both
/// schedulers, so wall-clock alone cannot show the barrier idling that
/// stealing removes).
fn schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedulers");
    for (name, spec) in [
        ("round_robin", dejavuzz::SchedulerSpec::RoundRobin),
        ("work_stealing", dejavuzz::SchedulerSpec::WorkStealing),
    ] {
        g.bench_function(&format!("{ITERATIONS}_iters_2_workers_{name}"), |b| {
            b.iter(|| {
                dejavuzz::CampaignBuilder::new()
                    .workers(2)
                    .seed(7)
                    .scheduler(spec.clone())
                    .build()
                    .expect("a valid bench configuration")
                    .run(ITERATIONS)
            })
        });
    }
    g.finish();
}

fn backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("backends");
    let seed = Seed::new(WindowType::BranchMispredict, 7);
    let opts = PhaseOptions::default();

    // Static dispatch: the monomorphised generic call, equivalent to the
    // old direct phases-on-Core path.
    g.bench_function("phase1_behavioural_static", |b| {
        let mut backend = BehaviouralBackend::new(boom_small());
        b.iter(|| phase1(&mut backend, &seed, &opts).unwrap())
    });
    // Dyn dispatch: what Campaign/Worker actually do.
    g.bench_function("phase1_behavioural_dyn", |b| {
        let mut backend: Box<dyn SimBackend> = BackendSpec::default().build();
        b.iter(|| phase1(backend.as_mut(), &seed, &opts).unwrap())
    });
    // One netlist-backend campaign round (the CI bench-smoke netlist run).
    g.bench_function("campaign_netlist_small", |b| {
        b.iter(|| {
            executor::run(
                BackendSpec::netlist(SMALL_SCALE),
                FuzzerOptions::default(),
                1,
                8,
                7,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pool_scaling, schedulers, backends
}
criterion_main!(benches);
