//! The benchmark harness: one function per paper table/figure, shared by
//! the `table*`/`figure*` binaries and the Criterion benches.
//!
//! Each function regenerates the *rows/series the paper reports*; absolute
//! numbers differ (our substrate is a behavioural simulator, not VCS on an
//! EPYC testbed) but the comparative shape is the deliverable — see
//! EXPERIMENTS.md for the paper-vs-measured record.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dejavuzz::campaign::{CampaignStats, FuzzerOptions};
use dejavuzz::executor;
use dejavuzz::gen::WindowType;
use dejavuzz::observer::json_str;
use dejavuzz_ift::{CoverageMatrix, IftMode};
use dejavuzz_specdoctor::{SpecDoctor, SpecDoctorOptions};
use dejavuzz_uarch::core::Core;
use dejavuzz_uarch::{attacks, boom_small, xiangshan_minimal, CoreConfig};

/// Table 2: the core-summary rows.
pub fn table2() -> String {
    let mut out = String::from("Table 2: Summary of the cores used for evaluation\n\n");
    out.push_str(&format!(
        "{:<16} {:>14} {:>14}\n",
        "Feature", "BOOM", "XiangShan"
    ));
    let (b, x) = (boom_small(), xiangshan_minimal());
    out.push_str(&format!(
        "{:<16} {:>14} {:>14}\n",
        "Configuration", b.configuration, x.configuration
    ));
    out.push_str(&format!("{:<16} {:>14} {:>14}\n", "ISA", b.isa, x.isa));
    out.push_str(&format!(
        "{:<16} {:>13}K {:>13}K\n",
        "Verilog LoC",
        b.verilog_loc / 1000,
        x.verilog_loc / 1000
    ));
    out.push_str(&format!(
        "{:<16} {:>14} {:>14}\n",
        "Annotation LoC", b.annotation_loc, x.annotation_loc
    ));
    out.push_str(&format!(
        "{:<16} {:>14} {:>14}\n",
        "Annotations",
        dejavuzz_uarch::annotations(&b).len(),
        dejavuzz_uarch::annotations(&x).len()
    ));
    out
}

/// One Table 3 cell: mean TO (ETO) or `/` when the type never triggered.
fn t3_cell(stats: &CampaignStats, wt: WindowType, with_eto: bool) -> String {
    match stats.windows.get(&wt) {
        Some(ws) if ws.triggered > 0 => {
            if with_eto {
                format!("{:.1} ({:.1})", ws.mean_to(), ws.mean_eto())
            } else {
                format!("{:.1}", ws.mean_to())
            }
        }
        _ => "/".to_string(),
    }
}

/// Runs a fixed-seed pipeline collecting Phase-1 statistics, with enough
/// iterations to attempt ~`windows_per_type` of each type. Runs on the
/// 2-worker executor (deterministic per seed, twice the simulation
/// throughput on multicore hosts) with corpus exploitation disabled:
/// Table 3's per-type means require uniform fresh sampling, not
/// retention-skewed lineages.
fn training_stats(cfg: CoreConfig, opts: FuzzerOptions, windows_per_type: usize) -> CampaignStats {
    dejavuzz::CampaignBuilder::new()
        .backend(dejavuzz::BackendSpec::behavioural(cfg))
        .options(opts)
        .workers(2)
        .seed(0xDEAD)
        .exploit_probability(0.0)
        .build()
        .expect("a valid bench configuration")
        .run(windows_per_type * WindowType::ALL.len())
        .stats
}

/// SpecDoctor's Table-3 row: window types it manages to trigger, with its
/// per-window training cost.
fn specdoctor_training_row(
    cfg: CoreConfig,
    iterations: usize,
) -> BTreeMap<&'static str, (usize, usize)> {
    let mut sd = SpecDoctor::new(cfg, SpecDoctorOptions::default(), 0xBEEF);
    let mut cov = CoverageMatrix::new();
    let mut rows: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for _ in 0..iterations {
        let it = sd.iteration(&mut cov);
        if let Some(cause) = it.window_cause {
            let e = rows.entry(cause).or_insert((0, 0));
            e.0 += 1;
            e.1 += it.training_instrs;
        }
    }
    rows
}

fn cause_of(wt: WindowType) -> &'static str {
    wt.expected_cause()
}

/// Table 3: training overhead per window type × fuzzer × core.
pub fn table3(windows_per_type: usize, sd_iterations: usize) -> String {
    let mut out = String::from(
        "Table 3: Training overhead for different types of transient windows\n\
         (cells: mean TO, DejaVuzz additionally (ETO); '/' = failed to trigger)\n\n",
    );
    for cfg in [boom_small(), xiangshan_minimal()] {
        out.push_str(&format!("== {} ==\n", cfg.name));
        out.push_str(&format!("{:<28}", "Window type"));
        let fuzzers = if cfg.name == "BOOM" {
            vec!["DejaVuzz", "DejaVuzz*", "SpecDoctor"]
        } else {
            vec!["DejaVuzz", "DejaVuzz*"]
        };
        for f in &fuzzers {
            out.push_str(&format!(" {f:>18}"));
        }
        out.push('\n');
        let dv = training_stats(cfg, FuzzerOptions::default(), windows_per_type);
        let star = training_stats(cfg, FuzzerOptions::dejavuzz_star(), windows_per_type);
        let sd = if cfg.name == "BOOM" {
            Some(specdoctor_training_row(cfg, sd_iterations))
        } else {
            None
        };
        for wt in WindowType::ALL {
            out.push_str(&format!("{:<28}", wt.name()));
            out.push_str(&format!(" {:>18}", t3_cell(&dv, wt, true)));
            out.push_str(&format!(" {:>18}", t3_cell(&star, wt, false)));
            if let Some(sd) = &sd {
                let cell = sd
                    .get(cause_of(wt))
                    .map(|(n, total)| format!("{:.1}", *total as f64 / *n as f64))
                    .unwrap_or_else(|| "/".to_string());
                out.push_str(&format!(" {cell:>18}"));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Table 4: instrumentation (compile) and simulation overhead of the IFT
/// modes. The compile rows instrument synthetic BOOM/XiangShan-scale
/// netlists (CellIFT flattens memories; the XiangShan×CellIFT cell is
/// subject to `timeout`); the simulation rows run the five attack
/// benchmarks on the behavioural cores.
pub fn table4(timeout: Duration, scale_divisor: usize) -> String {
    use dejavuzz_rtl::examples::{synthetic_core, CoreScale, BOOM_SCALE, XIANGSHAN_SCALE};
    use dejavuzz_rtl::instrument;

    let shrink = |s: CoreScale| CoreScale {
        comb_cells: s.comb_cells / scale_divisor,
        regs: s.regs / scale_divisor,
        mems: (s.mems.0, s.mems.1 / scale_divisor.max(1)),
        ..s
    };
    let mut out = String::from("Table 4: Overhead of differential information flow tracking\n\n");
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>12}\n",
        "Compile (instrument)", "Base", "CellIFT", "diffIFT"
    ));
    for scale in [shrink(BOOM_SCALE), shrink(XIANGSHAN_SCALE)] {
        let netlist = synthetic_core(scale);
        out.push_str(&format!("{:<24}", scale.name));
        for mode in IftMode::ALL {
            // A crude timeout: estimate from the smaller design's rate is
            // complex; instead run and give up if the pass exceeds the
            // budget (the paper's XiangShan×CellIFT row reads "Timeout
            // after 8h").
            let start = Instant::now();
            if mode == IftMode::CellIft && scale.name == "XiangShan" {
                // Probe with one flattening pass; bail out if over budget.
                let (_, report) = instrument(&netlist, mode);
                if report.duration > timeout {
                    out.push_str(&format!(" {:>12}", "timeout"));
                    continue;
                }
                out.push_str(&format!(" {:>10.2}ms", report.duration.as_secs_f64() * 1e3));
                continue;
            }
            let (_, report) = instrument(&netlist, mode);
            let _ = start;
            out.push_str(&format!(" {:>10.2}ms", report.duration.as_secs_f64() * 1e3));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\n{:<24} {:>12} {:>12} {:>12}\n",
        "Simulation (BOOM)", "Base", "CellIFT", "diffIFT"
    ));
    for case in attacks::all() {
        out.push_str(&format!("{:<24}", case.name));
        for mode in IftMode::ALL {
            let mut mem = case.build_mem(&dejavuzz_specdoctor::SECRET);
            let start = Instant::now();
            let _ = Core::new(boom_small(), mode).run(&mut mem, 20_000);
            out.push_str(&format!(" {:>10.2}ms", start.elapsed().as_secs_f64() * 1e3));
        }
        out.push('\n');
    }
    out
}

/// Figure 6 data: per-cycle taint sums for the five attacks under diffIFT,
/// diffIFT_FN (identical secrets) and CellIFT, as CSV.
pub fn figure6() -> String {
    let mut out = String::from("attack,mode,cycle,taint_sum\n");
    for case in attacks::all() {
        for (mode, identical, label) in [
            (IftMode::DiffIft, false, "diffIFT"),
            (IftMode::DiffIft, true, "diffIFT_FN"),
            (IftMode::CellIft, false, "CellIFT"),
        ] {
            let mut mem = case.build_mem_with(&dejavuzz_specdoctor::SECRET, identical);
            let r = Core::new(boom_small(), mode).run(&mut mem, 20_000);
            for (cycle, sum) in r.taint_log.taint_sums().iter().enumerate() {
                out.push_str(&format!("{},{label},{cycle},{sum}\n", case.name));
            }
        }
    }
    out
}

/// A Figure 6 summary: peak taint per attack×mode (the claim being that
/// CellIFT explodes while diffIFT stays bounded).
pub fn figure6_summary() -> String {
    let mut out = String::from("Figure 6 summary: peak taint sum per attack and mode\n\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>10}\n",
        "Attack", "diffIFT", "diffIFT_FN", "CellIFT"
    ));
    for case in attacks::all() {
        out.push_str(&format!("{:<16}", case.name));
        for (mode, identical) in [
            (IftMode::DiffIft, false),
            (IftMode::DiffIft, true),
            (IftMode::CellIft, false),
        ] {
            let mut mem = case.build_mem_with(&dejavuzz_specdoctor::SECRET, identical);
            let r = Core::new(boom_small(), mode).run(&mut mem, 20_000);
            out.push_str(&format!(" {:>10}", r.taint_log.peak_taint()));
        }
        out.push('\n');
    }
    out
}

/// Figure 7 data: coverage growth over iterations for DejaVuzz, DejaVuzz⁻
/// and SpecDoctor (mean over `trials`), as CSV.
pub fn figure7(iterations: usize, trials: u64) -> String {
    let mut out = String::from("fuzzer,trial,iteration,coverage\n");
    for trial in 0..trials {
        for (name, opts) in [
            ("DejaVuzz", FuzzerOptions::default()),
            ("DejaVuzz-", FuzzerOptions::dejavuzz_minus()),
        ] {
            // Single-worker pool: the exact per-iteration union curve with
            // sequential-iteration semantics, comparable to SpecDoctor's.
            let stats = executor::run(
                dejavuzz::BackendSpec::behavioural(boom_small()),
                opts,
                1,
                iterations,
                1000 + trial,
            )
            .stats;
            for (i, cov) in stats.coverage_curve.iter().enumerate() {
                out.push_str(&format!("{name},{trial},{i},{cov}\n"));
            }
        }
        let mut sd = SpecDoctor::new(boom_small(), SpecDoctorOptions::default(), 2000 + trial);
        let mut cov = CoverageMatrix::new();
        for i in 0..iterations {
            // Paper §6.2: "we replay the phase 3 test cases generated by
            // SpecDoctor in our environment" — only cases that pass its
            // own phase-3 filter (a state-hash difference) are replayed.
            let case = sd.generate_case();
            let it = sd.run_case(&case);
            if it.hash_diff {
                cov.observe_log(&it.run.taint_log);
            }
            out.push_str(&format!("SpecDoctor,{trial},{i},{}\n", cov.points()));
        }
    }
    out
}

/// Figure 7 summary: final coverage per fuzzer plus the improvement
/// factor (the paper reports 4.7× over SpecDoctor, 1.22× over DejaVuzz⁻).
pub fn figure7_summary(iterations: usize, trials: u64) -> String {
    let mut totals: BTreeMap<&str, f64> = BTreeMap::new();
    for trial in 0..trials {
        let dv = executor::run(
            dejavuzz::BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            1,
            iterations,
            1000 + trial,
        )
        .stats
        .coverage() as f64;
        let minus = executor::run(
            dejavuzz::BackendSpec::behavioural(boom_small()),
            FuzzerOptions::dejavuzz_minus(),
            1,
            iterations,
            1000 + trial,
        )
        .stats
        .coverage() as f64;
        let mut sd = SpecDoctor::new(boom_small(), SpecDoctorOptions::default(), 2000 + trial);
        let mut cov = CoverageMatrix::new();
        for _ in 0..iterations {
            let case = sd.generate_case();
            let it = sd.run_case(&case);
            if it.hash_diff {
                cov.observe_log(&it.run.taint_log);
            }
        }
        *totals.entry("DejaVuzz").or_default() += dv;
        *totals.entry("DejaVuzz-").or_default() += minus;
        *totals.entry("SpecDoctor").or_default() += cov.points() as f64;
    }
    let mean = |k: &str| totals[k] / trials as f64;
    format!(
        "Figure 7 summary ({iterations} iterations x {trials} trials, BOOM)\n\n\
         DejaVuzz   final coverage: {:.1}\n\
         DejaVuzz-  final coverage: {:.1}\n\
         SpecDoctor final coverage: {:.1}\n\n\
         DejaVuzz / SpecDoctor = {:.2}x (paper: 4.7x)\n\
         DejaVuzz / DejaVuzz-  = {:.2}x (paper: 1.22x)\n",
        mean("DejaVuzz"),
        mean("DejaVuzz-"),
        mean("SpecDoctor"),
        mean("DejaVuzz") / mean("SpecDoctor").max(1.0),
        mean("DejaVuzz") / mean("DejaVuzz-").max(1.0),
    )
}

/// §6.3 liveness evaluation: collect SpecDoctor phase-3 candidates (hash
/// differences), then classify them with the liveness annotations.
pub fn liveness_eval(candidates: usize, max_iterations: usize) -> String {
    let mut sd = SpecDoctor::new(boom_small(), SpecDoctorOptions::default(), 0x11FE);
    let mut cov = CoverageMatrix::new();
    let mut total = 0;
    let mut real = 0;
    let mut residue_only = 0;
    let mut iterations = 0;
    while total < candidates && iterations < max_iterations {
        iterations += 1;
        let it = sd.iteration(&mut cov);
        if !it.hash_diff {
            continue;
        }
        total += 1;
        // A candidate is a *real* leakage when the secret was positionally
        // encoded into a live timing component: a secret-dependent address
        // fully taints the touched line (the Table 1 memory rules), whereas
        // a secret merely resident in the cache carries only its own data
        // mask — "most false positives are caused by secrets that fail to
        // be encoded into the microarchitecture but still remain in the
        // data cache" (§6.3).
        const TIMING: [&str; 7] = ["dcache", "icache", "tlb", "l2tlb", "btb", "ras", "loop"];
        let encoded = it
            .run
            .sinks
            .iter()
            .any(|s| s.exploitable() && s.taint == u64::MAX && TIMING.contains(&s.module));
        if encoded {
            real += 1;
        } else {
            residue_only += 1;
        }
    }
    format!(
        "Liveness evaluation (SpecDoctor phase-3 candidates, BOOM)\n\n\
         candidates collected:            {total} (paper: 75)\n\
         real leakages (live taint):      {real} (paper: 17)\n\
         false positives (residue only):  {residue_only} (paper: 58)\n\n\
         Without liveness annotations every candidate would be reported:\n\
         misclassified-without-liveness:  {residue_only}\n",
    )
}

/// Table 5: run campaigns on both cores and print the discovered-bug
/// summary plus the B1–B5 direct detections.
pub fn table5(iterations: usize) -> String {
    let mut out = String::from("Table 5: Summary of discovered transient execution bugs\n\n");
    for cfg in [boom_small(), xiangshan_minimal()] {
        let start = Instant::now();
        let stats = executor::run(
            dejavuzz::BackendSpec::behavioural(cfg),
            FuzzerOptions::default(),
            2,
            iterations,
            0x7777,
        )
        .stats;
        out.push_str(&format!(
            "== {} ({} iterations, {:.1}s, first bug at iteration {:?}) ==\n",
            cfg.name,
            iterations,
            start.elapsed().as_secs_f64(),
            stats.first_bug_iteration
        ));
        let mut rows: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        for b in &stats.bugs {
            rows.entry((b.attack.name(), b.window_type.table5_class()))
                .or_default()
                .push(b.channel.component());
        }
        for ((attack, class), mut comps) in rows {
            comps.sort();
            comps.dedup();
            out.push_str(&format!(
                "{attack:<10} {class:<12} -> {}\n",
                comps.join(", ")
            ));
        }
        out.push('\n');
    }
    // The five named paper bugs, detected deterministically.
    out.push_str("Named paper bugs (direct detection):\n");
    let b1 = attacks::meltdown_sampling();
    let mut mem = b1.build_mem(&dejavuzz_specdoctor::SECRET);
    let r = Core::new(xiangshan_minimal(), IftMode::DiffIft).run(&mut mem, 10_000);
    out.push_str(&format!(
        "B1 MeltDown-Sampling (XiangShan): {}\n",
        if r.sinks
            .iter()
            .any(|s| s.module == "dcache" && s.exploitable())
        {
            "DETECTED"
        } else {
            "missed"
        }
    ));
    let b2 = attacks::phantom_rsb();
    let mut mem = b2.build_mem(&dejavuzz_specdoctor::SECRET);
    let r = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 10_000);
    out.push_str(&format!(
        "B2 Phantom-RSB (BOOM):            {}\n",
        if r.sinks.iter().any(|s| s.module == "ras" && s.exploitable()) {
            "DETECTED"
        } else {
            "missed"
        }
    ));
    let b3 = attacks::find_phantom_btb(&boom_small(), 48);
    out.push_str(&format!(
        "B3 Phantom-BTB (BOOM):            {}\n",
        if let Some((nops, _)) = b3 {
            format!("DETECTED (race at {nops} pads)")
        } else {
            "missed".into()
        }
    ));
    let b4 = attacks::spectre_refetch();
    let mut mem = b4.build_mem(&dejavuzz_specdoctor::SECRET);
    let r = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 10_000);
    out.push_str(&format!(
        "B4 Spectre-Refetch (BOOM):        {}\n",
        if r.timing_diverged() {
            "DETECTED"
        } else {
            "missed"
        }
    ));
    let b5 = attacks::spectre_reload();
    let mut mem = b5.build_mem(&dejavuzz_specdoctor::SECRET);
    let r = Core::new(xiangshan_minimal(), IftMode::DiffIft).run(&mut mem, 10_000);
    out.push_str(&format!(
        "B5 Spectre-Reload (XiangShan):    {}\n",
        if r.timing_diverged() {
            "DETECTED"
        } else {
            "missed"
        }
    ));
    out
}

/// End-to-end executor throughput: runs `iterations` pipeline iterations
/// on a `workers`-sized shared-corpus pool and returns `(wall-clock,
/// seeds/sec)`. Backs the `throughput` Criterion bench and the scaling
/// rows of EXPERIMENTS.md.
pub fn throughput(workers: usize, iterations: usize, seed: u64) -> (Duration, f64) {
    throughput_with(
        &dejavuzz::BackendSpec::behavioural(boom_small()),
        workers,
        iterations,
        seed,
    )
}

/// [`throughput`], generalised over the simulation backend — the
/// behavioural-vs-netlist comparison rows of EXPERIMENTS.md come from
/// here (and the `backends` binary).
pub fn throughput_with(
    backend: &dejavuzz::BackendSpec,
    workers: usize,
    iterations: usize,
    seed: u64,
) -> (Duration, f64) {
    let start = Instant::now();
    let report = executor::run(
        backend.clone(),
        FuzzerOptions::default(),
        workers,
        iterations,
        seed,
    );
    let elapsed = start.elapsed();
    assert_eq!(report.stats.iterations, iterations);
    (elapsed, iterations as f64 / elapsed.as_secs_f64().max(1e-9))
}

/// One scheduler-throughput measurement: wall-clock plus the modelled
/// dedicated-core makespan (see
/// [`dejavuzz::ExecutorReport::modelled_makespan_nanos`] — on an
/// oversubscribed CI host the wall clock cannot show barrier idling, so
/// the model is the machine-independent comparison number).
#[derive(Clone, Debug)]
pub struct ThroughputSample {
    /// Backend label ([`dejavuzz::BackendSpec::label`]).
    pub backend: String,
    /// Scheduler label (`round` / `steal` / `ext:<id>`).
    pub scheduler: String,
    /// Worker count.
    pub workers: usize,
    /// Total iterations executed.
    pub iterations: usize,
    /// Wall-clock of the run.
    pub wall: Duration,
    /// Iterations per wall-clock second.
    pub seeds_per_sec: f64,
    /// Modelled makespan on `workers` dedicated cores.
    pub modelled_makespan: Duration,
    /// Iterations per modelled-makespan second.
    pub modelled_seeds_per_sec: f64,
    /// Sum of per-iteration busy time across workers.
    pub busy: Duration,
    /// Cross-round pipeline feedback lag (0 = barriered rounds).
    pub pipeline_lag: usize,
    /// Modelled worker-time the pool spent idle at round barriers
    /// (`workers x makespan - busy`) — the number pipelining attacks.
    pub barrier_idle_nanos: u64,
    /// Time spent building per-slot coverage views (the overlay-vs-clone
    /// comparison number: overlays keep this flat as coverage grows).
    pub view_setup_nanos: u64,
}

/// Runs one campaign under the given backend × scheduler and measures it.
pub fn throughput_sample(
    backend: &dejavuzz::BackendSpec,
    scheduler: dejavuzz::SchedulerSpec,
    workers: usize,
    iterations: usize,
    seed: u64,
) -> ThroughputSample {
    throughput_sample_lagged(backend, scheduler, workers, iterations, seed, 0)
}

/// [`throughput_sample`] with a cross-round pipeline feedback lag
/// (requires a queue-planning scheduler when `lag > 0`).
pub fn throughput_sample_lagged(
    backend: &dejavuzz::BackendSpec,
    scheduler: dejavuzz::SchedulerSpec,
    workers: usize,
    iterations: usize,
    seed: u64,
    lag: usize,
) -> ThroughputSample {
    let start = Instant::now();
    let report = dejavuzz::CampaignBuilder::new()
        .backend(backend.clone())
        .workers(workers)
        .seed(seed)
        .scheduler(scheduler.clone())
        .pipeline_lag(lag)
        .build()
        .expect("a valid bench configuration")
        .run(iterations);
    let wall = start.elapsed();
    assert_eq!(report.stats.iterations, iterations);
    let modelled = Duration::from_nanos(report.modelled_makespan_nanos);
    ThroughputSample {
        backend: backend.label(),
        scheduler: scheduler.label(),
        workers,
        iterations,
        wall,
        seeds_per_sec: iterations as f64 / wall.as_secs_f64().max(1e-9),
        modelled_makespan: modelled,
        modelled_seeds_per_sec: iterations as f64 / modelled.as_secs_f64().max(1e-9),
        busy: Duration::from_nanos(report.busy_nanos),
        pipeline_lag: lag,
        barrier_idle_nanos: report.barrier_idle_nanos,
        view_setup_nanos: report.view_setup_nanos,
    }
}

/// Renders samples as the machine-readable `BENCH_throughput.json`
/// document CI uploads, so the perf trajectory is diffable across PRs.
/// Hand-rolled JSON — the build environment has no serde.
pub fn throughput_json(samples: &[ThroughputSample]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": {}, \"scheduler\": {}, \"workers\": {}, \
             \"iterations\": {}, \"pipeline_lag\": {}, \"wall_seconds\": {:.6}, \
             \"seeds_per_sec\": {:.2}, \
             \"modelled_makespan_seconds\": {:.6}, \"modelled_seeds_per_sec\": {:.2}, \
             \"busy_seconds\": {:.6}, \"barrier_idle_nanos\": {}, \
             \"view_setup_nanos\": {}}}{}\n",
            json_str(&s.backend),
            json_str(&s.scheduler),
            s.workers,
            s.iterations,
            s.pipeline_lag,
            s.wall.as_secs_f64(),
            s.seeds_per_sec,
            s.modelled_makespan.as_secs_f64(),
            s.modelled_seeds_per_sec,
            s.busy.as_secs_f64(),
            s.barrier_idle_nanos,
            s.view_setup_nanos,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One fleet run: per-shard final report plus the owned event stream.
fn run_fleet(
    shards: usize,
    gossiping: bool,
    gossip_every: usize,
    iterations: usize,
    seed_base: u64,
) -> Vec<(
    dejavuzz::ExecutorReport,
    Vec<dejavuzz_fleet::transport::CampaignEvent>,
)> {
    use dejavuzz::observer::CampaignObserver;
    use dejavuzz_fleet::transport::ChannelObserver;

    let mut links: Vec<Option<dejavuzz::SharedGossipLink>> = if gossiping {
        dejavuzz_fleet::gossip::mesh(shards)
            .into_iter()
            .map(Some)
            .collect()
    } else {
        (0..shards).map(|_| None).collect()
    };
    let mut handles = Vec::new();
    for (shard, slot) in links.iter_mut().enumerate() {
        let link = slot.take();
        let mut builder = dejavuzz::builder::CampaignBuilder::new()
            .backend(dejavuzz::BackendSpec::behavioural(boom_small()))
            .seed(seed_base + shard as u64)
            .shard_id(shard as u32);
        if let Some(link) = link {
            builder = builder.gossip(link).gossip_every(gossip_every);
        }
        handles.push(std::thread::spawn(move || {
            let (observer, events) = ChannelObserver::channel(4096);
            let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(observer)];
            let (report, _) = builder
                .build()
                .expect("valid fleet configuration")
                .run_observed(iterations, &mut observers);
            drop(observers);
            (report, events.iter().collect())
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Fleet & gossip: iterations-to-coverage for isolated vs gossiping
/// shard fleets. For each fleet size the target is that mode's final
/// fleet-wide union; each shard's "iterations to X%" is the earliest
/// committed-iteration count at which its running coverage (commits
/// *plus* boundary imports) reached X% of the target. Isolated shards
/// typically never reach the high percentiles — their own coverage is a
/// strict subset of the union — which is exactly the gap gossip closes.
pub fn fleet_gossip(iterations: usize, gossip_every: usize, trials: u64) -> String {
    use dejavuzz_fleet::transport::CampaignEvent;

    const THRESHOLDS: [usize; 3] = [50, 75, 90];
    let mut out = format!(
        "Fleet & gossip: iterations to reach X% of the fleet union\n\
         ({iterations} iters/shard, gossip every {gossip_every} round(s), \
         {trials} trial(s), BOOM)\n\n\
         {:<7} {:<9} {:>6} {:>9} {:>9} {:>9}\n",
        "shards", "mode", "union", "50%", "75%", "90%"
    );
    for shards in [2usize, 4] {
        for gossiping in [false, true] {
            let mut union_total = 0usize;
            // reached[t] collects, over every (shard, trial), the
            // iterations that shard needed to reach THRESHOLDS[t].
            let mut reached: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            let mut samples = 0usize;
            for trial in 0..trials {
                let fleet = run_fleet(
                    shards,
                    gossiping,
                    gossip_every,
                    iterations,
                    9000 + 100 * trial,
                );
                let union = {
                    let mut u = CoverageMatrix::new();
                    for (report, _) in &fleet {
                        u.merge(&report.coverage);
                    }
                    u.points()
                };
                union_total += union;
                samples += shards;
                for (_, events) in &fleet {
                    let mut committed = 0usize;
                    let mut hit = [None::<usize>; 3];
                    for ev in events {
                        let total = match ev {
                            CampaignEvent::SlotCommitted(e) => {
                                committed += 1;
                                e.total_points
                            }
                            CampaignEvent::PeerDeltaImported(e) => e.total_points,
                            _ => continue,
                        };
                        for (t, pct) in THRESHOLDS.iter().enumerate() {
                            if hit[t].is_none() && total * 100 >= union * pct {
                                hit[t] = Some(committed);
                            }
                        }
                    }
                    for (t, h) in hit.iter().enumerate() {
                        if let Some(iters) = h {
                            reached[t].push(*iters);
                        }
                    }
                }
            }
            let cell = |t: usize| -> String {
                let r = &reached[t];
                if r.is_empty() {
                    "-".to_string()
                } else {
                    let mean = r.iter().sum::<usize>() as f64 / r.len() as f64;
                    if r.len() == samples {
                        format!("{mean:.0}")
                    } else {
                        format!("{mean:.0} ({}/{samples})", r.len())
                    }
                }
            };
            out.push_str(&format!(
                "{:<7} {:<9} {:>6.0} {:>9} {:>9} {:>9}\n",
                shards,
                if gossiping { "gossip" } else { "isolated" },
                union_total as f64 / trials as f64,
                cell(0),
                cell(1),
                cell(2),
            ));
        }
    }
    out
}

/// Parses a `--backend <value>` argument into a [`dejavuzz::BackendSpec`]
/// (behavioural SmallBOOM when absent), exiting with a usage message on
/// an unknown value — shared by the bench binaries.
pub fn backend_arg(args: &[String]) -> dejavuzz::BackendSpec {
    let Some(flag) = args.iter().position(|a| a == "--backend") else {
        return dejavuzz::BackendSpec::default();
    };
    let value = args.get(flag + 1).map(String::as_str).unwrap_or("");
    match dejavuzz::BackendSpec::parse(value, boom_small()) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("--backend: {e}");
            std::process::exit(2);
        }
    }
}

/// Parses a `--flag value` style argument with a default.
pub fn arg_or(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_contains_paper_rows() {
        let t = table2();
        assert!(t.contains("SmallBOOM"));
        assert!(t.contains("MinimalConfig"));
        assert!(t.contains("171K") && t.contains("893K"));
        assert!(t.contains("212") && t.contains("592"));
    }

    #[test]
    fn figure6_summary_shows_explosion_ordering() {
        let s = figure6_summary();
        assert!(s.contains("Spectre-V1") && s.contains("CellIFT"));
        // Parse the Spectre-V1 row: diffIFT < CellIFT.
        let row = s.lines().find(|l| l.starts_with("Spectre-V1")).unwrap();
        let nums: Vec<u64> = row
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        assert_eq!(nums.len(), 3, "{row}");
        assert!(
            nums[2] > 10 * nums[0],
            "CellIFT {} vs diffIFT {}",
            nums[2],
            nums[0]
        );
        assert!(nums[1] <= nums[0], "FN variant never exceeds diffIFT");
    }

    #[test]
    fn table4_smoke_runs_scaled_down() {
        let t = table4(Duration::from_secs(30), 64);
        assert!(t.contains("Compile"));
        assert!(t.contains("Simulation"));
        assert!(t.contains("Spectre-RSB"));
    }

    #[test]
    fn throughput_measures_a_real_run() {
        let (elapsed, seeds_per_sec) = throughput(2, 8, 5);
        assert!(elapsed.as_nanos() > 0);
        assert!(seeds_per_sec > 0.0);
    }

    #[test]
    fn throughput_runs_on_the_netlist_backend() {
        use dejavuzz_rtl::examples::SMALL_SCALE;
        let spec = dejavuzz::BackendSpec::netlist(SMALL_SCALE);
        let (elapsed, seeds_per_sec) = throughput_with(&spec, 1, 6, 5);
        assert!(elapsed.as_nanos() > 0);
        assert!(seeds_per_sec > 0.0);
    }

    #[test]
    fn backend_arg_defaults_and_parses() {
        let none: Vec<String> = vec!["bin".into()];
        assert_eq!(backend_arg(&none), dejavuzz::BackendSpec::default());
        let some: Vec<String> = ["bin", "--backend", "netlist:small"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            backend_arg(&some),
            dejavuzz::BackendSpec::netlist(dejavuzz_rtl::examples::SMALL_SCALE)
        );
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["bin", "--windows", "7", "--broken"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_or(&args, "--windows", 3), 7);
        assert_eq!(arg_or(&args, "--missing", 3), 3);
        assert_eq!(arg_or(&args, "--broken", 3), 3, "non-numeric falls back");
    }
}
