//! Regenerates Figure 6 (taint sum vs cycle for the 5 attacks under
//! diffIFT / diffIFT_FN / CellIFT). `--summary` prints peak-taint rows
//! instead of the full CSV.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--summary") {
        print!("{}", dejavuzz_bench::figure6_summary());
    } else {
        print!("{}", dejavuzz_bench::figure6());
    }
}
