//! Regenerates the EXPERIMENTS.md "Fleet & gossip" table: iterations to
//! reach X% of the fleet union for 2- and 4-shard fleets, isolated vs
//! gossiping. `--iters N --gossip-every G --trials T` scale the run
//! (defaults 48 x 1 x 2).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = dejavuzz_bench::arg_or(&args, "--iters", 48);
    let every = dejavuzz_bench::arg_or(&args, "--gossip-every", 1);
    let trials = dejavuzz_bench::arg_or(&args, "--trials", 2) as u64;
    print!("{}", dejavuzz_bench::fleet_gossip(iters, every, trials));
}
