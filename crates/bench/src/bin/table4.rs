//! Regenerates Table 4 (diffIFT compile + simulation overhead).
//! `--timeout-ms N` bounds the CellIFT pass on the XiangShan-scale netlist
//! (the paper's cell reads "Timeout after 8h"); `--scale N` divides the
//! synthetic netlist sizes for quick runs (default 4; 1 = full scale).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let timeout = dejavuzz_bench::arg_or(&args, "--timeout-ms", 60_000);
    let scale = dejavuzz_bench::arg_or(&args, "--scale", 4);
    print!(
        "{}",
        dejavuzz_bench::table4(
            std::time::Duration::from_millis(timeout as u64),
            scale.max(1)
        )
    );
}
