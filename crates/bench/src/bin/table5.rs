//! Regenerates Table 5 (discovered bugs per core) plus the direct B1–B5
//! detections. `--iters N` sets campaign iterations per core (default 60).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = dejavuzz_bench::arg_or(&args, "--iters", 60);
    print!("{}", dejavuzz_bench::table5(iters));
}
