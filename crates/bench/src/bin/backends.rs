//! Behavioural-vs-netlist backend throughput: the measured rows of the
//! EXPERIMENTS.md "Backends" section.
//!
//! ```sh
//! cargo run --release -p dejavuzz-bench --bin backends -- --iters 40 --workers 2
//! cargo run --release -p dejavuzz-bench --bin backends -- --backend netlist:boom
//! ```
//!
//! Without `--backend` it sweeps the standard comparison set
//! (behavioural BOOM, `netlist:small`, `netlist:boom`); with it, only the
//! requested backend runs.

use dejavuzz::BackendSpec;
use dejavuzz_bench::{arg_or, backend_arg, throughput_with};
use dejavuzz_rtl::examples::{BOOM_SCALE, SMALL_SCALE};
use dejavuzz_uarch::boom_small;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = arg_or(&args, "--iters", 24);
    let workers = arg_or(&args, "--workers", 1);
    let specs: Vec<BackendSpec> = if args.iter().any(|a| a == "--backend") {
        vec![backend_arg(&args)]
    } else {
        vec![
            BackendSpec::behavioural(boom_small()),
            BackendSpec::netlist(SMALL_SCALE),
            BackendSpec::netlist(BOOM_SCALE),
        ]
    };
    println!("Backend throughput ({iters} iterations, {workers} worker(s), seed 7)\n");
    println!("{:<24} {:>12} {:>14}", "backend", "wall-clock", "seeds/sec");
    for spec in specs {
        let (elapsed, rate) = throughput_with(&spec, workers, iters, 7);
        println!(
            "{:<24} {:>10.1}ms {:>14.1}",
            spec.label(),
            elapsed.as_secs_f64() * 1e3,
            rate
        );
    }
}
