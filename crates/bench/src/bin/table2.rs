//! Regenerates Table 2 (core configuration summary).
fn main() {
    print!("{}", dejavuzz_bench::table2());
}
