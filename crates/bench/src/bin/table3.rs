//! Regenerates Table 3 (training overhead per transient-window type).
//! `--windows N` sets the seeds attempted per type (default 40; the paper
//! collected 2,500 windows per configuration).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let windows = dejavuzz_bench::arg_or(&args, "--windows", 40);
    let sd_iters = dejavuzz_bench::arg_or(&args, "--sd-iters", 200);
    print!("{}", dejavuzz_bench::table3(windows, sd_iters));
}
