//! Regenerates Figure 7 (taint coverage over iterations for DejaVuzz,
//! DejaVuzz- and SpecDoctor). `--iters N --trials T` scale the run
//! (defaults 300 x 2; the paper used 20,000 x 5); `--summary` prints the
//! final-coverage factors only.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = dejavuzz_bench::arg_or(&args, "--iters", 300);
    let trials = dejavuzz_bench::arg_or(&args, "--trials", 2) as u64;
    if args.iter().any(|a| a == "--summary") {
        print!("{}", dejavuzz_bench::figure7_summary(iters, trials));
    } else {
        print!("{}", dejavuzz_bench::figure7(iters, trials));
    }
}
