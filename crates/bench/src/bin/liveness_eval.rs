//! Regenerates the §6.3 liveness evaluation: SpecDoctor phase-3 candidates
//! classified with taint-liveness annotations. `--candidates N` (default
//! 75, as in the paper).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let candidates = dejavuzz_bench::arg_or(&args, "--candidates", 75);
    print!(
        "{}",
        dejavuzz_bench::liveness_eval(candidates, candidates * 40)
    );
}
