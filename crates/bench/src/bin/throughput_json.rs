//! Emits `BENCH_throughput.json`: seeds/s per backend × scheduler, wall
//! clock and modelled dedicated-core makespan, for the CI artifact that
//! tracks the perf trajectory across PRs.
//!
//! ```sh
//! cargo run --release -p dejavuzz-bench --bin throughput_json -- \
//!     --iters 48 --workers 4 --out BENCH_throughput.json
//! ```
//!
//! The modelled makespan is the comparison number for schedulers: it
//! replays each round's measured per-slot costs over `workers` dedicated
//! cores (fixed chunks for `round`, greedy claiming for `steal`), so the
//! work-stealing win on skewed seed costs shows even on a one-core CI
//! runner where wall clock is work-bound either way.

use dejavuzz::SchedulerSpec;
use dejavuzz_bench::{arg_or, throughput_json, throughput_sample_lagged};
use dejavuzz_rtl::examples::SMALL_SCALE;
use dejavuzz_uarch::boom_small;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = arg_or(&args, "--iters", 48);
    let workers = arg_or(&args, "--workers", 4);
    let seed = arg_or(&args, "--seed", 7) as u64;
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let backends = [
        dejavuzz::BackendSpec::behavioural(boom_small()),
        dejavuzz::BackendSpec::netlist(SMALL_SCALE),
    ];
    // Barriered round-robin and steal, plus the cross-round steal
    // pipeline (every lag >= 1 computes identical results, so one lag
    // row captures the pipelined makespan/idle numbers).
    let configs = [
        (SchedulerSpec::RoundRobin, 0usize),
        (SchedulerSpec::WorkStealing, 0),
        (SchedulerSpec::WorkStealing, 1),
    ];

    // Process-pool rows (steal scheduling — pool scaling needs claiming
    // threads): pool sizes 1/2/4 against the same inner backend, so the
    // artifact tracks protocol overhead (M=1 vs in-process) and scaling
    // (M=2, M=4). Skipped with a note when the worker binary is not
    // built alongside (`cargo build --release` first).
    let pool_backends: Vec<dejavuzz::BackendSpec> =
        if dejavuzz::procbackend::worker_binary().is_some() {
            [1usize, 2, 4]
                .iter()
                .map(|m| {
                    dejavuzz::BackendSpec::parse(&format!("proc:netlist:small:{m}"), boom_small())
                        .expect("a valid proc spec")
                })
                .collect()
        } else {
            eprintln!(
                "throughput_json: dejavuzz-simd not found next to this binary; \
                 skipping the process-pool rows"
            );
            Vec::new()
        };

    let mut samples = Vec::new();
    for backend in backends.iter().chain(&pool_backends) {
        for (scheduler, lag) in &configs {
            let s =
                throughput_sample_lagged(backend, scheduler.clone(), workers, iters, seed, *lag);
            eprintln!(
                "{:<24} {:<6} lag {} {} workers: {:>8.1} seeds/s wall, {:>8.1} seeds/s modelled \
                 ({:.3}s busy over {:.3}s modelled makespan, {:.3}s barrier idle)",
                s.backend,
                s.scheduler,
                s.pipeline_lag,
                s.workers,
                s.seeds_per_sec,
                s.modelled_seeds_per_sec,
                s.busy.as_secs_f64(),
                s.modelled_makespan.as_secs_f64(),
                s.barrier_idle_nanos as f64 / 1e9,
            );
            samples.push(s);
        }
    }

    let json = throughput_json(&samples);
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("throughput_json: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("throughput_json: wrote {out}");
}
