//! A reimplementation of **SpecDoctor** (Hur et al., CCS 2022), the
//! state-of-the-art baseline the paper compares against (§6.2, §6.3).
//!
//! SpecDoctor's strategy, reproduced here:
//!
//! * **Linear address space** — training and transient code share one
//!   instruction stream; no swapMem isolation. Training instructions are
//!   random, so they frequently occupy addresses the window needs
//!   (Figure 3's W1–W3 conflicts), and complex windows (Spectre-V2/RSB
//!   style) are out of reach: "SpecDoctor discards all transient windows
//!   containing backward jumps."
//! * **Multi-phase random generation** — transient-trigger (goal: a RoB
//!   rollback), secret-transmit (goal: microarchitectural differences) and
//!   secret-receive (goal: execution-cycle differences), each phase
//!   appending random instructions to the previous one.
//! * **Hash oracle** — "observes execution behavior by hashing the final
//!   state of the timing components after transient execution and
//!   evaluates leakage by comparing the consistency of the hash values
//!   between different variants." No information-flow tracking, hence no
//!   coverage feedback and no way to tell exploitable encodings from
//!   residue (the 75-cases/17-real study of §6.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejavuzz_ift::{CoverageMatrix, IftMode};
use dejavuzz_isa::asm::ProgramBuilder;
use dejavuzz_isa::instr::{AluOp, BranchOp, Instr, LoadOp, Reg, StoreOp};
use dejavuzz_swapmem::{PacketKind, SecretPolicy, SwapMem, SwapPacket, DEFAULT_LAYOUT};
use dejavuzz_uarch::core::{Core, RunResult};
use dejavuzz_uarch::CoreConfig;

/// Tunables of the baseline.
#[derive(Clone, Copy, Debug)]
pub struct SpecDoctorOptions {
    /// Random instructions emitted per generation phase (the paper
    /// measures ~125 training instructions per triggered window).
    pub instrs_per_phase: usize,
    /// Simulation cycle budget.
    pub max_cycles: u64,
}

impl Default for SpecDoctorOptions {
    fn default() -> Self {
        SpecDoctorOptions {
            instrs_per_phase: 42,
            max_cycles: 20_000,
        }
    }
}

/// One generated (single-stream) test case.
#[derive(Clone, Debug)]
pub struct SpecDoctorCase {
    /// The linear program (training + trigger + transmit + receive).
    pub packet: SwapPacket,
    /// Instructions generated before the trigger attempt — SpecDoctor's
    /// training overhead.
    pub training_instrs: usize,
}

/// Outcome of one fuzzing iteration.
#[derive(Clone, Debug)]
pub struct SdIteration {
    /// The simulation result.
    pub run: RunResult,
    /// Cause of the transient window, if one triggered.
    pub window_cause: Option<&'static str>,
    /// Training instructions spent.
    pub training_instrs: usize,
    /// The hash oracle fired (microarchitectural difference between
    /// variants).
    pub hash_diff: bool,
    /// The cycle oracle fired (execution-time difference).
    pub cycle_diff: bool,
}

/// The SpecDoctor fuzzer.
#[derive(Clone, Debug)]
pub struct SpecDoctor {
    cfg: CoreConfig,
    opts: SpecDoctorOptions,
    rng: StdRng,
}

impl SpecDoctor {
    /// A new baseline fuzzer.
    pub fn new(cfg: CoreConfig, opts: SpecDoctorOptions, rng_seed: u64) -> Self {
        SpecDoctor {
            cfg,
            opts,
            rng: StdRng::seed_from_u64(rng_seed),
        }
    }

    /// Generates one linear test case: random training/trigger section,
    /// then the secret-transmit and secret-receive sections.
    pub fn generate_case(&mut self) -> SpecDoctorCase {
        let l = DEFAULT_LAYOUT;
        let mut b = ProgramBuilder::new(l.swappable);
        b.label_at("secret", l.secret);
        b.label_at("data", 0x8000);
        b.la(Reg::T0, "secret");
        b.la(Reg::T2, "data");
        // Phase: transient-trigger — random instructions until (hopefully)
        // a RoB rollback. Forward branches only; backward jumps discarded.
        let training_instrs = self.opts.instrs_per_phase;
        for _ in 0..training_instrs {
            let i = self.random_instr();
            b.push(i);
        }
        // Phase: secret-transmit — random instructions around a secret
        // access, hoping differences reach the microarchitecture.
        b.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        });
        for _ in 0..self.opts.instrs_per_phase / 2 {
            let i = self.random_transmit_instr();
            b.push(i);
        }
        // Phase: secret-receive — random timing-measurable accesses.
        for _ in 0..self.opts.instrs_per_phase / 2 {
            let off = self.rng.gen_range(0..64) * 64;
            b.push(Instr::ld(Reg::T3, Reg::T2, off));
        }
        b.push(Instr::Ecall);
        SpecDoctorCase {
            packet: SwapPacket::new("specdoctor_linear", PacketKind::Transient, b.assemble()),
            training_instrs,
        }
    }

    fn random_instr(&mut self) -> Instr {
        let rd = Reg::from_index(self.rng.gen_range(5..18));
        let rs1 = Reg::from_index(self.rng.gen_range(0..18));
        let rs2 = Reg::from_index(self.rng.gen_range(0..18));
        match self.rng.gen_range(0..10) {
            0..=2 => Instr::Op {
                op: [AluOp::Add, AluOp::Xor, AluOp::Mul, AluOp::And][self.rng.gen_range(0..4)],
                rd,
                rs1,
                rs2,
            },
            3 | 4 => Instr::addi(rd, rs1, self.rng.gen_range(-512..512)),
            // Forward branch (backward jumps are discarded).
            5 | 6 => Instr::Branch {
                op: BranchOp::ALL[self.rng.gen_range(0..6)],
                rs1,
                rs2,
                offset: 4 * self.rng.gen_range(1..6),
            },
            // Loads/stores in the data region.
            7 => Instr::Load {
                op: LoadOp::Ld,
                rd,
                rs1: Reg::T2,
                offset: self.rng.gen_range(0..256) * 8,
            },
            8 => Instr::Store {
                op: StoreOp::Sd,
                rs2: rd,
                rs1: Reg::T2,
                offset: self.rng.gen_range(0..256) * 8,
            },
            // Occasionally a load through a computed register: usually a
            // wild address -> access-fault windows.
            _ => Instr::Load {
                op: LoadOp::Ld,
                rd,
                rs1,
                offset: 0,
            },
        }
    }

    fn random_transmit_instr(&mut self) -> Instr {
        // Blind mutation: without taint feedback, most transmit
        // instructions shuffle unrelated registers; only occasionally does
        // the random walk assemble a working secret-indexed access chain
        // (hence the paper's 17-real-out-of-75 ratio).
        let rd = Reg::from_index(self.rng.gen_range(5..18));
        let rs1 = Reg::from_index(self.rng.gen_range(5..18));
        match self.rng.gen_range(0..12) {
            0 => Instr::OpImm {
                op: AluOp::Sll,
                rd: Reg::S1,
                rs1: Reg::S0,
                imm: 6,
            },
            1 => Instr::Op {
                op: AluOp::Add,
                rd: Reg::T1,
                rs1: Reg::T2,
                rs2: Reg::S1,
            },
            2 => Instr::ld(Reg::T3, Reg::T1, 0),
            3 | 4 => Instr::Op {
                op: AluOp::Add,
                rd,
                rs1: Reg::S0,
                rs2: rs1,
            },
            5 | 6 => Instr::Op {
                op: AluOp::Xor,
                rd,
                rs1,
                rs2: Reg::T2,
            },
            7 => Instr::ld(Reg::T4, Reg::T2, 8 * self.rng.gen_range(0..32)),
            _ => Instr::addi(rd, rs1, self.rng.gen_range(-64..64)),
        }
    }

    /// Runs one case on the differential testbench (the two-variant
    /// memory), evaluating SpecDoctor's hash and cycle oracles. The run
    /// carries diffIFT instrumentation only so the *replay* can be
    /// measured with the paper's taint coverage (Figure 7's controlled
    /// comparison); SpecDoctor itself never sees the taints.
    pub fn run_case(&self, case: &SpecDoctorCase) -> SdIteration {
        let mut mem = SwapMem::new(DEFAULT_LAYOUT);
        mem.plant_secret(&SECRET);
        mem.set_secret_policy(SecretPolicy::AlwaysReadable);
        mem.write_bytes(0xE000, &[0u8; 8]);
        mem.set_schedule(vec![case.packet.clone()]);
        let run = Core::new(self.cfg, IftMode::DiffIft).run(&mut mem, self.opts.max_cycles);
        let window_cause = run.trace.window_in_packet(0).map(|w| w.cause);
        let hash_diff = run.uarch_hash.0 != run.uarch_hash.1;
        let cycle_diff = run.total_cycles.0 != run.total_cycles.1;
        SdIteration {
            run,
            window_cause,
            training_instrs: case.training_instrs,
            hash_diff,
            cycle_diff,
        }
    }

    /// One fuzzing iteration: generate, run, and (for the Figure 7 replay)
    /// fold the taint log into `coverage`.
    pub fn iteration(&mut self, coverage: &mut CoverageMatrix) -> SdIteration {
        let case = self.generate_case();
        let it = self.run_case(&case);
        coverage.observe_log(&it.run.taint_log);
        it
    }
}

/// The secret pair used by baseline runs.
pub const SECRET: [u8; 8] = [0x5A, 0xC3, 0x01, 0xFE, 0x77, 0x88, 0x10, 0xEF];

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz_uarch::boom_small;

    #[test]
    fn generates_linear_single_packet_cases() {
        let mut sd = SpecDoctor::new(boom_small(), SpecDoctorOptions::default(), 1);
        let case = sd.generate_case();
        assert!(case.packet.program.words.len() > case.training_instrs);
        assert_eq!(case.training_instrs, 42);
    }

    #[test]
    fn triggers_some_windows_but_not_return_mispredicts() {
        let mut sd = SpecDoctor::new(boom_small(), SpecDoctorOptions::default(), 7);
        let mut cov = CoverageMatrix::new();
        let mut causes = std::collections::BTreeSet::new();
        for _ in 0..40 {
            let it = sd.iteration(&mut cov);
            if let Some(c) = it.window_cause {
                causes.insert(c);
            }
        }
        assert!(!causes.is_empty(), "random generation opens some windows");
        assert!(
            !causes.contains("return-mispredict"),
            "linear layouts cannot stage RSB attacks (Table 3's slash cells): {causes:?}"
        );
        assert!(
            !causes.contains("jump-mispredict"),
            "random jalr targets never match trained BTB entries here: {causes:?}"
        );
    }

    #[test]
    fn hash_oracle_fires_on_secret_dependent_footprints() {
        let mut sd = SpecDoctor::new(boom_small(), SpecDoctorOptions::default(), 3);
        let mut cov = CoverageMatrix::new();
        let mut any_hash_diff = false;
        for _ in 0..30 {
            let it = sd.iteration(&mut cov);
            any_hash_diff |= it.hash_diff;
        }
        assert!(
            any_hash_diff,
            "the transmit phase occasionally encodes the secret"
        );
    }
}
