//! Dynamic swappable memory (swapMem), the paper's isolation primitive
//! (§3.2).
//!
//! swapMem time-shares one address space between instruction sequences with
//! different semantics: training sequences and the transient sequence can
//! occupy the *same* addresses at different times, which is what lets
//! DejaVuzz trigger "complex" transient windows (Spectre-V2/RSB-style) that
//! linear layouts cannot express without conflicts (Figure 3 vs Figure 4).
//!
//! The model has the paper's three regions:
//!
//! * **shared** — the execution environment: state initialisation, trap
//!   handling and the swap scheduler. The paper implements the runtime as
//!   ~500 LoC of DPI-C called from the testharness; we model it natively in
//!   [`SwapMem::handle_trap`].
//! * **dedicated** — per-DUT sensitive data and mutable operands. Variant 2
//!   of the differential testbench receives the *bit-flipped* secret
//!   (§3.3), realised here by the two value planes of the backing store.
//! * **swappable** — holds the currently scheduled instruction sequence.
//!   On each sequence-terminating trap the runtime flushes the instruction
//!   cache, loads the next packet and redirects the DUT to its entry.
//!
//! The memory is two-plane throughout ([`dejavuzz_ift::TWord`]-compatible):
//! plane `a` backs DUT variant 1, plane `b` variant 2, and a per-byte taint
//! plane marks sensitive bytes. The single-plane [`MemoryIf`] view (plane
//! `a`, taints ignored) serves the architectural golden simulator.

pub mod migrate;

use dejavuzz_ift::TWord;
use dejavuzz_isa::sim::Perms;
use dejavuzz_isa::{Exception, MemoryIf, Program};

/// Addresses and sizes of the three swapMem regions plus the scratch data
/// region stimuli use for leak arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Base of the whole modelled address space.
    pub base: u64,
    /// Total bytes.
    pub size: usize,
    /// Shared region `[shared, shared_end)`: firmware/trap handling.
    pub shared: u64,
    /// End of the shared region.
    pub shared_end: u64,
    /// Dedicated region: secrets + mutable operands.
    pub dedicated: u64,
    /// End of the dedicated region.
    pub dedicated_end: u64,
    /// Address of the secret cell inside the dedicated region.
    pub secret: u64,
    /// Swappable region: the scheduled instruction sequence.
    pub swappable: u64,
    /// End of the swappable region.
    pub swappable_end: u64,
    /// Scratch data region (leak arrays, disambiguation targets).
    pub data: u64,
    /// End of the data region.
    pub data_end: u64,
}

impl Layout {
    /// True if `addr` lies in the swappable region.
    pub fn in_swappable(&self, addr: u64) -> bool {
        addr >= self.swappable && addr < self.swappable_end
    }

    /// True if `addr` lies in the dedicated region.
    pub fn in_dedicated(&self, addr: u64) -> bool {
        addr >= self.dedicated && addr < self.dedicated_end
    }
}

impl Default for Layout {
    fn default() -> Self {
        DEFAULT_LAYOUT
    }
}

/// The default layout used throughout the reproduction.
pub const DEFAULT_LAYOUT: Layout = Layout {
    base: 0x0,
    size: 0x40000, // 256 KiB
    shared: 0x1000,
    shared_end: 0x3000,
    dedicated: 0x3000,
    dedicated_end: 0x5000,
    secret: 0x3000,
    swappable: 0x10000,
    swappable_end: 0x20000,
    data: 0x8000,
    data_end: 0x10000,
};

/// What a packet is for; determines its position in the swap schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PacketKind {
    /// Warms memory-related state for the window's secret access
    /// (scheduled first, §4.2.1).
    WindowTraining,
    /// Trains the trigger microarchitecture (predictors etc., §4.1.1).
    TriggerTraining,
    /// The transient packet: trigger + window (scheduled last).
    Transient,
}

/// One swappable instruction sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwapPacket {
    /// Diagnostic name (e.g. `"trigger_train_0"`).
    pub name: String,
    /// Role in the schedule.
    pub kind: PacketKind,
    /// The assembled instructions; `program.base` must lie in the
    /// swappable region.
    pub program: Program,
    /// Entry PC the DUT is redirected to after the swap.
    pub entry: u64,
}

impl SwapPacket {
    /// Creates a packet entering at the program's base address.
    pub fn new(name: impl Into<String>, kind: PacketKind, program: Program) -> Self {
        let entry = program.base;
        SwapPacket {
            name: name.into(),
            kind,
            program,
            entry,
        }
    }

    /// Number of emitted instruction slots — the paper's Training Overhead
    /// unit counts these (including alignment `nop`s; ETO excludes them).
    pub fn instr_count(&self) -> usize {
        self.program.words.len()
    }
}

/// Action the swap runtime takes on a sequence-terminating trap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrapAction {
    /// A new packet was swapped in; redirect the DUT to `entry`. The
    /// instruction cache must be flushed (see
    /// [`SwapMem::take_icache_flush`]).
    NextPacket {
        /// Entry PC of the freshly swapped packet.
        entry: u64,
        /// Index of the packet within the schedule.
        index: usize,
    },
    /// The schedule is exhausted; the test case is complete.
    Done,
}

/// When the runtime revokes read permission on the secret.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SecretPolicy {
    /// Revoke before the transient packet runs (Meltdown-type scenarios:
    /// the transient access must fault architecturally).
    #[default]
    ProtectBeforeTransient,
    /// Keep the secret readable (Spectre-type scenarios where the victim
    /// domain itself runs the window; paper bugs B2–B5).
    AlwaysReadable,
}

/// The dynamic swappable memory model.
///
/// Implements [`MemoryIf`] (plane `a`) for the golden simulator and a
/// two-plane, taint-carrying port (`load_t`/`store_t`/`fetch_t`) for the
/// microarchitectural model.
#[derive(Clone, Debug)]
pub struct SwapMem {
    layout: Layout,
    bytes_a: Vec<u8>,
    bytes_b: Vec<u8>,
    taint: Vec<u8>,
    perms: Vec<(u64, u64, Perms)>,
    schedule: Vec<SwapPacket>,
    next_packet: usize,
    secret_policy: SecretPolicy,
    secret_len: usize,
    icache_flush_pending: bool,
    swap_log: Vec<String>,
}

impl SwapMem {
    /// An empty swapMem with the given layout.
    pub fn new(layout: Layout) -> Self {
        SwapMem {
            layout,
            bytes_a: vec![0; layout.size],
            bytes_b: vec![0; layout.size],
            taint: vec![0; layout.size],
            perms: Vec::new(),
            schedule: Vec::new(),
            next_packet: 0,
            secret_policy: SecretPolicy::default(),
            secret_len: 0,
            icache_flush_pending: false,
            swap_log: Vec::new(),
        }
    }

    /// The layout in force.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Sets the secret-permission policy (default: protect before the
    /// transient packet).
    pub fn set_secret_policy(&mut self, p: SecretPolicy) {
        self.secret_policy = p;
    }

    /// Plants the secret in the dedicated region: variant 1 sees `secret`,
    /// variant 2 sees its bit-flip (§3.3: "DejaVuzz generates secrets for
    /// the variant DUT by flipping each bit of the original secret"), and
    /// every byte is marked tainted.
    pub fn plant_secret(&mut self, secret: &[u8]) {
        let off = (self.layout.secret - self.layout.base) as usize;
        for (i, &b) in secret.iter().enumerate() {
            self.bytes_a[off + i] = b;
            self.bytes_b[off + i] = !b;
            self.taint[off + i] = 0xFF;
        }
        self.secret_len = secret.len();
    }

    /// Plants an *identical* secret in both variants — the `diffIFT_FN`
    /// worst-case false-negative configuration of Figure 6.
    pub fn plant_secret_identical(&mut self, secret: &[u8]) {
        self.plant_secret(secret);
        let off = (self.layout.secret - self.layout.base) as usize;
        for i in 0..secret.len() {
            self.bytes_b[off + i] = self.bytes_a[off + i];
        }
    }

    /// Replaces the secret pair without touching anything else — the
    /// paper's cheap false-negative mitigation ("by leveraging the
    /// dedicated region […] DejaVuzz can directly load different secret
    /// pairs to mitigate false negatives without regenerating the input").
    pub fn reload_secret(&mut self, secret: &[u8]) {
        self.plant_secret(secret);
    }

    /// Writes plain (untainted, plane-identical) bytes, e.g. mutable
    /// operands in the dedicated region or data-region contents.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let off = (addr - self.layout.base) as usize;
        for (i, &b) in data.iter().enumerate() {
            self.bytes_a[off + i] = b;
            self.bytes_b[off + i] = b;
            self.taint[off + i] = 0;
        }
    }

    /// Copies a program into memory without scheduling (firmware images,
    /// baseline fuzzers with linear layouts).
    pub fn write_program(&mut self, p: &Program) {
        for (addr, w) in p.iter() {
            self.write_bytes(addr, &w.to_le_bytes());
        }
    }

    /// Installs permissions on a range (later calls override earlier ones).
    pub fn set_perms(&mut self, start: u64, end: u64, perms: Perms) {
        self.perms.push((start, end, perms));
    }

    /// Sets the swap schedule. Packets run in the given order; the fuzzer
    /// orders them window-training first, trigger-training next, transient
    /// last (§4.2.1).
    pub fn set_schedule(&mut self, packets: Vec<SwapPacket>) {
        self.schedule = packets;
        self.next_packet = 0;
    }

    /// The current schedule.
    pub fn schedule(&self) -> &[SwapPacket] {
        &self.schedule
    }

    /// Removes the packet at `index` from the schedule (training
    /// reduction, §4.1.2).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_packet(&mut self, index: usize) -> SwapPacket {
        self.schedule.remove(index)
    }

    /// Swaps in the first packet, returning its entry PC.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn begin(&mut self) -> u64 {
        assert!(
            !self.schedule.is_empty(),
            "cannot begin with an empty swap schedule"
        );
        self.next_packet = 0;
        match self.swap_in_next() {
            TrapAction::NextPacket { entry, .. } => entry,
            TrapAction::Done => unreachable!(),
        }
    }

    /// The swap-runtime trap handler: called by the DUT model when a
    /// sequence-terminating trap reaches commit. Swaps in the next packet
    /// (or reports completion) and requests an icache flush.
    pub fn handle_trap(&mut self, cause: Exception) -> TrapAction {
        self.swap_log
            .push(format!("trap {} -> swap", cause.mnemonic()));
        self.swap_in_next()
    }

    fn swap_in_next(&mut self) -> TrapAction {
        if self.next_packet >= self.schedule.len() {
            self.swap_log.push("schedule exhausted".into());
            return TrapAction::Done;
        }
        let index = self.next_packet;
        self.next_packet += 1;
        // Flush the swappable region to zeros (which decode as illegal
        // instructions — runaway execution traps immediately), then copy the
        // packet image into both planes.
        let (s, e) = (
            (self.layout.swappable - self.layout.base) as usize,
            (self.layout.swappable_end - self.layout.base) as usize,
        );
        self.bytes_a[s..e].fill(0);
        self.bytes_b[s..e].fill(0);
        self.taint[s..e].fill(0);
        let packet = self.schedule[index].clone();
        self.write_program(&packet.program);
        self.icache_flush_pending = true;
        // "then updates sensitive data permissions, and finally executes
        // the transient instruction sequence."
        if packet.kind == PacketKind::Transient
            && self.secret_policy == SecretPolicy::ProtectBeforeTransient
        {
            let end = self.layout.secret + self.secret_len.max(8) as u64;
            self.set_perms(self.layout.secret, end, Perms::NONE);
            self.swap_log.push("secret permissions revoked".into());
        }
        self.swap_log
            .push(format!("swapped in packet {index} ({})", packet.name));
        TrapAction::NextPacket {
            entry: packet.entry,
            index,
        }
    }

    /// True once an icache flush has been requested and not yet consumed;
    /// consuming resets the flag. The DUT model calls this after each
    /// [`TrapAction::NextPacket`] and flushes its instruction cache.
    pub fn take_icache_flush(&mut self) -> bool {
        std::mem::take(&mut self.icache_flush_pending)
    }

    /// The runtime's swap log (diagnostics).
    pub fn swap_log(&self) -> &[String] {
        &self.swap_log
    }

    /// Index of the packet that will be swapped in next.
    pub fn upcoming_packet(&self) -> usize {
        self.next_packet
    }

    fn perms_at(&self, addr: u64) -> Perms {
        let mut p = Perms::RWX;
        for &(s, e, perms) in &self.perms {
            if addr >= s && addr < e {
                p = perms;
            }
        }
        p
    }

    fn in_range(&self, addr: u64, size: u64) -> bool {
        addr >= self.layout.base
            && addr
                .checked_add(size)
                .is_some_and(|end| end <= self.layout.base + self.layout.size as u64)
    }

    // ---- two-plane, taint-carrying port (microarchitectural model) ----

    /// Two-plane load. Plane addresses may differ (transient secret-
    /// dependent divergence); each plane reads its own bytes, taints union.
    /// Faults are judged on plane `a` (committed paths never diverge
    /// between variants, so the planes agree on every architectural fault).
    pub fn load_t(&self, addr: TWord, size: u64) -> Result<TWord, Exception> {
        if !addr.a.is_multiple_of(size) {
            return Err(Exception::LoadMisaligned(addr.a));
        }
        if !self.in_range(addr.a, size) || !self.in_range(addr.b, size) {
            return Err(Exception::LoadAccessFault(addr.a));
        }
        if !self.perms_at(addr.a).read {
            return Err(Exception::LoadPageFault(addr.a));
        }
        Ok(self.read_planes(addr, size))
    }

    /// Reads the value planes without permission checks — the *forwarding
    /// path* a Meltdown-vulnerable pipeline uses to hand faulting data to
    /// dependents. Returns `None` only if out of physical range.
    pub fn load_t_nocheck(&self, addr: TWord, size: u64) -> Option<TWord> {
        if !self.in_range(addr.a, size) || !self.in_range(addr.b, size) {
            return None;
        }
        Some(self.read_planes(addr, size))
    }

    fn read_planes(&self, addr: TWord, size: u64) -> TWord {
        let (oa, ob) = (
            (addr.a - self.layout.base) as usize,
            (addr.b - self.layout.base) as usize,
        );
        let mut w = TWord::lit(0);
        for i in (0..size as usize).rev() {
            w.a = (w.a << 8) | self.bytes_a[oa + i] as u64;
            w.b = (w.b << 8) | self.bytes_b[ob + i] as u64;
            let tb = self.taint[oa + i] | self.taint[ob + i];
            w.t = (w.t << 8) | tb as u64;
        }
        // A diverged address means the loaded value is secret-dependent even
        // if the bytes themselves are clean (Table 1 memory-read rule).
        if addr.is_tainted() && addr.diff() {
            w.t = u64::MAX;
        }
        w
    }

    /// The fault a load at `addr` would raise, without performing it
    /// (execute-stage fault detection in the microarchitectural model).
    pub fn load_fault(&self, addr: TWord, size: u64) -> Option<Exception> {
        if !addr.a.is_multiple_of(size) {
            return Some(Exception::LoadMisaligned(addr.a));
        }
        if !self.in_range(addr.a, size) || !self.in_range(addr.b, size) {
            return Some(Exception::LoadAccessFault(addr.a));
        }
        if !self.perms_at(addr.a).read {
            return Some(Exception::LoadPageFault(addr.a));
        }
        None
    }

    /// The fault a store at `addr` would raise, without performing it.
    pub fn store_fault(&self, addr: TWord, size: u64) -> Option<Exception> {
        if !addr.a.is_multiple_of(size) {
            return Some(Exception::StoreMisaligned(addr.a));
        }
        if !self.in_range(addr.a, size) || !self.in_range(addr.b, size) {
            return Some(Exception::StoreAccessFault(addr.a));
        }
        if !self.perms_at(addr.a).write {
            return Some(Exception::StorePageFault(addr.a));
        }
        None
    }

    /// Two-plane store with taint write-through.
    pub fn store_t(&mut self, addr: TWord, size: u64, val: TWord) -> Result<(), Exception> {
        if !addr.a.is_multiple_of(size) {
            return Err(Exception::StoreMisaligned(addr.a));
        }
        if !self.in_range(addr.a, size) || !self.in_range(addr.b, size) {
            return Err(Exception::StoreAccessFault(addr.a));
        }
        if !self.perms_at(addr.a).write {
            return Err(Exception::StorePageFault(addr.a));
        }
        let (oa, ob) = (
            (addr.a - self.layout.base) as usize,
            (addr.b - self.layout.base) as usize,
        );
        let addr_ctrl = addr.is_tainted() && addr.diff();
        for i in 0..size as usize {
            self.bytes_a[oa + i] = (val.a >> (8 * i)) as u8;
            self.bytes_b[ob + i] = (val.b >> (8 * i)) as u8;
            let t = ((val.t >> (8 * i)) as u8) | if addr_ctrl { 0xFF } else { 0 };
            self.taint[oa + i] = t;
            if ob != oa {
                self.taint[ob + i] = t;
            }
        }
        Ok(())
    }

    /// Two-plane instruction fetch (plane addresses may diverge
    /// transiently).
    pub fn fetch_t(&self, addr: TWord) -> Result<TWord, Exception> {
        if !addr.a.is_multiple_of(4) || !self.in_range(addr.a, 4) || !self.in_range(addr.b, 4) {
            return Err(Exception::FetchAccessFault(addr.a));
        }
        if !self.perms_at(addr.a).exec {
            return Err(Exception::FetchAccessFault(addr.a));
        }
        Ok(self.read_planes(addr, 4))
    }

    /// Taint census over the whole memory: number of 8-byte words with any
    /// tainted byte (feeds the memory-side module census).
    pub fn tainted_words(&self) -> usize {
        self.taint
            .chunks(8)
            .filter(|c| c.iter().any(|&t| t != 0))
            .count()
    }

    /// Clears all taints (between fuzzing iterations).
    pub fn clear_taint(&mut self) {
        self.taint.iter_mut().for_each(|t| *t = 0);
    }
}

impl MemoryIf for SwapMem {
    fn load(&mut self, addr: u64, size: u64) -> Result<u64, Exception> {
        self.load_t(TWord::lit(addr), size).map(|w| w.a)
    }

    fn store(&mut self, addr: u64, size: u64, val: u64) -> Result<(), Exception> {
        // Golden-sim stores are plane-identical and untainted.
        self.store_t(TWord::lit(addr), size, TWord::lit(val))
    }

    fn fetch(&mut self, addr: u64) -> Result<u32, Exception> {
        self.fetch_t(TWord::lit(addr)).map(|w| w.a as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz_isa::asm::ProgramBuilder;
    use dejavuzz_isa::instr::{Instr, Reg};

    fn packet(name: &str, kind: PacketKind, base: u64, body: &[Instr]) -> SwapPacket {
        let mut b = ProgramBuilder::new(base);
        for &i in body {
            b.push(i);
        }
        b.push(Instr::Ecall); // sequence terminator
        SwapPacket::new(name, kind, b.assemble())
    }

    #[test]
    fn default_layout_is_coherent() {
        let l = DEFAULT_LAYOUT;
        assert!(l.shared < l.shared_end);
        assert!(l.in_dedicated(l.secret));
        assert!(l.in_swappable(l.swappable));
        assert!(!l.in_swappable(l.swappable_end));
        assert!((l.data_end as usize) <= l.size);
    }

    #[test]
    fn plant_secret_flips_variant_b() {
        let mut m = SwapMem::new(DEFAULT_LAYOUT);
        m.plant_secret(&[0xAB, 0x00]);
        let w = m.load_t(TWord::lit(DEFAULT_LAYOUT.secret), 1).unwrap();
        assert_eq!(w.a, 0xAB);
        assert_eq!(w.b, 0x54, "variant 2 sees the bit-flip");
        assert_eq!(w.t & 0xFF, 0xFF, "secret bytes are tainted");
    }

    #[test]
    fn identical_secret_for_fn_study() {
        let mut m = SwapMem::new(DEFAULT_LAYOUT);
        m.plant_secret_identical(&[0xAB]);
        let w = m.load_t(TWord::lit(DEFAULT_LAYOUT.secret), 1).unwrap();
        assert_eq!(w.a, w.b);
        assert!(
            w.is_tainted(),
            "still tainted — only the diff gates go quiet"
        );
    }

    #[test]
    fn swap_cycle_runs_schedule_in_order() {
        let l = DEFAULT_LAYOUT;
        let mut m = SwapMem::new(l);
        m.set_schedule(vec![
            packet(
                "train0",
                PacketKind::TriggerTraining,
                l.swappable,
                &[Instr::NOP],
            ),
            packet(
                "transient",
                PacketKind::Transient,
                l.swappable,
                &[Instr::NOP, Instr::NOP],
            ),
        ]);
        let entry = m.begin();
        assert_eq!(entry, l.swappable);
        assert!(m.take_icache_flush(), "swap must request an icache flush");
        assert!(!m.take_icache_flush(), "flag is consumed");

        // First packet image is in memory.
        let w0 = m.fetch(l.swappable).unwrap();
        assert_eq!(dejavuzz_isa::decode(w0), Instr::NOP);

        match m.handle_trap(Exception::Ecall) {
            TrapAction::NextPacket { entry, index } => {
                assert_eq!(entry, l.swappable);
                assert_eq!(index, 1);
            }
            other => panic!("expected packet swap, got {other:?}"),
        }
        assert!(m.take_icache_flush());
        assert_eq!(m.handle_trap(Exception::Ecall), TrapAction::Done);
    }

    #[test]
    fn swap_flushes_previous_image() {
        let l = DEFAULT_LAYOUT;
        let mut m = SwapMem::new(l);
        m.set_schedule(vec![
            packet(
                "long",
                PacketKind::TriggerTraining,
                l.swappable,
                &[Instr::NOP; 8],
            ),
            packet("short", PacketKind::Transient, l.swappable, &[Instr::NOP]),
        ]);
        m.begin();
        m.handle_trap(Exception::Ecall);
        // Word 4 of the old (longer) image must be gone: zeros decode as
        // illegal.
        let w = m.fetch(l.swappable + 16).unwrap();
        assert!(matches!(dejavuzz_isa::decode(w), Instr::Illegal(_)));
    }

    #[test]
    fn transient_swap_revokes_secret_permissions() {
        let l = DEFAULT_LAYOUT;
        let mut m = SwapMem::new(l);
        m.plant_secret(&[0x42; 8]);
        m.set_schedule(vec![
            packet(
                "train",
                PacketKind::TriggerTraining,
                l.swappable,
                &[Instr::NOP],
            ),
            packet(
                "transient",
                PacketKind::Transient,
                l.swappable,
                &[Instr::NOP],
            ),
        ]);
        m.begin();
        // During training the secret is readable (warm-up loads).
        assert!(m.load_t(TWord::lit(l.secret), 8).is_ok());
        m.handle_trap(Exception::Ecall);
        // After the transient swap it faults.
        assert_eq!(
            m.load_t(TWord::lit(l.secret), 8),
            Err(Exception::LoadPageFault(l.secret))
        );
        // But the forwarding path still sees the bytes (Meltdown).
        let fwd = m.load_t_nocheck(TWord::lit(l.secret), 8).unwrap();
        assert_eq!(fwd.a, 0x4242_4242_4242_4242);
        assert!(fwd.is_tainted());
    }

    #[test]
    fn always_readable_policy_keeps_access() {
        let l = DEFAULT_LAYOUT;
        let mut m = SwapMem::new(l);
        m.plant_secret(&[1]);
        m.set_secret_policy(SecretPolicy::AlwaysReadable);
        m.set_schedule(vec![packet(
            "transient",
            PacketKind::Transient,
            l.swappable,
            &[],
        )]);
        m.begin();
        assert!(m.load_t(TWord::lit(l.secret), 1).is_ok());
    }

    #[test]
    fn training_reduction_removes_packets() {
        let l = DEFAULT_LAYOUT;
        let mut m = SwapMem::new(l);
        m.set_schedule(vec![
            packet(
                "t0",
                PacketKind::TriggerTraining,
                l.swappable,
                &[Instr::NOP],
            ),
            packet(
                "t1",
                PacketKind::TriggerTraining,
                l.swappable,
                &[Instr::NOP],
            ),
            packet("tr", PacketKind::Transient, l.swappable, &[Instr::NOP]),
        ]);
        let removed = m.remove_packet(1);
        assert_eq!(removed.name, "t1");
        assert_eq!(m.schedule().len(), 2);
        assert_eq!(m.schedule()[1].kind, PacketKind::Transient);
    }

    #[test]
    fn diverged_load_addresses_read_per_plane() {
        let mut m = SwapMem::new(DEFAULT_LAYOUT);
        m.write_bytes(0x8000, &[11]);
        m.write_bytes(0x8100, &[22]);
        let w = m.load_t(TWord::secret(0x8000, 0x8100), 1).unwrap();
        assert_eq!(w.a, 11);
        assert_eq!(w.b, 22);
        assert_eq!(w.t, u64::MAX, "diverged tainted address fully taints");
    }

    #[test]
    fn store_t_taints_both_candidate_slots() {
        let mut m = SwapMem::new(DEFAULT_LAYOUT);
        m.store_t(TWord::secret(0x8000, 0x8100), 8, TWord::lit(1))
            .unwrap();
        assert!(m.load_t(TWord::lit(0x8000), 8).unwrap().is_tainted());
        assert!(m.load_t(TWord::lit(0x8100), 8).unwrap().is_tainted());
        assert!(m.tainted_words() >= 2);
        m.clear_taint();
        assert_eq!(m.tainted_words(), 0);
    }

    #[test]
    fn memoryif_view_is_plane_a() {
        let mut m = SwapMem::new(DEFAULT_LAYOUT);
        m.plant_secret(&[0xAB]);
        assert_eq!(m.load(DEFAULT_LAYOUT.secret, 1).unwrap(), 0xAB);
    }

    #[test]
    fn misaligned_and_out_of_range_faults() {
        let mut m = SwapMem::new(DEFAULT_LAYOUT);
        assert_eq!(m.load(0x8001, 8), Err(Exception::LoadMisaligned(0x8001)));
        assert_eq!(
            m.load(0x9000_0000, 8),
            Err(Exception::LoadAccessFault(0x9000_0000))
        );
        assert_eq!(
            m.store(0x9000_0000, 8, 0),
            Err(Exception::StoreAccessFault(0x9000_0000))
        );
        assert!(m.fetch(0x9000_0000).is_err());
    }

    #[test]
    fn golden_sim_runs_on_swapmem() {
        use dejavuzz_isa::sim::{IsaSim, StepOutcome};
        let l = DEFAULT_LAYOUT;
        let mut m = SwapMem::new(l);
        let mut b = ProgramBuilder::new(l.swappable);
        b.push(Instr::addi(Reg::A0, Reg::ZERO, 7));
        b.push(Instr::Ecall);
        m.set_schedule(vec![SwapPacket::new(
            "p",
            PacketKind::Transient,
            b.assemble(),
        )]);
        m.set_secret_policy(SecretPolicy::AlwaysReadable);
        let entry = m.begin();
        let mut sim = IsaSim::new(entry);
        loop {
            match sim.step(&mut m) {
                StepOutcome::Retired { .. } => {}
                StepOutcome::Trap(e) => {
                    assert_eq!(e, Exception::Ecall);
                    break;
                }
            }
        }
        assert_eq!(sim.reg(Reg::A0), 7);
    }

    #[test]
    #[should_panic(expected = "empty swap schedule")]
    fn begin_without_schedule_panics() {
        SwapMem::new(DEFAULT_LAYOUT).begin();
    }
}
