//! Templated attack-experiment library for DejaVuzz.
//!
//! The core generator (`dejavuzz::gen`) covers the paper's original
//! transient-window families. This crate adds *scenario templates*: named,
//! parameterized attack-experiment families that plug whole new window
//! families into the fuzzer end to end — generation, scheduling quotas,
//! detection, stats, and snapshot persistence — without touching the
//! engine. A template describes a family once ([`ScenarioTemplate`]); the
//! engine instantiates it per parameterization and treats each instance as
//! a first-class window type.
//!
//! Two process-global tables underpin the wiring:
//!
//! * the **template registry** — family id → template, in the same style
//!   as `dejavuzz::registry` ([`register_template`], [`list_templates`]);
//!   the four built-in families below are pre-registered.
//! * the **instance intern table** — every *parameterized* instance the
//!   process has seen (`family:param=val`), interned to a dense `u16` so
//!   the engine's `WindowType` stays `Copy` ([`intern_spec`] and the
//!   `instance_*` accessors). Specs are canonicalized (every parameter
//!   spelled out, declaration order) before interning, so `nested-spec`
//!   and `nested-spec:depth=3` are the same instance.
//!
//! # Built-in families
//!
//! | family         | mechanism            | sketch |
//! |----------------|----------------------|--------|
//! | `zenbleed`     | branch mispredict    | move-elimination / register-file stale-data leak: move-elim candidate + zeroing idiom + stale readback in one dispatch window |
//! | `double-fetch` | memory disambiguation| TOCTOU double fetch: two loads of the same secret address separated by a parameterized gap, then a compare of the two copies |
//! | `nested-spec`  | branch mispredict    | nested-speculation depth stress: a chain of `depth` data-dependent branches inside the outer window |
//! | `sibling-leak` | indirect mispredict  | sibling-unit contention sweep: secret-dependent bursts on a shared long-latency unit (div / mul / fpu) |
//!
//! Register contract for generated blocks (fixed by the engine's
//! completion step): on entry `t0` holds the secret address, `t2` the leak
//! buffer base; the access block should leave the secret (or a derived
//! value) in `s0` for the encode block to transmit.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use dejavuzz_isa::{AluOp, BranchOp, FpOp, Instr, LoadOp, Reg};
use rand::rngs::StdRng;
use rand::Rng;

/// The underlying transient-window mechanism a scenario rides on.
///
/// Variants mirror the engine's base window types **in the same order as
/// `WindowType::ALL`** (the engine maps `Mechanism` to a base window by
/// position); the mechanism decides trigger construction, training
/// derivation and squash-cause checking for the family's windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Mechanism {
    /// Load access fault (PMP-style) squash.
    MemAccessFault = 0,
    /// Load page fault squash.
    MemPageFault = 1,
    /// Misaligned access squash.
    MemMisalign = 2,
    /// Illegal-instruction squash.
    IllegalInstr = 3,
    /// Memory disambiguation (load ordering) squash.
    MemDisambiguation = 4,
    /// Conditional branch misprediction.
    BranchMispredict = 5,
    /// Indirect jump target misprediction.
    IndirectMispredict = 6,
    /// Return address misprediction.
    ReturnMispredict = 7,
}

/// One declared parameter of a scenario family: name, default, and the
/// inclusive range of legal values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name as it appears in `family:name=value` specs.
    pub name: &'static str,
    /// Value used when the spec omits the parameter.
    pub default: u64,
    /// Smallest legal value (inclusive).
    pub min: u64,
    /// Largest legal value (inclusive).
    pub max: u64,
}

/// A fully resolved parameterization: every declared parameter bound to a
/// value, in declaration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Params {
    values: Vec<(&'static str, u64)>,
}

impl Params {
    /// The resolved value of `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a declared parameter of the family —
    /// templates only ever query their own declarations, so this is a
    /// template bug, not an input error.
    pub fn get(&self, name: &str) -> u64 {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("scenario template queried undeclared parameter {name:?}"))
    }

    /// All `(name, value)` pairs in declaration order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.values
    }
}

/// A scenario family: a named, parameterized attack-experiment template.
///
/// Implementations must be deterministic — every method a pure function
/// of `(params, rng draws)` — because generated programs feed the
/// engine's per-`(seed, workers)` byte-determinism contract.
pub trait ScenarioTemplate: Send + Sync {
    /// Stable family id (used in `--scenarios` specs, stats keys and
    /// snapshots). Must satisfy the registry id rules: non-empty ASCII
    /// graphic, no `:`, `,` or `=`.
    fn family(&self) -> &'static str;

    /// One-line human description for `--list-extensions`.
    fn describe(&self) -> &'static str;

    /// Declared parameter space (empty when the family takes none).
    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }

    /// The transient-window mechanism this family's windows ride on.
    fn mechanism(&self, params: &Params) -> Mechanism;

    /// Minimum window body length (slots) the family needs; the engine
    /// widens its drawn window geometry to at least this.
    fn min_slots(&self, _params: &Params) -> usize {
        0
    }

    /// The secret-access block placed at the head of the transient
    /// window (the family's *seed generator*). Register contract: `t0` =
    /// secret address, `t2` = leak base; leave the secret in `s0`.
    fn access_block(&self, params: &Params, rng: &mut StdRng) -> Vec<Instr>;

    /// Extra encode-side instructions appended after the engine's
    /// secret-encoding gadgets (the family's *mutation bias*); redrawn
    /// per mutation. Default: none.
    fn encode_bias(&self, _params: &Params, _rng: &mut StdRng) -> Vec<Instr> {
        Vec::new()
    }

    /// Sink-classification hook: given a tainted-sink module name from
    /// leakage analysis (e.g. `"regfile"`, `"rob"`), return a
    /// family-specific channel label to report instead of the generic
    /// module name, or `None` to keep the default classification.
    fn classify_sink(&self, _params: &Params, _module: &str) -> Option<&'static str> {
        None
    }
}

/// Errors from scenario-spec parsing and template registration, with
/// stable `Display` texts (pinned by the CLI tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The spec string was empty.
    EmptySpec,
    /// No template registered under the family id.
    UnknownFamily {
        /// The family id as written.
        family: String,
    },
    /// A `name=value` item did not parse.
    MalformedParam {
        /// The offending item as written.
        item: String,
        /// The family the spec named.
        family: String,
    },
    /// The parameter name is not declared by the family.
    UnknownParam {
        /// The parameter name as written.
        name: String,
        /// The family the spec named.
        family: String,
    },
    /// The value falls outside the declared `[min, max]` range.
    OutOfRange {
        /// The declared parameter name.
        name: String,
        /// The family the spec named.
        family: String,
        /// Declared minimum (inclusive).
        min: u64,
        /// Declared maximum (inclusive).
        max: u64,
        /// The value as written.
        value: u64,
    },
    /// A template's family id breaks the registry id rules.
    InvalidFamilyId {
        /// The offending id.
        id: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptySpec => write!(f, "empty scenario spec"),
            ScenarioError::UnknownFamily { family } => {
                write!(f, "unknown scenario family {family:?}")
            }
            ScenarioError::MalformedParam { item, family } => write!(
                f,
                "malformed parameter {item:?} for scenario family {family:?} \
                 (expected name=integer)"
            ),
            ScenarioError::UnknownParam { name, family } => {
                write!(
                    f,
                    "unknown parameter {name:?} for scenario family {family:?}"
                )
            }
            ScenarioError::OutOfRange {
                name,
                family,
                min,
                max,
                value,
            } => write!(
                f,
                "parameter {name:?} of scenario family {family:?} must be in \
                 [{min}, {max}], got {value}"
            ),
            ScenarioError::InvalidFamilyId { id } => write!(
                f,
                "invalid scenario family id {id:?}: ids are non-empty ASCII \
                 without ':', ',' or '='"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

// ---------------------------------------------------------------------------
// Template registry
// ---------------------------------------------------------------------------

fn templates() -> &'static RwLock<BTreeMap<String, Arc<dyn ScenarioTemplate>>> {
    static TEMPLATES: OnceLock<RwLock<BTreeMap<String, Arc<dyn ScenarioTemplate>>>> =
        OnceLock::new();
    TEMPLATES.get_or_init(|| {
        // Built-ins are pre-registered so every process that decodes a
        // scenario window (including `dejavuzz-simd` worker processes)
        // can resolve them without explicit setup.
        let mut map: BTreeMap<String, Arc<dyn ScenarioTemplate>> = BTreeMap::new();
        for t in [
            Arc::new(Zenbleed) as Arc<dyn ScenarioTemplate>,
            Arc::new(DoubleFetch),
            Arc::new(NestedSpec),
            Arc::new(SiblingLeak),
        ] {
            map.insert(t.family().to_string(), t);
        }
        RwLock::new(map)
    })
}

fn valid_family_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_graphic() && c != ':' && c != ',' && c != '=')
}

/// Registers (or replaces) a scenario template under its family id.
///
/// Call before building a campaign that names the family; interned
/// instances keep the template they were interned with, so replacing a
/// family never changes windows already in flight.
pub fn register_template(template: Arc<dyn ScenarioTemplate>) -> Result<(), ScenarioError> {
    let id = template.family();
    if !valid_family_id(id) {
        return Err(ScenarioError::InvalidFamilyId { id: id.to_string() });
    }
    templates()
        .write()
        .expect("scenario template registry poisoned")
        .insert(id.to_string(), template);
    Ok(())
}

/// One row of [`list_templates`]: family id, description and declared
/// parameters.
#[derive(Clone, Debug)]
pub struct TemplateInfo {
    /// Stable family id.
    pub family: String,
    /// One-line description.
    pub describe: String,
    /// Declared parameter space.
    pub params: Vec<ParamSpec>,
}

/// Every registered scenario family (built-ins plus user registrations),
/// sorted by family id.
pub fn list_templates() -> Vec<TemplateInfo> {
    templates()
        .read()
        .expect("scenario template registry poisoned")
        .values()
        .map(|t| TemplateInfo {
            family: t.family().to_string(),
            describe: t.describe().to_string(),
            params: t.params().to_vec(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Instance intern table
// ---------------------------------------------------------------------------

struct Instance {
    template: Arc<dyn ScenarioTemplate>,
    params: Params,
    /// Canonical spec (`family:p=v` with every parameter spelled out).
    spec: &'static str,
    /// `scenario:` + canonical spec — the window-type display name.
    label: &'static str,
    family: &'static str,
}

fn instances() -> &'static RwLock<Vec<Instance>> {
    static INSTANCES: OnceLock<RwLock<Vec<Instance>>> = OnceLock::new();
    INSTANCES.get_or_init(|| RwLock::new(Vec::new()))
}

/// Parses a scenario spec (`family` or `family:name=val:name=val`),
/// resolves defaults, canonicalizes, and interns the instance, returning
/// its dense process-local index. Interning is idempotent per canonical
/// spec: `nested-spec` and `nested-spec:depth=3` share one index.
///
/// Note the index is **process-local** — cross-process identity is always
/// the canonical spec string ([`instance_spec`]), which is what snapshots
/// and the worker-pool protocol carry.
pub fn intern_spec(spec: &str) -> Result<u16, ScenarioError> {
    if spec.is_empty() {
        return Err(ScenarioError::EmptySpec);
    }
    let mut items = spec.split(':');
    let family = items.next().unwrap_or("");
    let template = templates()
        .read()
        .expect("scenario template registry poisoned")
        .get(family)
        .cloned()
        .ok_or_else(|| ScenarioError::UnknownFamily {
            family: family.to_string(),
        })?;
    let decls = template.params();
    let mut values: Vec<(&'static str, u64)> = decls.iter().map(|p| (p.name, p.default)).collect();
    for item in items {
        let (name, value) = item
            .split_once('=')
            .and_then(|(n, v)| Some((n, v.parse::<u64>().ok()?)))
            .ok_or_else(|| ScenarioError::MalformedParam {
                item: item.to_string(),
                family: family.to_string(),
            })?;
        let decl =
            decls
                .iter()
                .find(|p| p.name == name)
                .ok_or_else(|| ScenarioError::UnknownParam {
                    name: name.to_string(),
                    family: family.to_string(),
                })?;
        if value < decl.min || value > decl.max {
            return Err(ScenarioError::OutOfRange {
                name: name.to_string(),
                family: family.to_string(),
                min: decl.min,
                max: decl.max,
                value,
            });
        }
        values
            .iter_mut()
            .find(|(n, _)| *n == name)
            .expect("declared")
            .1 = value;
    }
    let mut canonical = family.to_string();
    for (name, value) in &values {
        canonical.push_str(&format!(":{name}={value}"));
    }
    let mut table = instances().write().expect("scenario intern table poisoned");
    if let Some(i) = table.iter().position(|inst| inst.spec == canonical) {
        return Ok(i as u16);
    }
    assert!(
        table.len() < u16::MAX as usize,
        "scenario instance intern table overflow"
    );
    let idx = table.len() as u16;
    table.push(Instance {
        family: leak(template.family().to_string()),
        label: leak(format!("scenario:{canonical}")),
        spec: leak(canonical),
        params: Params { values },
        template,
    });
    Ok(idx)
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn with_instance<T>(index: u16, f: impl FnOnce(&Instance) -> T) -> T {
    let table = instances().read().expect("scenario intern table poisoned");
    let inst = table
        .get(index as usize)
        .unwrap_or_else(|| panic!("scenario instance {index} not interned in this process"));
    f(inst)
}

/// Canonical spec string of an interned instance (stable across
/// processes; what snapshots persist).
pub fn instance_spec(index: u16) -> &'static str {
    with_instance(index, |i| i.spec)
}

/// Display label of an interned instance (`scenario:` + canonical spec).
pub fn instance_label(index: u16) -> &'static str {
    with_instance(index, |i| i.label)
}

/// Family id of an interned instance.
pub fn instance_family(index: u16) -> &'static str {
    with_instance(index, |i| i.family)
}

/// Mechanism of an interned instance.
pub fn instance_mechanism(index: u16) -> Mechanism {
    with_instance(index, |i| i.template.mechanism(&i.params))
}

/// Minimum window slots of an interned instance.
pub fn instance_min_slots(index: u16) -> usize {
    with_instance(index, |i| i.template.min_slots(&i.params))
}

/// Secret-access block of an interned instance.
pub fn instance_access_block(index: u16, rng: &mut StdRng) -> Vec<Instr> {
    with_instance(index, |i| i.template.access_block(&i.params, rng))
}

/// Encode-bias block of an interned instance.
pub fn instance_encode_bias(index: u16, rng: &mut StdRng) -> Vec<Instr> {
    with_instance(index, |i| i.template.encode_bias(&i.params, rng))
}

/// Sink-classification hook of an interned instance.
pub fn instance_classify_sink(index: u16, module: &str) -> Option<&'static str> {
    with_instance(index, |i| i.template.classify_sink(&i.params, module))
}

// ---------------------------------------------------------------------------
// Built-in templates
// ---------------------------------------------------------------------------

/// Move-elimination / register-file stale-data leak (Zenbleed-shaped):
/// a move-elimination candidate, a zeroing idiom and a stale readback
/// race inside one mispredicted dispatch window.
pub struct Zenbleed;

impl ScenarioTemplate for Zenbleed {
    fn family(&self) -> &'static str {
        "zenbleed"
    }

    fn describe(&self) -> &'static str {
        "move-elimination / register-file stale-data leak (Zenbleed-shaped)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        // zero_idiom: 0 = xor rd,rd,rd; 1 = sub rd,rd,rd; 2 = and rd,rd,zero.
        &[ParamSpec {
            name: "zero_idiom",
            default: 0,
            min: 0,
            max: 2,
        }]
    }

    fn mechanism(&self, _params: &Params) -> Mechanism {
        Mechanism::BranchMispredict
    }

    fn min_slots(&self, _params: &Params) -> usize {
        12
    }

    fn access_block(&self, params: &Params, rng: &mut StdRng) -> Vec<Instr> {
        let op = LoadOp::ALL[rng.gen_range(0..LoadOp::ALL.len())];
        let zero = match params.get("zero_idiom") {
            0 => Instr::Op {
                op: AluOp::Xor,
                rd: Reg::S4,
                rs1: Reg::S4,
                rs2: Reg::S4,
            },
            1 => Instr::Op {
                op: AluOp::Sub,
                rd: Reg::S4,
                rs1: Reg::S4,
                rs2: Reg::S4,
            },
            _ => Instr::Op {
                op: AluOp::And,
                rd: Reg::S4,
                rs1: Reg::S4,
                rs2: Reg::ZERO,
            },
        };
        vec![
            // Secret into s0.
            Instr::Load {
                op,
                rd: Reg::S0,
                rs1: Reg::T0,
                offset: 0,
            },
            // Move-elimination candidate: rename-stage copy of s0.
            Instr::Op {
                op: AluOp::Add,
                rd: Reg::S4,
                rs1: Reg::S0,
                rs2: Reg::ZERO,
            },
            // The zeroing idiom the move-elim optimization mishandles.
            zero,
            // Stale readback: s1 observes whatever the register file
            // still holds for the eliminated copy.
            Instr::Op {
                op: AluOp::Add,
                rd: Reg::S1,
                rs1: Reg::S4,
                rs2: Reg::S0,
            },
        ]
    }

    fn encode_bias(&self, _params: &Params, rng: &mut StdRng) -> Vec<Instr> {
        // Register-file pressure: a short rename-heavy copy/mul chain so
        // the physical register file churns while the secret is live.
        let n = rng.gen_range(1..4);
        let mut out = Vec::new();
        for k in 0..n {
            let rd = [Reg::S5, Reg::S6, Reg::S7][k];
            out.push(Instr::Op {
                op: if k % 2 == 0 { AluOp::Add } else { AluOp::Mul },
                rd,
                rs1: Reg::S1,
                rs2: if k == 0 {
                    Reg::ZERO
                } else {
                    [Reg::S5, Reg::S6][k - 1]
                },
            });
        }
        out
    }

    fn classify_sink(&self, _params: &Params, module: &str) -> Option<&'static str> {
        // Stale physical-register-file state is this family's signature
        // channel; keep every other sink on the generic classification.
        (module == "regfile").then_some("regfile-stale")
    }
}

/// Double-fetch TOCTOU window: the secret address is read twice with a
/// parameterized gap, and the two copies are compared — a classic
/// time-of-check/time-of-use shape on the memory-disambiguation window.
pub struct DoubleFetch;

impl ScenarioTemplate for DoubleFetch {
    fn family(&self) -> &'static str {
        "double-fetch"
    }

    fn describe(&self) -> &'static str {
        "double-fetch TOCTOU window over the memory-disambiguation squash"
    }

    fn params(&self) -> &'static [ParamSpec] {
        // gap: nops between the two fetches of the same address.
        &[ParamSpec {
            name: "gap",
            default: 2,
            min: 0,
            max: 8,
        }]
    }

    fn mechanism(&self, _params: &Params) -> Mechanism {
        Mechanism::MemDisambiguation
    }

    fn min_slots(&self, params: &Params) -> usize {
        6 + params.get("gap") as usize
    }

    fn access_block(&self, params: &Params, _rng: &mut StdRng) -> Vec<Instr> {
        let gap = params.get("gap") as usize;
        let mut out = vec![Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        }];
        out.extend(std::iter::repeat_n(Instr::NOP, gap));
        out.push(Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S2,
            rs1: Reg::T0,
            offset: 0,
        });
        // check-vs-use divergence: nonzero iff the two fetches disagree.
        out.push(Instr::Op {
            op: AluOp::Xor,
            rd: Reg::S3,
            rs1: Reg::S0,
            rs2: Reg::S2,
        });
        out
    }
}

/// Nested-speculation depth stress (SpecFuzz-style): a chain of `depth`
/// data-dependent branches inside the outer transient window, each
/// deepening the speculative nesting before the squash resolves.
pub struct NestedSpec;

impl ScenarioTemplate for NestedSpec {
    fn family(&self) -> &'static str {
        "nested-spec"
    }

    fn describe(&self) -> &'static str {
        "nested-speculation depth stress: depth data-dependent branches in-window"
    }

    fn params(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            name: "depth",
            default: 3,
            min: 1,
            max: 8,
        }]
    }

    fn mechanism(&self, _params: &Params) -> Mechanism {
        Mechanism::BranchMispredict
    }

    fn min_slots(&self, params: &Params) -> usize {
        3 * params.get("depth") as usize + 6
    }

    fn access_block(&self, params: &Params, rng: &mut StdRng) -> Vec<Instr> {
        let depth = params.get("depth") as usize;
        let op = LoadOp::ALL[rng.gen_range(0..LoadOp::ALL.len())];
        let mut out = vec![Instr::Load {
            op,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        }];
        for k in 0..depth {
            // Secret-dependent condition bit for nesting level k...
            out.push(Instr::OpImm {
                op: AluOp::And,
                rd: Reg::S1,
                rs1: Reg::S0,
                imm: 1 << (k & 7),
            });
            // ...a branch on it (one more speculation level)...
            out.push(Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::S1,
                rs2: Reg::ZERO,
                offset: 8,
            });
            // ...and an accumulating use under that level.
            out.push(Instr::Op {
                op: AluOp::Add,
                rd: Reg::S2,
                rs1: Reg::S2,
                rs2: Reg::S1,
            });
        }
        out
    }
}

/// Sibling-unit / multi-head leakage sweep: secret-dependent bursts of
/// contention on a shared long-latency unit (integer divide, multiply or
/// the FP divider), the Spectre-Rewind / SMT-contention shape.
pub struct SiblingLeak;

impl ScenarioTemplate for SiblingLeak {
    fn family(&self) -> &'static str {
        "sibling-leak"
    }

    fn describe(&self) -> &'static str {
        "sibling-unit contention sweep (div/mul/fpu) with secret-dependent bursts"
    }

    fn params(&self) -> &'static [ParamSpec] {
        // unit: 0 = integer div, 1 = integer mul, 2 = fp div.
        &[
            ParamSpec {
                name: "unit",
                default: 0,
                min: 0,
                max: 2,
            },
            ParamSpec {
                name: "bursts",
                default: 2,
                min: 1,
                max: 4,
            },
        ]
    }

    fn mechanism(&self, _params: &Params) -> Mechanism {
        Mechanism::IndirectMispredict
    }

    fn min_slots(&self, params: &Params) -> usize {
        3 * params.get("bursts") as usize + 4
    }

    fn access_block(&self, params: &Params, _rng: &mut StdRng) -> Vec<Instr> {
        let mut out = vec![Instr::Load {
            op: LoadOp::Lb,
            rd: Reg::S0,
            rs1: Reg::T0,
            offset: 0,
        }];
        for _ in 0..params.get("bursts") {
            out.extend(contention_burst(params.get("unit"), Reg::S0));
        }
        out
    }

    fn encode_bias(&self, params: &Params, _rng: &mut StdRng) -> Vec<Instr> {
        // One more burst on the encoded value keeps the sibling unit
        // occupied across the encode block too.
        contention_burst(params.get("unit"), Reg::S1)
    }

    fn classify_sink(&self, _params: &Params, module: &str) -> Option<&'static str> {
        // Contention residue parked in in-flight results is the
        // family's signature channel.
        (module == "rob").then_some("sibling-residue")
    }
}

fn contention_burst(unit: u64, src: Reg) -> Vec<Instr> {
    match unit {
        0 => vec![Instr::Op {
            op: AluOp::Div,
            rd: Reg::S1,
            rs1: src,
            rs2: src,
        }],
        1 => vec![Instr::Op {
            op: AluOp::Mul,
            rd: Reg::S1,
            rs1: src,
            rs2: src,
        }],
        _ => vec![
            Instr::FmvDX {
                rd: Reg(1),
                rs1: src,
            },
            Instr::Fp {
                op: FpOp::FdivD,
                rd: Reg(2),
                rs1: Reg(1),
                rs2: Reg(1),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn builtins_are_registered_and_sorted() {
        let fams: Vec<String> = list_templates().into_iter().map(|t| t.family).collect();
        for f in ["double-fetch", "nested-spec", "sibling-leak", "zenbleed"] {
            assert!(fams.contains(&f.to_string()), "missing builtin {f}");
        }
        let mut sorted = fams.clone();
        sorted.sort();
        assert_eq!(fams, sorted);
    }

    #[test]
    fn canonicalization_dedupes_default_spellings() {
        let a = intern_spec("nested-spec").unwrap();
        let b = intern_spec("nested-spec:depth=3").unwrap();
        assert_eq!(a, b);
        assert_eq!(instance_spec(a), "nested-spec:depth=3");
        assert_eq!(instance_label(a), "scenario:nested-spec:depth=3");
        assert_eq!(instance_family(a), "nested-spec");
        let c = intern_spec("nested-spec:depth=5").unwrap();
        assert_ne!(a, c);
        assert_eq!(instance_spec(c), "nested-spec:depth=5");
    }

    #[test]
    fn multi_param_canonical_order_is_declaration_order() {
        let a = intern_spec("sibling-leak:bursts=3:unit=2").unwrap();
        let b = intern_spec("sibling-leak:unit=2:bursts=3").unwrap();
        assert_eq!(a, b);
        assert_eq!(instance_spec(a), "sibling-leak:unit=2:bursts=3");
    }

    #[test]
    fn pinned_error_texts() {
        assert_eq!(
            intern_spec("").unwrap_err().to_string(),
            "empty scenario spec"
        );
        assert_eq!(
            intern_spec("ghost-fam").unwrap_err().to_string(),
            "unknown scenario family \"ghost-fam\""
        );
        assert_eq!(
            intern_spec("nested-spec:depth").unwrap_err().to_string(),
            "malformed parameter \"depth\" for scenario family \"nested-spec\" \
             (expected name=integer)"
        );
        assert_eq!(
            intern_spec("nested-spec:depth=x").unwrap_err().to_string(),
            "malformed parameter \"depth=x\" for scenario family \"nested-spec\" \
             (expected name=integer)"
        );
        assert_eq!(
            intern_spec("nested-spec:width=3").unwrap_err().to_string(),
            "unknown parameter \"width\" for scenario family \"nested-spec\""
        );
        assert_eq!(
            intern_spec("nested-spec:depth=99").unwrap_err().to_string(),
            "parameter \"depth\" of scenario family \"nested-spec\" must be in \
             [1, 8], got 99"
        );
    }

    #[test]
    fn access_blocks_are_deterministic_per_rng_state() {
        for fam in ["zenbleed", "double-fetch", "nested-spec", "sibling-leak"] {
            let i = intern_spec(fam).unwrap();
            let a = instance_access_block(i, &mut StdRng::seed_from_u64(7));
            let b = instance_access_block(i, &mut StdRng::seed_from_u64(7));
            assert_eq!(a, b, "{fam} access block must be rng-deterministic");
            assert!(!a.is_empty(), "{fam} access block must be nonempty");
            assert!(
                a.len() <= instance_min_slots(i),
                "{fam}: min_slots must cover the access block"
            );
        }
    }

    #[test]
    fn parameter_shapes_generated_code() {
        let shallow = intern_spec("nested-spec:depth=1").unwrap();
        let deep = intern_spec("nested-spec:depth=8").unwrap();
        let a = instance_access_block(shallow, &mut StdRng::seed_from_u64(1));
        let b = instance_access_block(deep, &mut StdRng::seed_from_u64(1));
        assert_eq!(b.len() - a.len(), 3 * 7, "each depth level adds 3 instrs");

        let fpu = intern_spec("sibling-leak:unit=2:bursts=1").unwrap();
        let block = instance_access_block(fpu, &mut StdRng::seed_from_u64(1));
        assert!(
            block.iter().any(|i| matches!(i, Instr::Fp { .. })),
            "fpu unit must emit FP contention ops"
        );
    }

    #[test]
    fn classify_sink_hooks() {
        let z = intern_spec("zenbleed").unwrap();
        assert_eq!(instance_classify_sink(z, "regfile"), Some("regfile-stale"));
        assert_eq!(instance_classify_sink(z, "dcache"), None);
        let s = intern_spec("sibling-leak").unwrap();
        assert_eq!(instance_classify_sink(s, "rob"), Some("sibling-residue"));
        let d = intern_spec("double-fetch").unwrap();
        assert_eq!(instance_classify_sink(d, "regfile"), None);
    }

    #[test]
    fn custom_template_registration_and_id_validation() {
        struct Custom;
        impl ScenarioTemplate for Custom {
            fn family(&self) -> &'static str {
                "custom-probe"
            }
            fn describe(&self) -> &'static str {
                "test-only template"
            }
            fn mechanism(&self, _p: &Params) -> Mechanism {
                Mechanism::MemPageFault
            }
            fn access_block(&self, _p: &Params, _rng: &mut StdRng) -> Vec<Instr> {
                vec![Instr::ld(Reg::S0, Reg::T0, 0)]
            }
        }
        register_template(Arc::new(Custom)).unwrap();
        let i = intern_spec("custom-probe").unwrap();
        assert_eq!(instance_spec(i), "custom-probe");
        assert_eq!(instance_mechanism(i), Mechanism::MemPageFault);

        struct Bad(&'static str);
        impl ScenarioTemplate for Bad {
            fn family(&self) -> &'static str {
                self.0
            }
            fn describe(&self) -> &'static str {
                ""
            }
            fn mechanism(&self, _p: &Params) -> Mechanism {
                Mechanism::IllegalInstr
            }
            fn access_block(&self, _p: &Params, _rng: &mut StdRng) -> Vec<Instr> {
                Vec::new()
            }
        }
        for id in ["", "a:b", "a,b", "a=b", "spaced out"] {
            assert!(
                register_template(Arc::new(Bad(id))).is_err(),
                "id {id:?} must be rejected"
            );
        }
    }

    #[test]
    fn mechanism_order_matches_window_type_all() {
        // The engine maps Mechanism -> WindowType by position; this pins
        // the discriminants to the documented ALL order.
        assert_eq!(Mechanism::MemAccessFault as usize, 0);
        assert_eq!(Mechanism::MemPageFault as usize, 1);
        assert_eq!(Mechanism::MemMisalign as usize, 2);
        assert_eq!(Mechanism::IllegalInstr as usize, 3);
        assert_eq!(Mechanism::MemDisambiguation as usize, 4);
        assert_eq!(Mechanism::BranchMispredict as usize, 5);
        assert_eq!(Mechanism::IndirectMispredict as usize, 6);
        assert_eq!(Mechanism::ReturnMispredict as usize, 7);
    }
}
