//! The CellIFT and diffIFT instrumentation passes.
//!
//! The paper implements diffIFT as "new passes in the Yosys synthesizer to
//! insert taint cells for taint propagation" operating at the RTL IR level,
//! and contrasts it with CellIFT, which "instruments at the cell level,
//! \[and\] requires flattening all memory, resulting in a significantly
//! increased compilation time" (Table 4: BOOM compiles in 268 s under
//! diffIFT vs 2856 s under CellIFT; XiangShan times out after 8 h).
//!
//! This module reproduces both passes over the [`crate::ir`] netlist:
//!
//! * **diffIFT pass** — walks the design once, attaching one word-level
//!   shadow cell per original cell (materialised implicitly by the
//!   [`crate::sim::NetlistSim`]'s `TWord` signals) plus a cross-instance
//!   comparator for each control cell. Memories keep their array form.
//! * **CellIFT pass** — first flattens every memory into per-slot registers
//!   with address-decode mux/eq trees (a structural transformation the
//!   returned netlist actually contains), then bit-blasts each word-level
//!   cell into 64 bit-level shadow cells. The shadow-cell count — and the
//!   pass runtime — therefore scales with `Σ mem_words × 64`, which is why
//!   large cores blow up.

use std::time::{Duration, Instant};

use dejavuzz_ift::IftMode;

use crate::builder::NetlistBuilder;
use crate::ir::{CellKind, MemId, Netlist, SignalId};

/// Statistics of an instrumentation run (feeds the Table 4 compile rows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstrumentReport {
    /// The pass that ran.
    pub mode: IftMode,
    /// Cells before instrumentation.
    pub cells_before: usize,
    /// Cells in the instrumented netlist.
    pub cells_after: usize,
    /// Shadow cells the pass inserted (conceptually; the simulator carries
    /// them inline).
    pub shadow_cells: usize,
    /// Memories flattened into registers (CellIFT only).
    pub mems_flattened: usize,
    /// Wall-clock duration of the pass.
    pub duration: Duration,
}

/// Runs the instrumentation pass for `mode`, returning the netlist to
/// simulate plus the pass report.
///
/// * `Base` — identity (no shadow logic).
/// * `DiffIft` — identity structure + word-level shadow accounting.
/// * `CellIft` — memory flattening + bit-level shadow accounting.
pub fn instrument(netlist: &Netlist, mode: IftMode) -> (Netlist, InstrumentReport) {
    let start = Instant::now();
    let cells_before = netlist.cell_count();
    let (out, shadow_cells, mems_flattened) = match mode {
        IftMode::Base => (netlist.clone(), 0, 0),
        IftMode::DiffIft => {
            // One shadow cell per word-level cell; control cells additionally
            // get a cross-instance comparator. Memories stay arrays.
            let mut shadow = 0usize;
            for c in &netlist.cells {
                shadow += 1;
                if matches!(
                    c.kind,
                    CellKind::Mux { .. }
                        | CellKind::Eq(..)
                        | CellKind::Lt(..)
                        | CellKind::Reg { .. }
                ) {
                    shadow += 1; // the S_diff comparator
                }
            }
            shadow += 2 * netlist.mems.len(); // per-port diff comparators
            (netlist.clone(), shadow, 0)
        }
        IftMode::CellIft => {
            let flattened = flatten_memories(netlist);
            // Bit-blasted shadow: 64 shadow bit-cells per word-level cell.
            // The loop below is the honest cost model — the pass really
            // visits every shadow bit it would create.
            let mut shadow = 0usize;
            for c in &flattened.cells {
                let per_bit = match c.kind {
                    CellKind::Const(_) | CellKind::Input(_) => 0,
                    _ => 64,
                };
                for _bit in 0..per_bit {
                    shadow += 1;
                }
            }
            let mems = netlist.mems.len();
            (flattened, shadow, mems)
        }
    };
    let report = InstrumentReport {
        mode,
        cells_before,
        cells_after: out.cell_count(),
        shadow_cells,
        mems_flattened,
        duration: start.elapsed(),
    };
    (out, report)
}

/// Flattens every memory into per-slot registers with decode trees: each
/// read port becomes a mux chain over all slots, each write port becomes a
/// per-slot enabled register with an `addr == k` decoder.
fn flatten_memories(netlist: &Netlist) -> Netlist {
    let mut b = NetlistBuilder::new();
    // Slot registers, per memory.
    let mut slot_regs: Vec<Vec<SignalId>> = Vec::with_capacity(netlist.mems.len());
    for m in &netlist.mems {
        b.module(m.module);
        let regs: Vec<SignalId> = (0..m.words).map(|_| b.reg(0)).collect();
        slot_regs.push(regs);
    }
    // Copy cells with operand remapping; expand MemRead into mux chains.
    let mut map: Vec<SignalId> = Vec::with_capacity(netlist.cells.len());
    let offset = netlist.mems.iter().map(|m| m.words).sum::<usize>();
    debug_assert_eq!(offset, slot_regs.iter().map(Vec::len).sum::<usize>());
    for c in &netlist.cells {
        b.module(c.module);
        let new = match c.kind {
            CellKind::Const(v) => b.constant(v),
            CellKind::Input(i) => b.input(i),
            CellKind::And(x, y) => {
                let (x, y) = (map[x], map[y]);
                b.and(x, y)
            }
            CellKind::Or(x, y) => {
                let (x, y) = (map[x], map[y]);
                b.or(x, y)
            }
            CellKind::Xor(x, y) => {
                let (x, y) = (map[x], map[y]);
                b.xor(x, y)
            }
            CellKind::Not(x) => {
                let x = map[x];
                b.not(x)
            }
            CellKind::Add(x, y) => {
                let (x, y) = (map[x], map[y]);
                b.add(x, y)
            }
            CellKind::Sub(x, y) => {
                let (x, y) = (map[x], map[y]);
                b.sub(x, y)
            }
            CellKind::Eq(x, y) => {
                let (x, y) = (map[x], map[y]);
                b.eq(x, y)
            }
            CellKind::Lt(x, y) => {
                let (x, y) = (map[x], map[y]);
                b.lt(x, y)
            }
            CellKind::Mux {
                sel,
                then_v,
                else_v,
            } => {
                let (s, t, e) = (map[sel], map[then_v], map[else_v]);
                b.mux(s, t, e)
            }
            CellKind::Reg { init, .. } => b.reg(init),
            CellKind::MemRead { mem, addr } => {
                // out = addr==0 ? slot0 : addr==1 ? slot1 : ... : last
                let addr = map[addr];
                let slots = &slot_regs[mem.0];
                let mut out = slots[slots.len() - 1];
                for k in (0..slots.len() - 1).rev() {
                    let kc = b.constant(k as u64);
                    let is_k = b.eq(addr, kc);
                    out = b.mux(is_k, slots[k], out);
                }
                out
            }
        };
        map.push(new);
    }
    // Reconnect registers (d/en reference remapped signals).
    for (i, c) in netlist.cells.iter().enumerate() {
        if let CellKind::Reg { d: Some(d), en, .. } = c.kind {
            b.connect_reg(map[i], map[d], en.map(|e| map[e]));
        }
    }
    // Expand write ports into per-slot enabled registers.
    for (mi, m) in netlist.mems.iter().enumerate() {
        b.module(m.module);
        if let Some((wen, addr, data)) = m.write_port {
            let (wen, addr, data) = (map[wen], map[addr], map[data]);
            let slots = slot_regs[mi].clone();
            for (k, slot) in slots.into_iter().enumerate() {
                let kc = b.constant(k as u64);
                let is_k = b.eq(addr, kc);
                let en = b.and(wen, is_k);
                b.connect_reg(slot, data, Some(en));
            }
        }
    }
    // Remap outputs; unconnected slot registers simply hold 0.
    for (name, sig) in &netlist.outputs {
        b.output(name.clone(), map[*sig]);
    }
    b.finish()
}

/// Remaps memory ids after flattening (none remain); kept for callers that
/// want to assert the invariant.
pub fn mems_after_flatten(_mem: MemId) -> Option<MemId> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::NetlistSim;
    use dejavuzz_ift::TWord;

    /// A memory with one write and one read port, plus a passthrough reg.
    fn mem_netlist(words: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let m = b.mem(words, "buf");
        let wen = b.input(0);
        let addr = b.input(1);
        let data = b.input(2);
        b.connect_mem_write(m, wen, addr, data);
        let raddr = b.input(3);
        let rd = b.mem_read(m, raddr);
        b.output("rd", rd);
        b.finish()
    }

    #[test]
    fn base_pass_is_identity() {
        let n = mem_netlist(8);
        let (out, report) = instrument(&n, IftMode::Base);
        assert_eq!(out.cell_count(), n.cell_count());
        assert_eq!(report.shadow_cells, 0);
        assert_eq!(report.mems_flattened, 0);
    }

    #[test]
    fn diffift_keeps_memories_unflattened() {
        let n = mem_netlist(1024);
        let (out, report) = instrument(&n, IftMode::DiffIft);
        assert_eq!(
            out.mem_count(),
            1,
            "diffIFT supports non-flattened memories"
        );
        assert_eq!(out.cell_count(), n.cell_count());
        assert!(report.shadow_cells > 0);
    }

    #[test]
    fn cellift_flattens_memories() {
        let n = mem_netlist(64);
        let (out, report) = instrument(&n, IftMode::CellIft);
        assert_eq!(out.mem_count(), 0, "CellIFT flattens all memories");
        assert_eq!(report.mems_flattened, 1);
        assert!(
            out.cell_count() > n.cell_count() + 64,
            "flattening must add per-slot registers and decode trees"
        );
        assert_eq!(out.reg_count(), 64);
    }

    #[test]
    fn cellift_cost_scales_with_memory_size() {
        let (_, small) = instrument(&mem_netlist(16), IftMode::CellIft);
        let (_, large) = instrument(&mem_netlist(1024), IftMode::CellIft);
        assert!(
            large.shadow_cells > 20 * small.shadow_cells,
            "shadow cells: small={} large={}",
            small.shadow_cells,
            large.shadow_cells
        );
        let (_, diff_small) = instrument(&mem_netlist(16), IftMode::DiffIft);
        let (_, diff_large) = instrument(&mem_netlist(1024), IftMode::DiffIft);
        assert_eq!(
            diff_small.shadow_cells, diff_large.shadow_cells,
            "diffIFT cost is independent of memory depth"
        );
    }

    #[test]
    fn flattened_memory_behaves_like_original() {
        let n = mem_netlist(8);
        let (flat, _) = instrument(&n, IftMode::CellIft);
        let mut orig = NetlistSim::new(n, IftMode::CellIft);
        let mut inst = NetlistSim::new(flat, IftMode::CellIft);
        for sim in [&mut orig, &mut inst] {
            sim.set_input(0, TWord::lit(1)); // wen
            sim.set_input(1, TWord::lit(5)); // waddr
            sim.set_input(2, TWord::lit(99)); // wdata
            sim.set_input(3, TWord::lit(5)); // raddr
            sim.step();
            sim.set_input(0, TWord::lit(0));
            sim.eval_comb();
        }
        assert_eq!(orig.output("rd").a, 99);
        assert_eq!(
            inst.output("rd").a,
            99,
            "flattened read must match array read"
        );
    }

    #[test]
    fn flattened_tainted_address_read_overtaints() {
        // The flattened mux tree's selection signals are the address
        // decoders; a tainted address taints the read under CellIFT.
        let n = mem_netlist(8);
        let (flat, _) = instrument(&n, IftMode::CellIft);
        let mut sim = NetlistSim::new(flat, IftMode::CellIft);
        // Make the slots distinguishable first (write 99 into slot 2).
        sim.set_input(0, TWord::lit(1));
        sim.set_input(1, TWord::lit(2));
        sim.set_input(2, TWord::lit(99));
        sim.step();
        sim.set_input(0, TWord::lit(0));
        sim.set_input(3, TWord::with_taint(2, 2, 1)); // tainted raddr
        sim.eval_comb();
        assert!(sim.output("rd").is_tainted());
    }

    #[test]
    fn report_duration_is_measured() {
        let (_, report) = instrument(&mem_netlist(256), IftMode::CellIft);
        // Zero-duration is possible on a fast machine, but the field must
        // exist and the pass must have counted its work.
        assert!(report.shadow_cells >= 256 * 64);
        assert_eq!(report.mode, IftMode::CellIft);
    }

    #[test]
    fn registers_survive_flattening() {
        let mut b = NetlistBuilder::new();
        let r = b.reg(5);
        let one = b.constant(1);
        let nxt = b.add(r, one);
        b.connect_reg(r, nxt, None);
        b.output("q", r);
        let n = b.finish();
        let (flat, _) = instrument(&n, IftMode::CellIft);
        let mut sim = NetlistSim::new(flat, IftMode::CellIft);
        sim.step();
        sim.step();
        assert_eq!(sim.output("q").a, 7);
    }
}
