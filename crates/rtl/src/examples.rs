//! Reference circuits: the Figure 2 RoB-entry circuit and synthetic
//! core-scale netlists for the Table 4 compile-overhead rows.

use crate::builder::NetlistBuilder;
use crate::ir::{Netlist, SignalId};

/// Handles into the [`rob_entry_circuit`] netlist.
#[derive(Clone, Debug)]
pub struct RobEntryCircuit {
    /// The netlist itself.
    pub netlist: Netlist,
    /// Input index for `enq_uopc`.
    pub in_enq_uopc: usize,
    /// Input index for `enq_valid`.
    pub in_enq_valid: usize,
    /// Input index for `rob_tail_idx`.
    pub in_rob_tail_idx: usize,
    /// The per-entry `uopc` field registers.
    pub uopc_regs: Vec<SignalId>,
}

/// Builds the Figure 2 circuit, generalised to `entries` RoB entries:
/// entry *k* updates its `rob_k_uopc` register with `enq_uopc` when
/// `enq_valid` is high and `rob_tail_idx == k`.
///
/// The paper walks through how a RoB rollback taints `rob_tail_idx` and
/// `enq_valid`, whereupon CellIFT's Policy 2 suddenly taints every entry
/// field ("all 736 RoB entry field registers … are all suddenly tainted
/// when the RoB rolls back"), while diffIFT's `S_diff` gate keeps them
/// clean when the variants agree on the control signals.
pub fn rob_entry_circuit(entries: usize) -> RobEntryCircuit {
    let mut b = NetlistBuilder::new();
    b.module("rob");
    let uopc_regs: Vec<SignalId> = (0..entries).map(|_| b.reg(0)).collect();
    let enq_uopc = b.input(0);
    let enq_valid = b.input(1);
    let rob_tail_idx = b.input(2);
    for (k, &reg) in uopc_regs.iter().enumerate() {
        let kc = b.constant(k as u64);
        let match_k = b.eq(rob_tail_idx, kc);
        let update_k = b.and(enq_valid, match_k);
        // The Figure 2 mux: update ? enq_uopc : rob_k_uopc, registered.
        let next = b.mux(update_k, enq_uopc, reg);
        b.connect_reg(reg, next, None);
        b.name(reg, format!("rob_{k}_uopc"));
    }
    for (k, &reg) in uopc_regs.iter().enumerate() {
        b.output(format!("rob_{k}_uopc"), reg);
    }
    RobEntryCircuit {
        netlist: b.finish(),
        in_enq_uopc: 0,
        in_enq_valid: 1,
        in_rob_tail_idx: 2,
        uopc_regs,
    }
}

/// Parameters of a synthetic core-scale netlist, sized to mimic a real
/// design's instrumentation workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreScale {
    /// Human-readable design name.
    pub name: &'static str,
    /// Approximate Verilog LoC of the real design (Table 2).
    pub verilog_loc: usize,
    /// Combinational cells to generate.
    pub comb_cells: usize,
    /// Registers to generate.
    pub regs: usize,
    /// Memories to generate (as `(count, words)`).
    pub mems: (usize, usize),
}

/// A deliberately small synthetic scale: big enough to exercise every
/// cell kind and carry taint through registers and memories, small
/// enough that a fuzzing campaign driving it cycle-by-cycle (the
/// `netlist:small` backend, CI smoke runs) stays fast.
pub const SMALL_SCALE: CoreScale = CoreScale {
    name: "SynthSmall",
    verilog_loc: 0,
    comb_cells: 600,
    regs: 96,
    mems: (4, 64),
};

/// A SmallBOOM-scale workload (Table 2: 171K Verilog LoC).
pub const BOOM_SCALE: CoreScale = CoreScale {
    name: "BOOM",
    verilog_loc: 171_000,
    comb_cells: 40_000,
    regs: 6_000,
    mems: (24, 512),
};

/// A XiangShan-MinimalConfig-scale workload (Table 2: 893K Verilog LoC).
pub const XIANGSHAN_SCALE: CoreScale = CoreScale {
    name: "XiangShan",
    verilog_loc: 893_000,
    comb_cells: 200_000,
    regs: 30_000,
    mems: (96, 1024),
};

/// Generates a synthetic netlist with the given scale: chains of mixed
/// combinational cells feeding registers, plus write/read-ported memories.
/// The structure is generic but the *instrumentation workload* (cell count,
/// memory words) matches the corresponding real design's order of
/// magnitude, which is all the Table 4 compile rows measure.
pub fn synthetic_core(scale: CoreScale) -> Netlist {
    let mut b = NetlistBuilder::new();
    b.module("core");
    let x = b.input(0);
    let y = b.input(1);
    let wen = b.input(2);
    let waddr = b.input(3);
    let wdata = b.input(4);
    let mut regs = Vec::new();
    for i in 0..scale.regs {
        let r = b.reg(i as u64);
        regs.push(r);
    }
    // One combinational chain with the memory read ports interleaved
    // through it and register taps sampled along it: taint entering at an
    // SRAM surfaces at a chain depth, reaches the registers tapping
    // deeper points first, and circulates back through the `other`
    // operands cycle by cycle — so the per-cycle tainted-register count
    // (the coverage matrix index) moves through many distinct values
    // instead of jumping straight to saturation.
    let mem_every = (scale.comb_cells / scale.mems.0.max(1)).max(1);
    let tap_every = (scale.comb_cells / scale.regs.max(1)).max(1);
    let mut mems_made = 0;
    let mut prev = b.xor(x, y);
    // Seed the taps with the chain head so degenerate scales (zero comb
    // cells) still connect every register.
    let mut taps = vec![prev];
    for i in 0..scale.comb_cells {
        let other = regs[i % regs.len()];
        prev = match i % 6 {
            0 => b.and(prev, other),
            1 => b.or(prev, other),
            2 => b.add(prev, other),
            3 => b.xor(prev, other),
            4 => {
                let s = b.eq(prev, other);
                b.mux(s, prev, other)
            }
            _ => b.sub(prev, other),
        };
        if i % mem_every == 0 && mems_made < scale.mems.0 {
            let mem = b.mem(scale.mems.1, format!("sram_{mems_made}"));
            b.connect_mem_write(mem, wen, waddr, wdata);
            let rd = b.mem_read(mem, waddr);
            prev = b.xor(prev, rd);
            mems_made += 1;
        }
        if i % tap_every == 0 {
            taps.push(prev);
        }
    }
    while mems_made < scale.mems.0 {
        // Degenerate scales (fewer comb cells than memories) append the
        // remaining SRAMs at the end of the chain.
        let mem = b.mem(scale.mems.1, format!("sram_{mems_made}"));
        b.connect_mem_write(mem, wen, waddr, wdata);
        let rd = b.mem_read(mem, waddr);
        prev = b.xor(prev, rd);
        mems_made += 1;
    }
    for (i, r) in regs.clone().into_iter().enumerate() {
        // Even registers sample the chain at spread depths; odd registers
        // shift their neighbour, giving taint a second, slower route.
        let d = if i % 2 == 0 {
            taps[(i / 2) % taps.len()]
        } else {
            regs[(i + 1) % scale.regs]
        };
        b.connect_reg(r, d, None);
    }
    b.output("tap", prev);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use crate::sim::NetlistSim;
    use dejavuzz_ift::{IftMode, TWord};

    fn run_rollback(mode: IftMode, entries: usize) -> usize {
        // Reproduce §2.2's scenario: one entry holds tainted data (a secret
        // wrote back), then the RoB rolls back: the tail pointer — and with
        // it enq_valid — become tainted, but their *values* are identical in
        // both variants (rollback depth did not depend on the secret).
        let c = rob_entry_circuit(entries);
        let mut sim = NetlistSim::new(c.netlist.clone(), mode);
        // Cycle 1: normally enqueue a tainted uopc into entry 1.
        sim.set_input(c.in_enq_uopc, TWord::secret(0x13, 0x37));
        sim.set_input(c.in_enq_valid, TWord::lit(1));
        sim.set_input(c.in_rob_tail_idx, TWord::lit(1));
        sim.step();
        // Cycle 2: rollback. Control signals tainted but equal across
        // variants; the frontend presents a fresh (untainted) uopc that
        // differs from the entries' contents, so Policy 2's (A ^ B) term is
        // non-zero everywhere.
        sim.set_input(c.in_enq_uopc, TWord::lit(0x55));
        sim.set_input(c.in_enq_valid, TWord::with_taint(1, 1, 1));
        sim.set_input(c.in_rob_tail_idx, TWord::with_taint(2, 2, u64::MAX));
        sim.step();
        sim.census().taint_sum()
    }

    #[test]
    fn figure2_cellift_taints_every_entry_on_rollback() {
        let entries = 16;
        let tainted = run_rollback(IftMode::CellIft, entries);
        assert_eq!(
            tainted, entries,
            "CellIFT: all RoB entry field registers suddenly tainted on rollback"
        );
    }

    #[test]
    fn figure2_diffift_keeps_entries_clean() {
        let tainted = run_rollback(IftMode::DiffIft, 16);
        // Only the originally tainted entry (and the entry the tainted-but-
        // equal tail actually updated with untainted data) may carry taint.
        assert!(tainted <= 2, "diffIFT must not explode: {tainted} tainted");
        assert!(tainted >= 1, "the secret uopc stays tainted");
    }

    #[test]
    fn figure2_diffift_propagates_real_divergence() {
        // If the secret actually changes the tail pointer between variants
        // (a secret-dependent rollback depth), diffIFT *must* taint.
        let c = rob_entry_circuit(8);
        let mut sim = NetlistSim::new(c.netlist.clone(), IftMode::DiffIft);
        sim.set_input(c.in_enq_uopc, TWord::lit(0x42));
        sim.set_input(c.in_enq_valid, TWord::lit(1));
        sim.set_input(c.in_rob_tail_idx, TWord::secret(2, 5));
        sim.step();
        let census = sim.census();
        assert!(
            census.taint_sum() >= 2,
            "both candidate entries become tainted"
        );
    }

    #[test]
    fn functional_behaviour_of_rob_entry() {
        let c = rob_entry_circuit(4);
        let mut sim = NetlistSim::new(c.netlist.clone(), IftMode::Base);
        sim.set_input(c.in_enq_uopc, TWord::lit(0x33));
        sim.set_input(c.in_enq_valid, TWord::lit(1));
        sim.set_input(c.in_rob_tail_idx, TWord::lit(3));
        sim.step();
        assert_eq!(sim.output("rob_3_uopc").a, 0x33);
        assert_eq!(sim.output("rob_2_uopc").a, 0);
        // Disabled: nothing changes.
        sim.set_input(c.in_enq_valid, TWord::lit(0));
        sim.set_input(c.in_enq_uopc, TWord::lit(0x44));
        sim.step();
        assert_eq!(sim.output("rob_3_uopc").a, 0x33);
    }

    #[test]
    fn synthetic_scales_are_ordered() {
        // Keep the scales tiny here; the bench exercises the real ones.
        let small = CoreScale {
            name: "s",
            verilog_loc: 0,
            comb_cells: 100,
            regs: 20,
            mems: (2, 16),
        };
        let big = CoreScale {
            name: "b",
            verilog_loc: 0,
            comb_cells: 400,
            regs: 60,
            mems: (4, 64),
        };
        let ns = synthetic_core(small);
        let nb = synthetic_core(big);
        assert!(nb.cell_count() > ns.cell_count());
        assert!(nb.mem_words() > ns.mem_words());
        // Both instrument and simulate.
        for mode in [IftMode::DiffIft, IftMode::CellIft] {
            let (inst, _) = instrument(&ns, mode);
            let mut sim = NetlistSim::new(inst, mode);
            sim.set_input(0, TWord::lit(1));
            sim.step();
        }
    }

    #[test]
    fn small_scale_simulates_all_modes() {
        let n = synthetic_core(SMALL_SCALE);
        assert!(n.cell_count() < synthetic_core(BOOM_SCALE).cell_count() / 10);
        for mode in [IftMode::Base, IftMode::DiffIft, IftMode::CellIft] {
            let mut sim = NetlistSim::new(n.clone(), mode);
            sim.set_input(0, TWord::lit(3));
            sim.step();
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the subject
    fn scale_constants_reflect_table2() {
        assert_eq!(BOOM_SCALE.verilog_loc, 171_000);
        assert_eq!(XIANGSHAN_SCALE.verilog_loc, 893_000);
        assert!(XIANGSHAN_SCALE.comb_cells > BOOM_SCALE.comb_cells);
        assert!(
            XIANGSHAN_SCALE.mems.0 * XIANGSHAN_SCALE.mems.1 > BOOM_SCALE.mems.0 * BOOM_SCALE.mems.1
        );
    }
}
