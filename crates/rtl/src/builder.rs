//! "Chisel-lite": a fluent construction API for netlists.

use crate::ir::{Cell, CellKind, MemDecl, MemId, Netlist, SignalId};

/// Builds a [`Netlist`] with SSA discipline enforced at construction time.
///
/// # Example
///
/// ```
/// use dejavuzz_rtl::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.input(0);
/// let one = b.constant(1);
/// let sum = b.add(x, one);
/// b.output("sum", sum);
/// let netlist = b.finish();
/// assert_eq!(netlist.cell_count(), 3);
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    netlist: Netlist,
    module: &'static str,
}

impl NetlistBuilder {
    /// An empty builder rooted at module `"top"`.
    pub fn new() -> Self {
        NetlistBuilder {
            netlist: Netlist::default(),
            module: "top",
        }
    }

    /// Sets the module path attributed to subsequently created cells.
    pub fn module(&mut self, module: &'static str) -> &mut Self {
        self.module = module;
        self
    }

    fn push(&mut self, kind: CellKind) -> SignalId {
        self.netlist.cells.push(Cell {
            kind,
            name: None,
            module: self.module,
        });
        self.netlist.cells.len() - 1
    }

    /// Names the most recently created signal (diagnostics / censuses).
    pub fn name(&mut self, sig: SignalId, name: impl Into<String>) -> &mut Self {
        self.netlist.cells[sig].name = Some(name.into());
        self
    }

    /// A constant driver.
    pub fn constant(&mut self, v: u64) -> SignalId {
        self.push(CellKind::Const(v))
    }

    /// An external input port.
    pub fn input(&mut self, index: usize) -> SignalId {
        self.push(CellKind::Input(index))
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(CellKind::And(a, b))
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(CellKind::Or(a, b))
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(CellKind::Xor(a, b))
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        self.push(CellKind::Not(a))
    }

    /// Addition.
    pub fn add(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(CellKind::Add(a, b))
    }

    /// Subtraction.
    pub fn sub(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(CellKind::Sub(a, b))
    }

    /// Equality comparison.
    pub fn eq(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(CellKind::Eq(a, b))
    }

    /// Unsigned less-than.
    pub fn lt(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(CellKind::Lt(a, b))
    }

    /// Multiplexer `sel ? then_v : else_v`.
    pub fn mux(&mut self, sel: SignalId, then_v: SignalId, else_v: SignalId) -> SignalId {
        self.push(CellKind::Mux {
            sel,
            then_v,
            else_v,
        })
    }

    /// Declares a register with an initial value; connect with
    /// [`NetlistBuilder::connect_reg`].
    pub fn reg(&mut self, init: u64) -> SignalId {
        self.push(CellKind::Reg {
            d: None,
            en: None,
            init,
        })
    }

    /// Connects a register's data input and optional enable.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a register or is already connected.
    pub fn connect_reg(&mut self, r: SignalId, d: SignalId, en: Option<SignalId>) -> &mut Self {
        match &mut self.netlist.cells[r].kind {
            CellKind::Reg {
                d: slot_d,
                en: slot_en,
                ..
            } => {
                assert!(slot_d.is_none(), "register {r} already connected");
                *slot_d = Some(d);
                *slot_en = en;
            }
            other => panic!("signal {r} is not a register (found {other:?})"),
        }
        self
    }

    /// Declares a memory of `words` 64-bit words.
    pub fn mem(&mut self, words: usize, name: impl Into<String>) -> MemId {
        self.netlist.mems.push(MemDecl {
            words,
            name: Some(name.into()),
            module: self.module,
            write_port: None,
            liveness: Vec::new(),
        });
        MemId(self.netlist.mems.len() - 1)
    }

    /// Connects a memory's (single) write port.
    ///
    /// # Panics
    ///
    /// Panics if the memory already has a write port.
    pub fn connect_mem_write(
        &mut self,
        mem: MemId,
        wen: SignalId,
        addr: SignalId,
        data: SignalId,
    ) -> &mut Self {
        let m = &mut self.netlist.mems[mem.0];
        assert!(
            m.write_port.is_none(),
            "memory {mem:?} already has a write port"
        );
        m.write_port = Some((wen, addr, data));
        self
    }

    /// Creates a combinational read port on a memory.
    pub fn mem_read(&mut self, mem: MemId, addr: SignalId) -> SignalId {
        self.push(CellKind::MemRead { mem, addr })
    }

    /// Attaches a `liveness_mask` attribute to a memory: `signals[i]` is the
    /// 1-bit liveness of slot `i` (the paper's generic vector interface).
    pub fn liveness_mask(&mut self, mem: MemId, signals: Vec<SignalId>) -> &mut Self {
        self.netlist.mems[mem.0].liveness = signals;
        self
    }

    /// Exposes a signal as a named output.
    pub fn output(&mut self, name: impl Into<String>, sig: SignalId) -> &mut Self {
        self.netlist.outputs.push((name.into(), sig));
        self
    }

    /// Validates and returns the netlist.
    ///
    /// # Panics
    ///
    /// Panics if SSA validation fails (a builder bug, since the API enforces
    /// ordering) — the panic message names the offending cell.
    pub fn finish(self) -> Netlist {
        if let Err(i) = self.netlist.validate() {
            panic!(
                "netlist validation failed at cell {i}: {:?}",
                self.netlist.cells[i].kind
            );
        }
        self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let mut b = NetlistBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let s = b.add(x, y);
        b.output("s", s);
        let n = b.finish();
        assert_eq!(n.cell_count(), 3);
        assert_eq!(n.output("s"), Some(2));
    }

    #[test]
    fn register_connect_after_declaration() {
        let mut b = NetlistBuilder::new();
        let r = b.reg(7);
        let one = b.constant(1);
        let next = b.add(r, one);
        b.connect_reg(r, next, None);
        let n = b.finish();
        assert_eq!(n.reg_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut b = NetlistBuilder::new();
        let r = b.reg(0);
        let c = b.constant(0);
        b.connect_reg(r, c, None);
        b.connect_reg(r, c, None);
    }

    #[test]
    #[should_panic(expected = "not a register")]
    fn connect_non_reg_panics() {
        let mut b = NetlistBuilder::new();
        let c = b.constant(0);
        let c2 = b.constant(0);
        b.connect_reg(c, c2, None);
    }

    #[test]
    fn memory_ports_and_liveness() {
        let mut b = NetlistBuilder::new();
        let m = b.mem(16, "lb");
        let wen = b.input(0);
        let addr = b.input(1);
        let data = b.input(2);
        b.connect_mem_write(m, wen, addr, data);
        let rd = b.mem_read(m, addr);
        let live0 = b.input(3);
        b.liveness_mask(m, vec![live0]);
        b.output("rd", rd);
        let n = b.finish();
        assert_eq!(n.mem_count(), 1);
        assert_eq!(n.mems[0].liveness.len(), 1);
        assert!(n.mems[0].write_port.is_some());
    }

    #[test]
    fn module_attribution() {
        let mut b = NetlistBuilder::new();
        b.module("rob");
        let r = b.reg(0);
        let c = b.constant(0);
        b.connect_reg(r, c, None);
        let n = b.finish();
        assert_eq!(n.cells[r].module, "rob");
    }
}
