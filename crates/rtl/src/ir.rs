//! The word-level netlist IR.
//!
//! A netlist is a vector of cells in SSA form: combinational cells may only
//! reference earlier signals or register outputs; registers and memories
//! are declared first and connected later (the usual hardware-builder
//! discipline). Every signal is one 64-bit word — word-level cells are
//! exactly what the paper's RTL-IR instrumentation operates on.

/// Index of a signal (one cell output) within a netlist.
pub type SignalId = usize;

/// Index of a memory within a netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub usize);

/// One cell of the netlist. The output of cell *i* is signal *i*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    /// A constant driver.
    Const(u64),
    /// An external input port (index into the stimulus vector).
    Input(usize),
    /// Bitwise AND (taint: Policy 1).
    And(SignalId, SignalId),
    /// Bitwise OR.
    Or(SignalId, SignalId),
    /// Bitwise XOR.
    Xor(SignalId, SignalId),
    /// Bitwise NOT.
    Not(SignalId),
    /// Two's-complement addition.
    Add(SignalId, SignalId),
    /// Two's-complement subtraction.
    Sub(SignalId, SignalId),
    /// Equality comparison, 1-bit result (taint: comparison cell).
    Eq(SignalId, SignalId),
    /// Unsigned less-than, 1-bit result (taint: comparison cell).
    Lt(SignalId, SignalId),
    /// Multiplexer `sel ? then_v : else_v` (taint: Policy 2 / Table 1).
    Mux {
        sel: SignalId,
        then_v: SignalId,
        else_v: SignalId,
    },
    /// A clocked register. `d`/`en` are connected after declaration;
    /// an unconnected register holds its initial value forever.
    Reg {
        d: Option<SignalId>,
        en: Option<SignalId>,
        init: u64,
    },
    /// Combinational memory read port.
    MemRead { mem: MemId, addr: SignalId },
}

impl CellKind {
    /// True for cells with clocked state.
    pub fn is_sequential(&self) -> bool {
        matches!(self, CellKind::Reg { .. })
    }
}

/// A cell plus its (optional) diagnostic name and owning module path.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The operation.
    pub kind: CellKind,
    /// Diagnostic name (register names appear in taint censuses).
    pub name: Option<String>,
    /// Module instance path, e.g. `"rob"`; used for module-local taint
    /// statistics.
    pub module: &'static str,
}

/// A word-addressed memory declaration.
#[derive(Clone, Debug)]
pub struct MemDecl {
    /// Number of 64-bit words.
    pub words: usize,
    /// Diagnostic name.
    pub name: Option<String>,
    /// Owning module path.
    pub module: &'static str,
    /// Write port: `(wen, addr, data)` signals, connected after declaration.
    pub write_port: Option<(SignalId, SignalId, SignalId)>,
    /// `liveness_mask` attribute: one 1-bit liveness signal per slot
    /// (generic vector interface of §4.3.2). May be shorter than `words`.
    pub liveness: Vec<SignalId>,
}

/// A complete netlist.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    /// Cells in SSA order.
    pub cells: Vec<Cell>,
    /// Memories.
    pub mems: Vec<MemDecl>,
    /// Signals exposed as outputs, by name.
    pub outputs: Vec<(String, SignalId)>,
}

impl Netlist {
    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of sequential cells (registers).
    pub fn reg_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_sequential()).count()
    }

    /// Number of memories.
    pub fn mem_count(&self) -> usize {
        self.mems.len()
    }

    /// Total memory words across all memories.
    pub fn mem_words(&self) -> usize {
        self.mems.iter().map(|m| m.words).sum()
    }

    /// Number of input ports (one past the highest [`CellKind::Input`]
    /// index), i.e. the length of the stimulus vector a simulator needs.
    pub fn input_count(&self) -> usize {
        self.cells
            .iter()
            .filter_map(|c| match c.kind {
                CellKind::Input(i) => Some(i + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Looks up an output signal by name.
    pub fn output(&self, name: &str) -> Option<SignalId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    /// Validates SSA discipline: combinational cells may only reference
    /// earlier signals or register outputs; register/memory connections may
    /// reference any signal.
    ///
    /// Returns the offending cell index on failure.
    pub fn validate(&self) -> Result<(), usize> {
        let is_reg = |s: SignalId| matches!(self.cells[s].kind, CellKind::Reg { .. });
        let ok = |i: usize, s: SignalId| s < i || is_reg(s);
        for (i, c) in self.cells.iter().enumerate() {
            let valid = match c.kind {
                CellKind::Const(_) | CellKind::Input(_) | CellKind::Reg { .. } => true,
                CellKind::Not(a) => ok(i, a),
                CellKind::And(a, b)
                | CellKind::Or(a, b)
                | CellKind::Xor(a, b)
                | CellKind::Add(a, b)
                | CellKind::Sub(a, b)
                | CellKind::Eq(a, b)
                | CellKind::Lt(a, b) => ok(i, a) && ok(i, b),
                CellKind::Mux {
                    sel,
                    then_v,
                    else_v,
                } => ok(i, sel) && ok(i, then_v) && ok(i, else_v),
                CellKind::MemRead { mem, addr } => mem.0 < self.mems.len() && ok(i, addr),
            };
            if !valid {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(kind: CellKind) -> Cell {
        Cell {
            kind,
            name: None,
            module: "top",
        }
    }

    #[test]
    fn counting_helpers() {
        let n = Netlist {
            cells: vec![
                cell(CellKind::Const(1)),
                cell(CellKind::Reg {
                    d: None,
                    en: None,
                    init: 0,
                }),
                cell(CellKind::And(0, 1)),
            ],
            mems: vec![MemDecl {
                words: 8,
                name: None,
                module: "top",
                write_port: None,
                liveness: vec![],
            }],
            outputs: vec![("o".into(), 2)],
        };
        assert_eq!(n.cell_count(), 3);
        assert_eq!(n.reg_count(), 1);
        assert_eq!(n.mem_count(), 1);
        assert_eq!(n.mem_words(), 8);
        assert_eq!(n.output("o"), Some(2));
        assert_eq!(n.output("missing"), None);
    }

    #[test]
    fn validate_accepts_forward_reg_reference() {
        // Combinational cell 0 reads register 1 (declared later is fine for
        // regs — they output last cycle's value).
        let n = Netlist {
            cells: vec![
                cell(CellKind::Not(1)),
                cell(CellKind::Reg {
                    d: Some(0),
                    en: None,
                    init: 0,
                }),
            ],
            mems: vec![],
            outputs: vec![],
        };
        assert_eq!(n.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_forward_comb_reference() {
        let n = Netlist {
            cells: vec![cell(CellKind::Not(1)), cell(CellKind::Const(0))],
            mems: vec![],
            outputs: vec![],
        };
        assert_eq!(n.validate(), Err(0));
    }

    #[test]
    fn validate_rejects_bad_mem_id() {
        let n = Netlist {
            cells: vec![
                cell(CellKind::Const(0)),
                cell(CellKind::MemRead {
                    mem: MemId(3),
                    addr: 0,
                }),
            ],
            mems: vec![],
            outputs: vec![],
        };
        assert_eq!(n.validate(), Err(1));
    }
}
