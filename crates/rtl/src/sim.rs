//! Two-phase cycle simulator over (instrumented) netlists.
//!
//! Signals carry [`TWord`] two-plane values, so a single simulation run *is*
//! the paper's differential testbench: plane `a` is DUT variant 1, plane `b`
//! variant 2, and the policy's control-taint gates see cross-instance
//! differences immediately.

use dejavuzz_ift::{Census, IftMode, Policy, SinkReport, TMem, TWord};

use crate::ir::{CellKind, Netlist};

/// Simulates a netlist cycle by cycle.
#[derive(Clone, Debug)]
pub struct NetlistSim {
    netlist: Netlist,
    policy: Policy,
    values: Vec<TWord>,
    mems: Vec<TMem>,
    inputs: Vec<TWord>,
    cycle: u64,
}

impl NetlistSim {
    /// Creates a simulator in the given IFT mode.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`]. Backend-style
    /// callers that must survive a bad netlist use
    /// [`NetlistSim::try_new`].
    pub fn new(netlist: Netlist, mode: IftMode) -> Self {
        Self::try_new(netlist, mode).unwrap_or_else(|cell| panic!("invalid netlist (cell {cell})"))
    }

    /// Creates a simulator, returning the offending cell index instead of
    /// panicking when the netlist fails [`Netlist::validate`].
    pub fn try_new(netlist: Netlist, mode: IftMode) -> Result<Self, usize> {
        netlist.validate()?;
        let values = netlist
            .cells
            .iter()
            .map(|c| match c.kind {
                CellKind::Reg { init, .. } => TWord::lit(init),
                _ => TWord::lit(0),
            })
            .collect();
        let mems = netlist.mems.iter().map(|m| TMem::new(m.words)).collect();
        let n_inputs = netlist.input_count();
        Ok(NetlistSim {
            netlist,
            policy: Policy::new(mode),
            values,
            mems,
            inputs: vec![TWord::lit(0); n_inputs],
            cycle: 0,
        })
    }

    /// The IFT mode in force.
    pub fn mode(&self) -> IftMode {
        self.policy.mode()
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives input port `index` for subsequent cycles.
    pub fn set_input(&mut self, index: usize, v: TWord) {
        if index >= self.inputs.len() {
            self.inputs.resize(index + 1, TWord::lit(0));
        }
        self.inputs[index] = v;
    }

    /// Reads the current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range signal; see [`NetlistSim::try_signal`].
    pub fn signal(&self, sig: usize) -> TWord {
        self.values[sig]
    }

    /// Reads the current value of a signal, or `None` if it is out of
    /// range — the non-panicking accessor backend boundaries use.
    pub fn try_signal(&self, sig: usize) -> Option<TWord> {
        self.values.get(sig).copied()
    }

    /// Reads a named output.
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist; see
    /// [`NetlistSim::try_output`].
    pub fn output(&self, name: &str) -> TWord {
        self.try_output(name)
            .unwrap_or_else(|| panic!("no output named {name:?}"))
    }

    /// Reads a named output, or `None` if no such output exists.
    pub fn try_output(&self, name: &str) -> Option<TWord> {
        self.netlist
            .output(name)
            .and_then(|sig| self.try_signal(sig))
    }

    /// Testbench access to a memory slot.
    ///
    /// # Panics
    ///
    /// Panics on a bad memory index or slot; see
    /// [`NetlistSim::try_mem_peek`].
    pub fn mem_peek(&self, mem: usize, idx: usize) -> TWord {
        self.mems[mem].peek(idx)
    }

    /// Testbench access to a memory slot, or `None` when either index is
    /// out of range.
    pub fn try_mem_peek(&self, mem: usize, idx: usize) -> Option<TWord> {
        let m = self.mems.get(mem)?;
        if idx < m.len() {
            Some(m.peek(idx))
        } else {
            None
        }
    }

    /// Testbench store to a memory slot (image loading, secret planting).
    pub fn mem_poke(&mut self, mem: usize, idx: usize, w: TWord) {
        self.mems[mem].poke(idx, w);
    }

    /// Directly taints a register (marks it as holding sensitive data).
    pub fn taint_reg(&mut self, sig: usize) {
        assert!(
            matches!(self.netlist.cells[sig].kind, CellKind::Reg { .. }),
            "taint_reg target must be a register"
        );
        self.values[sig] = self.values[sig].fully_tainted();
    }

    /// Evaluates combinational logic, then advances the clock one edge.
    pub fn step(&mut self) {
        self.eval_comb();
        self.clock_edge();
        self.cycle += 1;
    }

    /// Evaluates combinational logic without clocking (for inspecting
    /// same-cycle outputs).
    pub fn eval_comb(&mut self) {
        let p = self.policy;
        for i in 0..self.netlist.cells.len() {
            let out = match self.netlist.cells[i].kind {
                CellKind::Const(v) => TWord::lit(v),
                CellKind::Input(idx) => self.inputs.get(idx).copied().unwrap_or(TWord::lit(0)),
                CellKind::And(a, b) => self.gate(self.values[a].and(self.values[b])),
                CellKind::Or(a, b) => self.gate(self.values[a].or(self.values[b])),
                CellKind::Xor(a, b) => self.gate(self.values[a].xor(self.values[b])),
                CellKind::Not(a) => self.gate(self.values[a].not()),
                CellKind::Add(a, b) => self.gate(self.values[a].add(self.values[b])),
                CellKind::Sub(a, b) => self.gate(self.values[a].sub(self.values[b])),
                CellKind::Eq(a, b) => p.eq(self.values[a], self.values[b]),
                CellKind::Lt(a, b) => p.lt(self.values[a], self.values[b]),
                CellKind::Mux {
                    sel,
                    then_v,
                    else_v,
                } => p.mux(self.values[sel], self.values[then_v], self.values[else_v]),
                CellKind::Reg { .. } => continue, // holds Q
                CellKind::MemRead { mem, addr } => self.mems[mem.0].read(p, self.values[addr]),
            };
            self.values[i] = out;
        }
    }

    /// Strips taints in Base mode (data-flow ops always compute taint).
    #[inline]
    fn gate(&self, w: TWord) -> TWord {
        if self.policy.mode() == IftMode::Base {
            w.untainted()
        } else {
            w
        }
    }

    fn clock_edge(&mut self) {
        let p = self.policy;
        // Registers: compute all next states, then commit (no intra-cycle
        // ordering artefacts).
        let mut next: Vec<(usize, TWord)> = Vec::new();
        for (i, c) in self.netlist.cells.iter().enumerate() {
            if let CellKind::Reg { d: Some(d), en, .. } = c.kind {
                let q = self.values[i];
                let dv = self.values[d];
                let nv = match en {
                    Some(en) => p.reg_en(self.values[en], dv, q),
                    None => {
                        if p.mode() == IftMode::Base {
                            dv.untainted()
                        } else {
                            dv
                        }
                    }
                };
                next.push((i, nv));
            }
        }
        for (i, v) in next {
            self.values[i] = v;
        }
        // Memory write ports.
        for (mi, m) in self.netlist.mems.iter().enumerate() {
            if let Some((wen, addr, data)) = m.write_port {
                let (wen, addr, data) = (self.values[wen], self.values[addr], self.values[data]);
                self.mems[mi].write(p, wen, addr, data);
            }
        }
    }

    /// Taint census over all registers and memory slots, grouped by module.
    pub fn census(&self) -> Census {
        let mut census = Census::new();
        // Group register taints by module, preserving first-seen order.
        let mut order: Vec<&'static str> = Vec::new();
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for (i, c) in self.netlist.cells.iter().enumerate() {
            if !matches!(c.kind, CellKind::Reg { .. }) {
                continue;
            }
            let pos = match order.iter().position(|m| *m == c.module) {
                Some(p) => p,
                None => {
                    order.push(c.module);
                    counts.push((0, 0));
                    order.len() - 1
                }
            };
            counts[pos].1 += 1;
            if self.values[i].is_tainted() {
                counts[pos].0 += 1;
            }
        }
        for (m, (tainted, total)) in order.iter().zip(&counts) {
            census.report_counts(m, *tainted, *total);
        }
        for (mi, m) in self.netlist.mems.iter().enumerate() {
            census.report_counts(m.module, self.mems[mi].tainted_slots(), self.mems[mi].len());
        }
        census
    }

    /// Sweeps all `liveness_mask`-annotated memories, producing sink
    /// reports for tainted slots (§4.3.2). Slots beyond the liveness vector
    /// are treated as always-live (unannotated sinks stay conservative).
    pub fn sink_reports(&self) -> Vec<SinkReport> {
        let mut out = Vec::new();
        for (mi, m) in self.netlist.mems.iter().enumerate() {
            let mem = &self.mems[mi];
            for idx in 0..mem.len() {
                let t = mem.peek(idx).t;
                if t == 0 {
                    continue;
                }
                let live = match m.liveness.get(idx) {
                    Some(&sig) => self.values[sig].either(),
                    None => true,
                };
                out.push(SinkReport {
                    module: m.module,
                    array: m.name.clone().unwrap_or_else(|| format!("mem{mi}")),
                    index: idx,
                    taint: t,
                    live,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn counter_counts() {
        let mut b = NetlistBuilder::new();
        let r = b.reg(0);
        let one = b.constant(1);
        let next = b.add(r, one);
        b.connect_reg(r, next, None);
        b.output("count", r);
        let mut sim = NetlistSim::new(b.finish(), IftMode::DiffIft);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.output("count").a, 5);
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn enabled_register_holds_without_enable() {
        let mut b = NetlistBuilder::new();
        let r = b.reg(3);
        let d = b.input(0);
        let en = b.input(1);
        b.connect_reg(r, d, Some(en));
        b.output("q", r);
        let mut sim = NetlistSim::new(b.finish(), IftMode::DiffIft);
        sim.set_input(0, TWord::lit(9));
        sim.set_input(1, TWord::lit(0));
        sim.step();
        assert_eq!(sim.output("q").a, 3, "disabled register holds");
        sim.set_input(1, TWord::lit(1));
        sim.step();
        assert_eq!(sim.output("q").a, 9, "enabled register loads");
    }

    #[test]
    fn taint_flows_through_comb_logic() {
        let mut b = NetlistBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let s = b.xor(x, y);
        b.output("s", s);
        let mut sim = NetlistSim::new(b.finish(), IftMode::DiffIft);
        sim.set_input(0, TWord::secret(1, 2));
        sim.set_input(1, TWord::lit(4));
        sim.eval_comb();
        assert!(sim.output("s").is_tainted());
        assert_eq!(sim.output("s").a, 5);
        assert_eq!(sim.output("s").b, 6);
    }

    #[test]
    fn base_mode_strips_taint() {
        let mut b = NetlistBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let s = b.add(x, y);
        b.output("s", s);
        let mut sim = NetlistSim::new(b.finish(), IftMode::Base);
        sim.set_input(0, TWord::secret(1, 2));
        sim.set_input(1, TWord::lit(4));
        sim.eval_comb();
        assert!(!sim.output("s").is_tainted());
    }

    #[test]
    fn memory_write_then_read() {
        let mut b = NetlistBuilder::new();
        let m = b.mem(8, "buf");
        let wen = b.input(0);
        let addr = b.input(1);
        let data = b.input(2);
        b.connect_mem_write(m, wen, addr, data);
        let rd = b.mem_read(m, addr);
        b.output("rd", rd);
        let mut sim = NetlistSim::new(b.finish(), IftMode::DiffIft);
        sim.set_input(0, TWord::lit(1));
        sim.set_input(1, TWord::lit(5));
        sim.set_input(2, TWord::lit(77));
        sim.step(); // write at edge
        sim.set_input(0, TWord::lit(0));
        sim.eval_comb();
        assert_eq!(sim.output("rd").a, 77);
        assert_eq!(sim.mem_peek(0, 5).a, 77);
    }

    #[test]
    fn census_groups_by_module() {
        let mut b = NetlistBuilder::new();
        b.module("rob");
        let r1 = b.reg(0);
        b.module("lsu");
        let r2 = b.reg(0);
        let c = b.constant(0);
        b.connect_reg(r1, c, None);
        b.connect_reg(r2, c, None);
        let mut sim = NetlistSim::new(b.finish(), IftMode::DiffIft);
        sim.taint_reg(r2);
        let census = sim.census();
        assert_eq!(census.module_tainted("rob"), Some(0));
        assert_eq!(census.module_tainted("lsu"), Some(1));
        assert_eq!(census.taint_sum(), 1);
    }

    #[test]
    fn sink_reports_respect_liveness() {
        let mut b = NetlistBuilder::new();
        let m = b.mem(2, "lb");
        let live0 = b.input(0);
        let live1 = b.input(1);
        b.liveness_mask(m, vec![live0, live1]);
        let mut sim = NetlistSim::new(b.finish(), IftMode::DiffIft);
        sim.mem_poke(0, 0, TWord::secret(1, 2));
        sim.mem_poke(0, 1, TWord::secret(3, 4));
        sim.set_input(0, TWord::lit(1)); // slot 0 live
        sim.set_input(1, TWord::lit(0)); // slot 1 dead
        sim.eval_comb();
        let reports = sim.sink_reports();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].exploitable());
        assert!(reports[1].residue());
    }

    #[test]
    #[should_panic(expected = "no output named")]
    fn missing_output_panics() {
        let b = NetlistBuilder::new();
        let sim = NetlistSim::new(b.finish(), IftMode::Base);
        sim.output("nope");
    }

    #[test]
    fn try_accessors_return_none_instead_of_panicking() {
        let mut b = NetlistBuilder::new();
        let m = b.mem(4, "buf");
        let r = b.reg(7);
        let c = b.constant(0);
        b.connect_reg(r, c, None);
        b.output("q", r);
        let _ = m;
        let sim = NetlistSim::new(b.finish(), IftMode::DiffIft);
        assert_eq!(sim.try_output("q").map(|w| w.a), Some(7));
        assert!(sim.try_output("nope").is_none());
        assert!(sim.try_signal(0).is_some());
        assert!(sim.try_signal(999).is_none());
        assert!(sim.try_mem_peek(0, 3).is_some());
        assert!(sim.try_mem_peek(0, 4).is_none(), "slot out of range");
        assert!(sim.try_mem_peek(5, 0).is_none(), "mem out of range");
    }

    #[test]
    fn try_new_reports_offending_cell() {
        use crate::ir::{Cell, CellKind, Netlist};
        let bad = Netlist {
            cells: vec![
                Cell {
                    kind: CellKind::Not(1),
                    name: None,
                    module: "top",
                },
                Cell {
                    kind: CellKind::Const(0),
                    name: None,
                    module: "top",
                },
            ],
            mems: vec![],
            outputs: vec![],
        };
        assert_eq!(NetlistSim::try_new(bad, IftMode::Base).err(), Some(0));
    }
}
