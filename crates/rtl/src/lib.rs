//! Netlist-level substrate: the RTL IR the paper's Yosys passes operate on,
//! a cycle simulator, and the CellIFT / diffIFT instrumentation passes.
//!
//! The paper instruments the DUT "at the RTL IR level and thus supports
//! word-level cells and non-flattened memories", whereas CellIFT
//! "instruments at the cell level, \[and\] requires flattening all memory,
//! resulting in a significantly increased compilation time" (§6.3,
//! Table 4). This crate reproduces that asymmetry faithfully:
//!
//! * [`ir`] — a word-level netlist IR (combinational cells, enabled
//!   registers, word-addressed memories, `liveness_mask` attributes),
//! * [`builder`] — a small "Chisel-lite" construction API,
//! * [`mod@instrument`] — the two passes. The diffIFT pass shadows cells
//!   word-for-word; the CellIFT pass first *flattens every memory* into
//!   per-slot registers with address-decode mux trees, exactly the cost
//!   blow-up the paper measures,
//! * [`sim`] — a two-phase cycle simulator over (instrumented) netlists
//!   whose signals carry [`dejavuzz_ift::TWord`] two-plane values, making
//!   the same simulator serve as the paper's differential testbench,
//! * [`examples`] — the Figure 2 RoB-entry circuit and synthetic
//!   BOOM/XiangShan-scale netlists for the Table 4 compile-time rows.

pub mod autoannotate;
pub mod builder;
pub mod examples;
pub mod instrument;
pub mod ir;
pub mod sim;

pub use builder::NetlistBuilder;
pub use instrument::{instrument, InstrumentReport};
pub use ir::{CellKind, MemId, Netlist, SignalId};
pub use sim::NetlistSim;
