//! Automatic taint-liveness annotation — the paper's stated future work.
//!
//! §7: "Limited by the loss of semantic information during the design
//! synthesis to RTL, DejaVuzz currently relies on manual taint liveness
//! annotations. We leave the automatic taint liveness annotation (such as
//! using type-safe hardware description languages or large language
//! models) for future work."
//!
//! This pass implements the structural half of that future work on the
//! netlist IR: for every memory (a candidate sink array), it searches the
//! design for a register vector that *behaves like* the array's validity
//! state — a register (or register set) whose value gates writes to the
//! memory (its write-enable cone) or whose name matches the `*_valid`
//! naming convention real designs overwhelmingly follow. Matches become
//! `liveness_mask` annotations identical to hand-written ones.

use crate::ir::{CellKind, MemId, Netlist, SignalId};

/// Why a liveness signal was matched to a sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchReason {
    /// The signal's name ends in `_valid`/`_valids`/`valid_vec` and shares
    /// a name stem with the array.
    NamingConvention,
    /// The signal drives the array's write-enable cone (writes to the
    /// array are gated by it).
    WriteEnableCone,
}

/// One inferred annotation.
#[derive(Clone, Debug)]
pub struct InferredAnnotation {
    /// The annotated memory.
    pub mem: MemId,
    /// Memory name (diagnostics).
    pub mem_name: String,
    /// The liveness signal.
    pub signal: SignalId,
    /// Signal name if present.
    pub signal_name: Option<String>,
    /// Why it matched.
    pub reason: MatchReason,
}

/// Infers `liveness_mask` annotations for every memory in the netlist.
///
/// Returns the inferred annotations; call [`apply`] to install them
/// (flat masks: every slot guarded by the same scalar signal — the
/// per-slot generic vector interface of §4.3.2 needs designer intent that
/// structure alone cannot recover, which is exactly why the paper calls
/// the general problem future work).
pub fn infer(netlist: &Netlist) -> Vec<InferredAnnotation> {
    let mut out = Vec::new();
    for (mi, mem) in netlist.mems.iter().enumerate() {
        let mem_name = mem.name.clone().unwrap_or_else(|| format!("mem{mi}"));
        // 1. Naming convention: a register named like "<stem>_valid*".
        let stem = mem_name.split('_').next().unwrap_or(&mem_name);
        let by_name = netlist.cells.iter().enumerate().find(|(_, c)| {
            matches!(c.kind, CellKind::Reg { .. })
                && c.name.as_deref().is_some_and(|n| {
                    (n.ends_with("_valid") || n.ends_with("_valids") || n.ends_with("valid_vec"))
                        && (n.contains(stem) || c.module == mem.module)
                })
        });
        if let Some((sig, c)) = by_name {
            out.push(InferredAnnotation {
                mem: MemId(mi),
                mem_name,
                signal: sig,
                signal_name: c.name.clone(),
                reason: MatchReason::NamingConvention,
            });
            continue;
        }
        // 2. Write-enable cone: a register feeding (possibly through AND
        // gates) the memory's write-enable.
        if let Some((wen, _, _)) = mem.write_port {
            if let Some(sig) = find_reg_in_cone(netlist, wen, 4) {
                out.push(InferredAnnotation {
                    mem: MemId(mi),
                    mem_name,
                    signal: sig,
                    signal_name: netlist.cells[sig].name.clone(),
                    reason: MatchReason::WriteEnableCone,
                });
            }
        }
    }
    out
}

/// Walks backwards through AND/OR/NOT/MUX-select cells from `sig`, looking
/// for a register within `depth` steps.
fn find_reg_in_cone(netlist: &Netlist, sig: SignalId, depth: usize) -> Option<SignalId> {
    if depth == 0 {
        return None;
    }
    match netlist.cells[sig].kind {
        CellKind::Reg { .. } => Some(sig),
        CellKind::And(a, b) | CellKind::Or(a, b) => find_reg_in_cone(netlist, a, depth - 1)
            .or_else(|| find_reg_in_cone(netlist, b, depth - 1)),
        CellKind::Not(a) => find_reg_in_cone(netlist, a, depth - 1),
        CellKind::Mux { sel, .. } => find_reg_in_cone(netlist, sel, depth - 1),
        CellKind::Eq(a, b) | CellKind::Lt(a, b) => find_reg_in_cone(netlist, a, depth - 1)
            .or_else(|| find_reg_in_cone(netlist, b, depth - 1)),
        _ => None,
    }
}

/// Installs the inferred annotations into the netlist (flat masks).
pub fn apply(netlist: &mut Netlist, annotations: &[InferredAnnotation]) {
    for a in annotations {
        let words = netlist.mems[a.mem.0].words;
        netlist.mems[a.mem.0].liveness = vec![a.signal; words];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::NetlistSim;
    use dejavuzz_ift::{IftMode, TWord};

    /// An LFB-shaped design: a data memory guarded by an `mshr_valid`
    /// register.
    fn lfb_netlist(named: bool) -> Netlist {
        let mut b = NetlistBuilder::new();
        b.module("lfb");
        let valid = b.reg(0);
        if named {
            b.name(valid, "lfb_mshr_valid");
        }
        let set = b.input(0);
        b.connect_reg(valid, set, None);
        let m = b.mem(8, "lfb_data");
        let addr = b.input(1);
        let data = b.input(2);
        // Write-enable gated by the valid register.
        let wen_in = b.input(3);
        let wen = b.and(wen_in, valid);
        b.connect_mem_write(m, wen, addr, data);
        b.finish()
    }

    #[test]
    fn naming_convention_match() {
        let n = lfb_netlist(true);
        let anns = infer(&n);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].reason, MatchReason::NamingConvention);
        assert_eq!(anns[0].signal_name.as_deref(), Some("lfb_mshr_valid"));
    }

    #[test]
    fn write_enable_cone_fallback() {
        let n = lfb_netlist(false);
        let anns = infer(&n);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].reason, MatchReason::WriteEnableCone);
    }

    #[test]
    fn applied_annotation_drives_sink_liveness() {
        let mut n = lfb_netlist(true);
        let anns = infer(&n);
        apply(&mut n, &anns);
        let mut sim = NetlistSim::new(n, IftMode::DiffIft);
        // Plant a tainted secret into the buffer while valid = 0.
        sim.mem_poke(0, 3, TWord::secret(0xAA, 0x55));
        sim.set_input(0, TWord::lit(0)); // valid register input low
        sim.step();
        let reports = sim.sink_reports();
        assert_eq!(reports.len(), 1);
        assert!(
            reports[0].residue(),
            "invalid buffer => residue, not exploitable"
        );
        // Raise valid: the same taint becomes exploitable.
        sim.set_input(0, TWord::lit(1));
        sim.step();
        let reports = sim.sink_reports();
        assert!(reports[0].exploitable());
    }

    #[test]
    fn memory_without_state_register_gets_no_annotation() {
        let mut b = NetlistBuilder::new();
        let m = b.mem(4, "scratch");
        let wen = b.input(0);
        let addr = b.input(1);
        let data = b.input(2);
        b.connect_mem_write(m, wen, addr, data);
        let n = b.finish();
        assert!(infer(&n).is_empty(), "inputs are not state registers");
    }
}
