//! DejaVuzz fleet layer: running *many* campaigns as one live fleet.
//!
//! The core crate's [`dejavuzz::gossip`] module defines the exchange —
//! [`dejavuzz::gossip::GossipFrame`]s published and drained at round
//! boundaries through a [`dejavuzz::gossip::GossipLink`]. This crate
//! supplies everything around that seam:
//!
//! * [`gossip`] — the in-process broadcast [`gossip::Bus`]: every
//!   campaign owned by one `dejavuzz-serve` process gets a
//!   [`gossip::BusLink`] and frames fan out to all other links with no
//!   sockets involved ([`gossip::mesh`] builds the whole fleet wiring in
//!   one call).
//! * [`transport`] — the async observer transport:
//!   [`transport::ChannelObserver`] forwards every campaign event onto a
//!   bounded channel so consumers (aggregators, sockets, UIs) run off
//!   the executor's commit path, and [`transport::SocketObserver`] ships
//!   the same events as JSON lines over a Unix stream — byte-identical
//!   to [`dejavuzz::observer::JsonLinesObserver`]'s output (asserted by
//!   this crate's tests).
//! * [`serve`] — the `dejavuzz-serve` daemon's engine:
//!   [`serve::FleetState`] aggregates per-shard telemetry plus the
//!   fleet-wide coverage union, and [`serve::FleetHub`] answers
//!   `status`/`coverage`/`shards`/`telemetry` queries over a Unix
//!   socket and relays external `dejavuzz-fuzz --peers unix:PATH`
//!   clients onto the in-process bus.
//!
//! The `dejavuzz-serve` binary wires the three together: it owns N
//! campaigns, meshes their gossip links, aggregates their event streams
//! and serves the result.

pub mod gossip;
pub mod serve;
pub mod transport;

pub use gossip::{mesh, Bus, BusLink};
pub use serve::{FleetHub, FleetState, ShardStatus};
#[cfg(unix)]
pub use transport::SocketObserver;
pub use transport::{CampaignEvent, ChannelObserver};
