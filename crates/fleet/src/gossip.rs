//! The in-process gossip bus: broadcast fan-out for campaigns that live
//! in one `dejavuzz-serve` process.
//!
//! A [`Bus`] is a set of subscriber inboxes behind one mutex. Each
//! campaign (and each socket relay bridging an external peer) takes a
//! [`BusLink`]; publishing clones the frame into every *other*
//! subscriber's inbox, draining empties the subscriber's own. The lock
//! is held only for the queue push/takes — publishes never wait on
//! peers, so the executor's commit path stays O(delta) per boundary.
//!
//! Frames never expire on the bus: a shard that gossips rarely (or
//! joined late) still receives everything published since its link was
//! created, in publish order. Dropping a link unsubscribes it, so a
//! finished campaign does not accumulate frames forever.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use dejavuzz::gossip::{shared_link, GossipFrame, GossipLink, SharedGossipLink};

/// One subscriber's pending frames.
struct Inbox {
    id: usize,
    queue: VecDeque<GossipFrame>,
}

#[derive(Default)]
struct BusState {
    next_id: usize,
    inboxes: Vec<Inbox>,
}

/// An in-process gossip broadcast domain. Cheap to clone (all clones
/// share the subscriber set); see the module docs.
#[derive(Clone, Default)]
pub struct Bus {
    state: Arc<Mutex<BusState>>,
}

impl Bus {
    /// An empty bus with no subscribers.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Subscribes a new link. Frames published by *other* links from
    /// this point on accumulate in its inbox until drained; the link
    /// unsubscribes when dropped.
    pub fn link(&self) -> BusLink {
        let mut state = self.state.lock().expect("gossip bus poisoned");
        let id = state.next_id;
        state.next_id += 1;
        state.inboxes.push(Inbox {
            id,
            queue: VecDeque::new(),
        });
        BusLink {
            state: Arc::clone(&self.state),
            id,
        }
    }

    /// Current subscriber count (diagnostics; the `dejavuzz-serve`
    /// status report includes it).
    pub fn subscribers(&self) -> usize {
        self.state
            .lock()
            .expect("gossip bus poisoned")
            .inboxes
            .len()
    }
}

/// One subscriber's handle on a [`Bus`]. Implements
/// [`GossipLink`], so it plugs straight into
/// [`dejavuzz::builder::CampaignBuilder::gossip`] (via
/// [`dejavuzz::gossip::shared_link`]).
pub struct BusLink {
    state: Arc<Mutex<BusState>>,
    id: usize,
}

impl GossipLink for BusLink {
    fn publish(&mut self, frame: &GossipFrame) {
        let mut state = self.state.lock().expect("gossip bus poisoned");
        for inbox in &mut state.inboxes {
            if inbox.id != self.id {
                inbox.queue.push_back(frame.clone());
            }
        }
    }

    fn drain(&mut self) -> Vec<GossipFrame> {
        let mut state = self.state.lock().expect("gossip bus poisoned");
        match state.inboxes.iter_mut().find(|i| i.id == self.id) {
            Some(inbox) => inbox.queue.drain(..).collect(),
            None => Vec::new(),
        }
    }
}

impl Drop for BusLink {
    fn drop(&mut self) {
        if let Ok(mut state) = self.state.lock() {
            state.inboxes.retain(|i| i.id != self.id);
        }
    }
}

/// Wires an `n`-shard in-process fleet in one call: one [`Bus`], one
/// [`BusLink`] per shard, each already wrapped for
/// [`dejavuzz::builder::CampaignBuilder::gossip`].
pub fn mesh(n: usize) -> Vec<SharedGossipLink> {
    let bus = Bus::new();
    (0..n).map(|_| shared_link(bus.link())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz::corpus::CorpusEntry;
    use dejavuzz::gen::{Seed, WindowType};
    use dejavuzz_ift::CoveragePoint;

    fn frame(shard: u32, n: usize) -> GossipFrame {
        GossipFrame {
            shard,
            iterations: n,
            delta: (0..n)
                .map(|i| CoveragePoint {
                    module: "bus_test",
                    index: i + 1,
                })
                .collect(),
            favoured: vec![CorpusEntry {
                seed: Seed::new(WindowType::ALL[0], shard as u64),
                gain: n,
                schedules: 0,
            }],
        }
    }

    #[test]
    fn publishes_fan_out_to_every_other_link() {
        let bus = Bus::new();
        let (mut a, mut b, mut c) = (bus.link(), bus.link(), bus.link());
        a.publish(&frame(0, 1));
        assert!(a.drain().is_empty(), "a publisher never hears itself");
        assert_eq!(b.drain(), vec![frame(0, 1)]);
        assert_eq!(c.drain(), vec![frame(0, 1)]);
        assert!(b.drain().is_empty(), "drains consume the inbox");
    }

    #[test]
    fn frames_queue_in_publish_order_until_drained() {
        let bus = Bus::new();
        let (mut a, mut b) = (bus.link(), bus.link());
        a.publish(&frame(0, 1));
        a.publish(&frame(0, 2));
        assert_eq!(b.drain(), vec![frame(0, 1), frame(0, 2)]);
    }

    #[test]
    fn dropped_links_unsubscribe() {
        let bus = Bus::new();
        let mut a = bus.link();
        let b = bus.link();
        assert_eq!(bus.subscribers(), 2);
        drop(b);
        assert_eq!(bus.subscribers(), 1);
        // Publishing into a bus whose only other subscriber left is fine.
        a.publish(&frame(0, 3));
        let mut c = bus.link();
        assert!(
            c.drain().is_empty(),
            "a late subscriber does not see frames published before it joined"
        );
    }

    #[test]
    fn mesh_interconnects_n_shards() {
        let links = mesh(3);
        links[0].lock().unwrap().publish(&frame(0, 2));
        assert_eq!(links[1].lock().unwrap().drain(), vec![frame(0, 2)]);
        assert_eq!(links[2].lock().unwrap().drain(), vec![frame(0, 2)]);
        assert!(links[0].lock().unwrap().drain().is_empty());
    }
}
