//! Async observer transport: campaign events off the commit path.
//!
//! [`dejavuzz::observer::CampaignObserver`] implementations run inline
//! at the executor's commit points — cheap for counters, wrong for
//! anything that might block (aggregation under a fleet-wide lock, a
//! socket write, a UI). [`ChannelObserver`] decouples them: it converts
//! each borrowed event into an owned [`CampaignEvent`] and sends it down
//! a *bounded* channel, so the consumer runs on its own thread and the
//! only way the commit path stalls is a consumer that is persistently
//! slower than the campaign (backpressure, never unbounded memory).
//!
//! [`SocketObserver`] is the cross-process form: the same channel, with
//! a built-in writer thread serialising every event as one JSON line —
//! byte-identical to [`dejavuzz::observer::JsonLinesObserver`]'s output
//! for the same event (asserted by the tests below) — over a Unix
//! stream.

use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, OnceLock};

use dejavuzz::observer::{
    json_str, BugFound, CampaignFinished, CampaignObserver, CoverageGained, PeerDeltaImported,
    RoundStarted, SeedImported, SlotCommitted, SnapshotWritten,
};
use dejavuzz_ift::CoveragePoint;

/// An owned campaign event: every [`CampaignObserver`] callback's
/// payload, detached from the executor's borrows so it can cross
/// threads. The borrowed-slice events ([`CoverageGained`],
/// [`SnapshotWritten`], [`CampaignFinished`]) are flattened to owned
/// fields; the already-owned event structs embed directly.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignEvent {
    /// See [`RoundStarted`].
    RoundStarted(RoundStarted),
    /// See [`SlotCommitted`].
    SlotCommitted(SlotCommitted),
    /// See [`CoverageGained`] — with the fresh points owned.
    CoverageGained {
        /// The contributing slot.
        slot: usize,
        /// The newly covered points, in commit order.
        points: Vec<CoveragePoint>,
        /// Global coverage after folding them in.
        total_points: usize,
    },
    /// See [`BugFound`].
    BugFound(BugFound),
    /// See [`SnapshotWritten`] — with the path owned.
    SnapshotWritten {
        /// Where the checkpoint was written.
        path: PathBuf,
        /// Iterations completed at the checkpoint.
        iterations: usize,
        /// Periodic mid-run checkpoint or the end-of-run one.
        periodic: bool,
    },
    /// See [`PeerDeltaImported`].
    PeerDeltaImported(PeerDeltaImported),
    /// See [`SeedImported`].
    SeedImported(SeedImported),
    /// See [`CampaignFinished`] — flattened to the fields the JSON
    /// telemetry stream reports (wall-clock deliberately excluded, like
    /// the JSON observer).
    CampaignFinished {
        /// Iterations executed.
        iterations: usize,
        /// Total RTL simulations spent.
        sim_runs: usize,
        /// Total simulated cycles.
        sim_cycles: u64,
        /// Final coverage points.
        coverage_points: usize,
        /// Seeds the corpus retained.
        corpus_retained: usize,
        /// Seeds the corpus evicted for capacity.
        corpus_evicted: usize,
        /// Iterations aborted by a backend failure.
        failed_runs: usize,
        /// Deduplicated bug count.
        bugs: usize,
        /// Iteration of the first bug, if any.
        first_bug: Option<usize>,
    },
}

impl CampaignEvent {
    /// The event as one JSON object — byte-identical to the line
    /// [`dejavuzz::observer::JsonLinesObserver`] writes for the same
    /// event (pinned by this module's tests, so the two serialisers
    /// cannot drift apart silently).
    pub fn to_json(&self) -> String {
        match self {
            CampaignEvent::RoundStarted(ev) => format!(
                "{{\"event\":\"round_started\",\"first_slot\":{},\"slots\":{},\"gain_samples\":{}}}",
                ev.first_slot, ev.slots, ev.gain_threshold_samples
            ),
            CampaignEvent::SlotCommitted(ev) => {
                let error = match &ev.error {
                    Some(e) => json_str(e),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"event\":\"slot_committed\",\"slot\":{},\"stream\":{},\"window\":{},\
                     \"triggered\":{},\"to\":{},\"eto\":{},\"sim_runs\":{},\"final_gain\":{},\
                     \"fresh_points\":{},\"total_points\":{},\"error\":{}}}",
                    ev.slot,
                    ev.stream,
                    json_str(ev.window_type.name()),
                    ev.triggered,
                    ev.to,
                    ev.eto,
                    ev.sim_runs,
                    ev.final_gain,
                    ev.fresh_points,
                    ev.total_points,
                    error
                )
            }
            CampaignEvent::CoverageGained {
                slot,
                points,
                total_points,
            } => format!(
                "{{\"event\":\"coverage_gained\",\"slot\":{},\"gained\":{},\"total_points\":{}}}",
                slot,
                points.len(),
                total_points
            ),
            CampaignEvent::BugFound(ev) => format!(
                "{{\"event\":\"bug_found\",\"slot\":{},\"core\":{},\"attack\":{},\
                 \"window_class\":{},\"component\":{},\"iteration\":{}}}",
                ev.slot,
                json_str(ev.bug.core),
                json_str(ev.bug.attack.name()),
                json_str(ev.bug.window_type.table5_class()),
                json_str(ev.bug.channel.component()),
                ev.bug.iteration
            ),
            CampaignEvent::SnapshotWritten {
                path,
                iterations,
                periodic,
            } => format!(
                "{{\"event\":\"snapshot_written\",\"path\":{},\"iterations\":{},\"periodic\":{}}}",
                json_str(&path.display().to_string()),
                iterations,
                periodic
            ),
            CampaignEvent::PeerDeltaImported(ev) => format!(
                "{{\"event\":\"peer_delta_imported\",\"from_shard\":{},\"peer_iterations\":{},\
                 \"boundary\":{},\"points\":{},\"fresh_points\":{},\"total_points\":{}}}",
                ev.from_shard,
                ev.peer_iterations,
                ev.boundary,
                ev.points,
                ev.fresh_points,
                ev.total_points
            ),
            CampaignEvent::SeedImported(ev) => format!(
                "{{\"event\":\"seed_imported\",\"from_shard\":{},\"boundary\":{},\"window\":{},\
                 \"entropy\":{},\"gain\":{}}}",
                ev.from_shard,
                ev.boundary,
                json_str(ev.window_type.name()),
                ev.entropy,
                ev.gain
            ),
            CampaignEvent::CampaignFinished {
                iterations,
                sim_runs,
                sim_cycles,
                coverage_points,
                corpus_retained,
                corpus_evicted,
                failed_runs,
                bugs,
                first_bug,
            } => format!(
                "{{\"event\":\"campaign_finished\",\"iterations\":{},\"sim_runs\":{},\
                 \"sim_cycles\":{},\"coverage_points\":{},\"corpus_retained\":{},\
                 \"corpus_evicted\":{},\"failed_runs\":{},\"bugs\":{},\"first_bug\":{}}}",
                iterations,
                sim_runs,
                sim_cycles,
                coverage_points,
                corpus_retained,
                corpus_evicted,
                failed_runs,
                bugs,
                match first_bug {
                    Some(i) => i.to_string(),
                    None => "null".to_string(),
                }
            ),
        }
    }
}

/// Forwards every campaign event, owned, down a bounded channel. Create
/// with [`ChannelObserver::channel`]; the receiving side drains on its
/// own thread. A full channel blocks the commit path (bounded
/// backpressure — events are never dropped); a dropped receiver makes
/// every further send a silent no-op so a dead consumer cannot wedge
/// the campaign.
pub struct ChannelObserver {
    tx: SyncSender<CampaignEvent>,
}

impl ChannelObserver {
    /// An observer/receiver pair over a channel buffering at most
    /// `capacity` in-flight events.
    pub fn channel(capacity: usize) -> (Self, Receiver<CampaignEvent>) {
        let (tx, rx) = sync_channel(capacity);
        (ChannelObserver { tx }, rx)
    }

    fn forward(&self, ev: CampaignEvent) {
        // The send blocks when the bounded channel is full, i.e. when
        // the consumer lags the campaign — that blocked time *is* the
        // observer fan-out lag, so time exactly it. Off the commit
        // path's state: the instrument is write-only.
        let (lag, events) = fanout_instruments();
        let span = dejavuzz_telemetry::Timer::start(lag);
        let _ = self.tx.send(ev);
        span.finish();
        events.inc();
    }
}

/// The transport's instruments in the process-global registry:
/// `(fan-out lag histogram, events-forwarded counter)`.
fn fanout_instruments() -> (
    &'static dejavuzz_telemetry::Histogram,
    &'static dejavuzz_telemetry::Counter,
) {
    static INSTRUMENTS: OnceLock<(
        Arc<dejavuzz_telemetry::Histogram>,
        Arc<dejavuzz_telemetry::Counter>,
    )> = OnceLock::new();
    let (lag, events) = INSTRUMENTS.get_or_init(|| {
        let r = dejavuzz_telemetry::global();
        (
            r.histogram(
                "dejavuzz_observer_fanout_nanos",
                "Time the commit path spent handing one event to the observer channel \
                 (blocked sends are consumer lag), nanoseconds",
            ),
            r.counter(
                "dejavuzz_observer_events_total",
                "Campaign events forwarded through the channel observer",
            ),
        )
    });
    (lag, events)
}

impl CampaignObserver for ChannelObserver {
    fn round_started(&mut self, ev: &RoundStarted) {
        self.forward(CampaignEvent::RoundStarted(*ev));
    }

    fn slot_committed(&mut self, ev: &SlotCommitted) {
        self.forward(CampaignEvent::SlotCommitted(ev.clone()));
    }

    fn coverage_gained(&mut self, ev: &CoverageGained<'_>) {
        self.forward(CampaignEvent::CoverageGained {
            slot: ev.slot,
            points: ev.points.to_vec(),
            total_points: ev.total_points,
        });
    }

    fn bug_found(&mut self, ev: &BugFound) {
        self.forward(CampaignEvent::BugFound(ev.clone()));
    }

    fn snapshot_written(&mut self, ev: &SnapshotWritten<'_>) {
        self.forward(CampaignEvent::SnapshotWritten {
            path: ev.path.to_path_buf(),
            iterations: ev.iterations,
            periodic: ev.periodic,
        });
    }

    fn peer_delta_imported(&mut self, ev: &PeerDeltaImported) {
        self.forward(CampaignEvent::PeerDeltaImported(*ev));
    }

    fn seed_imported(&mut self, ev: &SeedImported) {
        self.forward(CampaignEvent::SeedImported(*ev));
    }

    fn campaign_finished(&mut self, ev: &CampaignFinished<'_>) {
        let stats = &ev.report.stats;
        self.forward(CampaignEvent::CampaignFinished {
            iterations: stats.iterations,
            sim_runs: stats.sim_runs,
            sim_cycles: stats.sim_cycles,
            coverage_points: stats.coverage(),
            corpus_retained: ev.report.corpus_retained,
            corpus_evicted: ev.report.corpus_evicted,
            failed_runs: stats.failed_runs,
            bugs: stats.bugs.len(),
            first_bug: stats.first_bug_iteration,
        });
    }
}

/// Ships campaign events as JSON lines over a Unix stream: a
/// [`ChannelObserver`] whose receiver is a built-in writer thread. The
/// commit path never touches the socket; a broken socket warns once on
/// stderr and the writer discards further events (the campaign itself
/// is unaffected). Dropping the observer closes the channel, flushes
/// what is queued and joins the writer.
#[cfg(unix)]
pub use unix::SocketObserver;

#[cfg(unix)]
mod unix {
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    use std::path::Path;
    use std::thread::JoinHandle;

    use dejavuzz::observer::{
        BugFound, CampaignFinished, CampaignObserver, CoverageGained, PeerDeltaImported,
        RoundStarted, SeedImported, SlotCommitted, SnapshotWritten,
    };

    use super::ChannelObserver;

    /// See the re-export's docs in [`super`].
    pub struct SocketObserver {
        chan: Option<ChannelObserver>,
        writer: Option<JoinHandle<()>>,
    }

    impl SocketObserver {
        /// Connects to a Unix socket and streams events to it, buffering
        /// at most `capacity` in-flight events.
        pub fn connect(path: &Path, capacity: usize) -> std::io::Result<Self> {
            Ok(SocketObserver::from_stream(
                UnixStream::connect(path)?,
                capacity,
            ))
        }

        /// Streams events over an already-connected stream (socketpairs,
        /// tests, hub-accepted connections).
        pub fn from_stream(mut stream: UnixStream, capacity: usize) -> Self {
            let (chan, rx) = ChannelObserver::channel(capacity);
            let writer = std::thread::spawn(move || {
                let mut alive = true;
                while let Ok(ev) = rx.recv() {
                    if alive && writeln!(stream, "{}", ev.to_json()).is_err() {
                        eprintln!(
                            "dejavuzz-fleet: telemetry socket write failed; \
                             discarding further events"
                        );
                        alive = false;
                    }
                }
                if alive {
                    let _ = stream.flush();
                }
            });
            SocketObserver {
                chan: Some(chan),
                writer: Some(writer),
            }
        }

        fn chan(&mut self) -> &mut ChannelObserver {
            self.chan.as_mut().expect("channel lives until drop")
        }
    }

    impl CampaignObserver for SocketObserver {
        fn round_started(&mut self, ev: &RoundStarted) {
            self.chan().round_started(ev);
        }

        fn slot_committed(&mut self, ev: &SlotCommitted) {
            self.chan().slot_committed(ev);
        }

        fn coverage_gained(&mut self, ev: &CoverageGained<'_>) {
            self.chan().coverage_gained(ev);
        }

        fn bug_found(&mut self, ev: &BugFound) {
            self.chan().bug_found(ev);
        }

        fn snapshot_written(&mut self, ev: &SnapshotWritten<'_>) {
            self.chan().snapshot_written(ev);
        }

        fn peer_delta_imported(&mut self, ev: &PeerDeltaImported) {
            self.chan().peer_delta_imported(ev);
        }

        fn seed_imported(&mut self, ev: &SeedImported) {
            self.chan().seed_imported(ev);
        }

        fn campaign_finished(&mut self, ev: &CampaignFinished<'_>) {
            self.chan().campaign_finished(ev);
        }
    }

    impl Drop for SocketObserver {
        fn drop(&mut self) {
            // Closing the sender ends the writer's recv loop after the
            // queue drains; joining guarantees every event reached the
            // socket (or the one-time failure warning fired) before the
            // campaign thread moves on.
            drop(self.chan.take());
            if let Some(writer) = self.writer.take() {
                let _ = writer.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz::gen::WindowType;
    use dejavuzz::observer::JsonLinesObserver;

    fn sample_events() -> Vec<CampaignEvent> {
        vec![
            CampaignEvent::RoundStarted(RoundStarted {
                first_slot: 0,
                slots: 8,
                gain_threshold_samples: 3,
            }),
            CampaignEvent::SlotCommitted(SlotCommitted {
                slot: 0,
                stream: 1,
                window_type: WindowType::ALL[0],
                triggered: true,
                to: 5,
                eto: 2,
                sim_runs: 4,
                final_gain: 3,
                fresh_points: 2,
                total_points: 2,
                error: Some("i/o \"late\"".into()),
            }),
            CampaignEvent::CoverageGained {
                slot: 0,
                points: vec![
                    CoveragePoint {
                        module: "rob",
                        index: 1,
                    },
                    CoveragePoint {
                        module: "lsu",
                        index: 2,
                    },
                ],
                total_points: 2,
            },
            CampaignEvent::SnapshotWritten {
                path: PathBuf::from("/tmp/c.snap"),
                iterations: 8,
                periodic: true,
            },
            CampaignEvent::PeerDeltaImported(PeerDeltaImported {
                from_shard: 3,
                peer_iterations: 40,
                boundary: 8,
                points: 5,
                fresh_points: 4,
                total_points: 6,
            }),
            CampaignEvent::SeedImported(SeedImported {
                from_shard: 3,
                boundary: 8,
                window_type: WindowType::ALL[1],
                entropy: 77,
                gain: 9,
            }),
        ]
    }

    /// The owned serialiser and [`JsonLinesObserver`] must never drift:
    /// replaying each owned event through the observer yields exactly
    /// `to_json()` plus the newline.
    #[test]
    fn to_json_matches_json_lines_observer_byte_for_byte() {
        for ev in sample_events() {
            let mut sink = Vec::new();
            {
                let mut obs = JsonLinesObserver::new(&mut sink);
                match &ev {
                    CampaignEvent::RoundStarted(e) => obs.round_started(e),
                    CampaignEvent::SlotCommitted(e) => obs.slot_committed(e),
                    CampaignEvent::CoverageGained {
                        slot,
                        points,
                        total_points,
                    } => obs.coverage_gained(&CoverageGained {
                        slot: *slot,
                        points,
                        total_points: *total_points,
                    }),
                    CampaignEvent::BugFound(e) => obs.bug_found(e),
                    CampaignEvent::SnapshotWritten {
                        path,
                        iterations,
                        periodic,
                    } => obs.snapshot_written(&SnapshotWritten {
                        path,
                        iterations: *iterations,
                        periodic: *periodic,
                    }),
                    CampaignEvent::PeerDeltaImported(e) => obs.peer_delta_imported(e),
                    CampaignEvent::SeedImported(e) => obs.seed_imported(e),
                    CampaignEvent::CampaignFinished { .. } => unreachable!("not sampled"),
                }
            }
            assert_eq!(
                String::from_utf8(sink).unwrap(),
                format!("{}\n", ev.to_json()),
                "owned serialiser drifted for {ev:?}"
            );
        }
    }

    /// The campaign_finished JSON (flattened fields) matches the
    /// observer's rendering of a null first_bug.
    #[test]
    fn campaign_finished_json_renders_null_first_bug() {
        let ev = CampaignEvent::CampaignFinished {
            iterations: 16,
            sim_runs: 64,
            sim_cycles: 4096,
            coverage_points: 21,
            corpus_retained: 5,
            corpus_evicted: 1,
            failed_runs: 0,
            bugs: 0,
            first_bug: None,
        };
        assert_eq!(
            ev.to_json(),
            "{\"event\":\"campaign_finished\",\"iterations\":16,\"sim_runs\":64,\
             \"sim_cycles\":4096,\"coverage_points\":21,\"corpus_retained\":5,\
             \"corpus_evicted\":1,\"failed_runs\":0,\"bugs\":0,\"first_bug\":null}"
        );
    }

    #[test]
    fn channel_observer_forwards_events_in_order() {
        let (mut obs, rx) = ChannelObserver::channel(16);
        obs.round_started(&RoundStarted {
            first_slot: 0,
            slots: 4,
            gain_threshold_samples: 0,
        });
        obs.peer_delta_imported(&PeerDeltaImported {
            from_shard: 1,
            peer_iterations: 4,
            boundary: 4,
            points: 2,
            fresh_points: 2,
            total_points: 9,
        });
        drop(obs);
        let got: Vec<CampaignEvent> = rx.iter().collect();
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], CampaignEvent::RoundStarted(_)));
        assert!(matches!(
            got[1],
            CampaignEvent::PeerDeltaImported(PeerDeltaImported { from_shard: 1, .. })
        ));
    }

    #[test]
    fn dropped_receiver_does_not_wedge_the_observer() {
        let (mut obs, rx) = ChannelObserver::channel(1);
        drop(rx);
        for _ in 0..8 {
            obs.round_started(&RoundStarted {
                first_slot: 0,
                slots: 1,
                gain_threshold_samples: 0,
            });
        }
    }

    #[cfg(unix)]
    #[test]
    fn socket_observer_writes_json_lines_over_a_socketpair() {
        use std::io::Read;
        use std::os::unix::net::UnixStream;

        let (ours, mut theirs) = UnixStream::pair().unwrap();
        let mut obs = SocketObserver::from_stream(ours, 16);
        let events = sample_events();
        obs.round_started(&RoundStarted {
            first_slot: 0,
            slots: 8,
            gain_threshold_samples: 3,
        });
        obs.peer_delta_imported(&PeerDeltaImported {
            from_shard: 3,
            peer_iterations: 40,
            boundary: 8,
            points: 5,
            fresh_points: 4,
            total_points: 6,
        });
        drop(obs); // joins the writer: everything queued is on the wire
        let mut wire = String::new();
        theirs.read_to_string(&mut wire).unwrap();
        assert_eq!(
            wire,
            format!("{}\n{}\n", events[0].to_json(), events[4].to_json())
        );
    }
}
