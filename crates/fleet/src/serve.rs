//! The `dejavuzz-serve` engine: fleet-wide aggregation and the query /
//! relay socket.
//!
//! [`FleetState`] folds every shard's [`CampaignEvent`] stream into one
//! queryable view: per-shard progress counters, a bounded telemetry
//! ring of recent JSON lines, and the fleet-wide coverage union (built
//! from [`CampaignEvent::CoverageGained`] points — every point any
//! shard ever discovered was fresh *somewhere*, so the union over all
//! shards' gained points is exactly the union `dejavuzz-merge` would
//! compute over their snapshots; cross-shard imports only re-observe
//! points already counted at their source).
//!
//! [`FleetHub`] serves it over a Unix socket with a line protocol:
//!
//! | request              | response                                   |
//! |----------------------|--------------------------------------------|
//! | `status`             | one JSON object, fleet totals              |
//! | `shards`             | one JSON object, per-shard summaries       |
//! | `coverage`           | one JSON object, union vs summed points    |
//! | `metrics`            | Prometheus text exposition, whole fleet    |
//! | `telemetry <shard>`  | the shard's recent JSON event lines        |
//! | `series <shard>`     | the shard's coverage-over-time series      |
//! | `shutdown`           | `{"ok":"shutting down"}`, then the hub exits |
//! | `gossip <shard>`     | switches the connection into relay mode    |
//!
//! `metrics` concatenates the process-global
//! [`dejavuzz_telemetry::global`] registry (every instrument the
//! in-process shards' executors wrote) with fleet-level
//! `dejavuzz_fleet_*` families rendered from [`FleetState`] — the
//! distinct prefix guarantees the two sections can never emit duplicate
//! families. `series <shard>` answers from a fixed-budget
//! [`CoverageSeries`] ring per shard that halves its resolution as the
//! campaign grows (ROADMAP item 5's downsampled telemetry series); its
//! final point is always the shard's exact latest reported coverage.
//!
//! `gossip <shard>` is the handshake
//! [`dejavuzz::gossip::UnixGossipLink::connect`] sends: the connection
//! stops being a query and becomes a frame relay — wire frames from the
//! external peer are republished on the in-process [`Bus`], and bus
//! frames flow back out — so `dejavuzz-fuzz --peers unix:PATH`
//! processes join the served fleet's mesh as equals.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dejavuzz::gossip::{GossipLink, UnixGossipLink};
use dejavuzz::observer::json_str;
use dejavuzz_ift::CoverageMatrix;
use dejavuzz_telemetry::CoverageSeries;

use crate::gossip::Bus;
use crate::transport::CampaignEvent;

/// Telemetry lines retained per shard (oldest evicted first).
pub const TELEMETRY_RING: usize = 256;

/// Point budget of each per-shard coverage-over-time series: beyond
/// this many kept samples the ring halves its resolution (and keeps
/// halving), so a shard's series costs O(budget) memory for any
/// campaign length.
pub const SERIES_BUDGET: usize = 128;

/// One shard's aggregated progress.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStatus {
    /// Iterations committed so far.
    pub iterations: usize,
    /// The shard's own coverage union (its `total_points`).
    pub points: usize,
    /// Deduplicated bugs the shard reported.
    pub bugs: usize,
    /// Peer coverage deltas imported at round boundaries.
    pub peer_imports: usize,
    /// Peer corpus entries imported at round boundaries.
    pub seed_imports: usize,
    /// The campaign completed.
    pub finished: bool,
}

/// The fleet-wide aggregate: per-shard [`ShardStatus`], per-shard
/// telemetry rings, and the exact union coverage. See the module docs
/// for why the union is built from gained points only.
#[derive(Default)]
pub struct FleetState {
    shards: BTreeMap<u32, ShardStatus>,
    telemetry: BTreeMap<u32, VecDeque<String>>,
    series: BTreeMap<u32, CoverageSeries>,
    union: CoverageMatrix,
}

impl FleetState {
    /// An empty aggregate.
    pub fn new() -> Self {
        FleetState::default()
    }

    /// Pre-registers a shard so `status`/`shards` report it before its
    /// first event arrives.
    pub fn register(&mut self, shard: u32) {
        self.shards.entry(shard).or_default();
        self.telemetry.entry(shard).or_default();
        self.series
            .entry(shard)
            .or_insert_with(|| CoverageSeries::new(SERIES_BUDGET));
    }

    /// Folds one shard event into the aggregate.
    pub fn apply(&mut self, shard: u32, ev: &CampaignEvent) {
        let status = self.shards.entry(shard).or_default();
        match ev {
            CampaignEvent::RoundStarted(_) | CampaignEvent::SnapshotWritten { .. } => {}
            CampaignEvent::SlotCommitted(e) => {
                status.iterations = status.iterations.max(e.slot + 1);
                status.points = e.total_points;
            }
            CampaignEvent::CoverageGained {
                points,
                total_points,
                ..
            } => {
                status.points = *total_points;
                for p in points {
                    self.union.insert(*p);
                }
            }
            CampaignEvent::BugFound(_) => status.bugs += 1,
            CampaignEvent::PeerDeltaImported(e) => {
                status.peer_imports += 1;
                status.points = e.total_points;
            }
            CampaignEvent::SeedImported(_) => status.seed_imports += 1,
            CampaignEvent::CampaignFinished {
                iterations,
                coverage_points,
                bugs,
                ..
            } => {
                status.iterations = *iterations;
                // The finish summary reports the coverage *curve*'s last
                // value, which a gossip import at the final round boundary
                // postdates (imports raise the global union without
                // committing a slot) — never let the summary walk an
                // already-counted import back.
                status.points = status.points.max(*coverage_points);
                status.bugs = *bugs;
                status.finished = true;
            }
        }
        let points = status.points;
        let ring = self.telemetry.entry(shard).or_default();
        if ring.len() == TELEMETRY_RING {
            ring.pop_front();
        }
        ring.push_back(ev.to_json());
        // Coverage-over-time: every event that reports the shard's total
        // coverage next to a progress coordinate extends the series. The
        // coordinate is committed iterations, which never decreases, so
        // the series stays monotone in x; y is the shard status total
        // updated above, monotone across commits, imports and the finish
        // summary alike.
        let sample = match ev {
            CampaignEvent::SlotCommitted(e) => Some(e.slot as u64 + 1),
            CampaignEvent::PeerDeltaImported(e) => Some(e.boundary as u64),
            CampaignEvent::CampaignFinished { iterations, .. } => Some(*iterations as u64),
            _ => None,
        };
        if let Some(x) = sample {
            self.series
                .entry(shard)
                .or_insert_with(|| CoverageSeries::new(SERIES_BUDGET))
                .push(x, points as u64);
        }
    }

    /// The fleet-wide coverage union.
    pub fn union(&self) -> &CoverageMatrix {
        &self.union
    }

    /// The per-shard summaries, keyed (and therefore rendered) in shard
    /// order.
    pub fn shards(&self) -> &BTreeMap<u32, ShardStatus> {
        &self.shards
    }

    /// The `status` response: one JSON object of fleet totals.
    pub fn render_status(&self) -> String {
        format!(
            "{{\"shards\":{},\"finished\":{},\"iterations\":{},\"union_points\":{},\"bugs\":{}}}",
            self.shards.len(),
            self.shards.values().filter(|s| s.finished).count(),
            self.shards.values().map(|s| s.iterations).sum::<usize>(),
            self.union.points(),
            self.shards.values().map(|s| s.bugs).sum::<usize>(),
        )
    }

    /// The `shards` response: one JSON object with per-shard summaries.
    pub fn render_shards(&self) -> String {
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|(id, s)| {
                format!(
                    "{{\"shard\":{id},\"iterations\":{},\"points\":{},\"bugs\":{},\
                     \"peer_imports\":{},\"seed_imports\":{},\"finished\":{}}}",
                    s.iterations, s.points, s.bugs, s.peer_imports, s.seed_imports, s.finished
                )
            })
            .collect();
        format!("{{\"shards\":[{}]}}", shards.join(","))
    }

    /// The `coverage` response: the exact union next to the per-shard
    /// counts it deduplicates (their sum double-counts shared points —
    /// the same distinction `dejavuzz-merge` reports).
    pub fn render_coverage(&self) -> String {
        let per_shard: Vec<String> = self
            .shards
            .iter()
            .map(|(id, s)| format!("{{\"shard\":{id},\"points\":{}}}", s.points))
            .collect();
        format!(
            "{{\"union_points\":{},\"summed_points\":{},\"per_shard\":[{}]}}",
            self.union.points(),
            self.shards.values().map(|s| s.points).sum::<usize>(),
            per_shard.join(",")
        )
    }

    /// The `telemetry <shard>` response: the shard's retained JSON
    /// lines, newest last. An unknown shard gets a structured
    /// `{"error":...}` like every other malformed query — not an empty
    /// response a client cannot tell apart from "registered but quiet".
    pub fn render_telemetry(&self, shard: u32) -> String {
        match self.telemetry.get(&shard) {
            Some(ring) => ring.iter().cloned().collect::<Vec<_>>().join("\n"),
            None => format!(
                "{{\"error\":{}}}",
                json_str(&format!("unknown shard {shard}"))
            ),
        }
    }

    /// The `series <shard>` response: the shard's downsampled
    /// coverage-over-time points as
    /// `{"shard":N,"samples":S,"points":[[iterations,coverage],…]}`
    /// (`samples` is how many raw observations the ring folded). The
    /// final point is the shard's exact latest reported coverage.
    /// Unknown shards get `{"error":...}`, like `telemetry`.
    pub fn render_series(&self, shard: u32) -> String {
        match self.series.get(&shard) {
            Some(series) => format!(
                "{{\"shard\":{shard},\"samples\":{},\"points\":{}}}",
                series.seen(),
                series.render_json_points()
            ),
            None => format!(
                "{{\"error\":{}}}",
                json_str(&format!("unknown shard {shard}"))
            ),
        }
    }

    /// The `metrics` response: Prometheus text exposition for the whole
    /// fleet — the process-global registry (executor, gossip and
    /// transport instruments of every in-process shard) followed by
    /// fleet-level `dejavuzz_fleet_*` families aggregated here from the
    /// shards' event streams, with per-shard samples labelled
    /// `{shard="N"}`. The distinct prefix keeps the two sections from
    /// ever emitting a duplicate family.
    pub fn render_metrics(&self) -> String {
        fn family(out: &mut String, name: &str, help: &str) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        }
        let mut out = dejavuzz_telemetry::global().render_prometheus();
        family(&mut out, "dejavuzz_fleet_shards", "Shards known to the hub");
        out.push_str(&format!("dejavuzz_fleet_shards {}\n", self.shards.len()));
        family(
            &mut out,
            "dejavuzz_fleet_union_points",
            "Exact fleet-wide coverage union",
        );
        out.push_str(&format!(
            "dejavuzz_fleet_union_points {}\n",
            self.union.points()
        ));
        family(
            &mut out,
            "dejavuzz_fleet_shard_iterations",
            "Iterations committed per shard",
        );
        for (id, s) in &self.shards {
            out.push_str(&format!(
                "dejavuzz_fleet_shard_iterations{{shard=\"{id}\"}} {}\n",
                s.iterations
            ));
        }
        family(
            &mut out,
            "dejavuzz_fleet_shard_points",
            "Coverage points per shard",
        );
        for (id, s) in &self.shards {
            out.push_str(&format!(
                "dejavuzz_fleet_shard_points{{shard=\"{id}\"}} {}\n",
                s.points
            ));
        }
        family(
            &mut out,
            "dejavuzz_fleet_shard_bugs",
            "Bugs found per shard",
        );
        for (id, s) in &self.shards {
            out.push_str(&format!(
                "dejavuzz_fleet_shard_bugs{{shard=\"{id}\"}} {}\n",
                s.bugs
            ));
        }
        family(
            &mut out,
            "dejavuzz_fleet_shards_finished",
            "Shards whose campaign completed",
        );
        out.push_str(&format!(
            "dejavuzz_fleet_shards_finished {}\n",
            self.shards.values().filter(|s| s.finished).count()
        ));
        out
    }
}

/// The query/relay socket server. Bind with [`FleetHub::bind`], run the
/// accept loop with [`FleetHub::run`] (it returns once a `shutdown`
/// query arrives or the flag from [`FleetHub::shutdown_flag`] is set
/// externally).
pub struct FleetHub {
    listener: UnixListener,
    state: Arc<Mutex<FleetState>>,
    bus: Bus,
    shutdown: Arc<AtomicBool>,
}

impl FleetHub {
    /// Binds the hub socket. A stale socket file from a previous run is
    /// removed first (only if it actually is a socket — a regular file
    /// at the path is an error, not a casualty).
    pub fn bind(path: &Path, state: Arc<Mutex<FleetState>>, bus: Bus) -> io::Result<FleetHub> {
        if let Ok(md) = std::fs::symlink_metadata(path) {
            use std::os::unix::fs::FileTypeExt;
            if md.file_type().is_socket() {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(FleetHub {
            listener: UnixListener::bind(path)?,
            state,
            bus,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The flag that stops [`FleetHub::run`]; share it to shut the hub
    /// down from outside the socket protocol.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accepts and serves connections until shutdown. Each connection
    /// gets its own thread: queries answer-and-close, `gossip` relays
    /// run until their peer disconnects (or shutdown).
    pub fn run(&self) {
        if let Err(e) = self.listener.set_nonblocking(true) {
            eprintln!("dejavuzz-serve: cannot poll the hub socket: {e}");
            return;
        }
        while !self.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let bus = self.bus.clone();
                    let shutdown = Arc::clone(&self.shutdown);
                    std::thread::spawn(move || handle_connection(stream, state, bus, shutdown));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("dejavuzz-serve: accept failed: {e}");
                    break;
                }
            }
        }
    }
}

/// Reads one `\n`-terminated line byte-by-byte, so no bytes beyond the
/// newline are consumed — the relay handshake precedes binary frames on
/// the same stream, and a buffered reader would swallow their start.
fn read_line_raw(stream: &mut UnixStream) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => {
                if line.len() >= 256 {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        "request line over 256 bytes",
                    ));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&line).into_owned())
}

fn handle_connection(
    mut stream: UnixStream,
    state: Arc<Mutex<FleetState>>,
    bus: Bus,
    shutdown: Arc<AtomicBool>,
) {
    // A client that connects and never writes must not pin this thread
    // forever; relays reset the timeout once the handshake is in.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let line = match read_line_raw(&mut stream) {
        Ok(line) => line,
        Err(_) => return,
    };
    let line = line.trim();
    if let Some(shard) = line.strip_prefix("gossip ") {
        if shard.trim().parse::<u32>().is_ok() {
            let _ = stream.set_read_timeout(None);
            relay(stream, bus, shutdown);
        } else {
            let _ = writeln!(
                stream,
                "{{\"error\":{}}}",
                json_str(&format!("bad gossip handshake {line:?}"))
            );
        }
        return;
    }
    let response = match line {
        "status" => state.lock().expect("fleet state poisoned").render_status(),
        "shards" => state.lock().expect("fleet state poisoned").render_shards(),
        "coverage" => state
            .lock()
            .expect("fleet state poisoned")
            .render_coverage(),
        "metrics" => state.lock().expect("fleet state poisoned").render_metrics(),
        "shutdown" => {
            shutdown.store(true, Ordering::Relaxed);
            "{\"ok\":\"shutting down\"}".to_string()
        }
        _ => match line.split_once(' ') {
            Some(("telemetry", shard)) => match shard.trim().parse::<u32>() {
                Ok(shard) => state
                    .lock()
                    .expect("fleet state poisoned")
                    .render_telemetry(shard),
                Err(_) => format!("{{\"error\":{}}}", json_str("telemetry needs a shard id")),
            },
            Some(("series", shard)) => match shard.trim().parse::<u32>() {
                Ok(shard) => state
                    .lock()
                    .expect("fleet state poisoned")
                    .render_series(shard),
                Err(_) => format!("{{\"error\":{}}}", json_str("series needs a shard id")),
            },
            _ => format!(
                "{{\"error\":{}}}",
                json_str(&format!(
                    "unknown request {line:?} (expected status|shards|coverage|metrics|\
                     telemetry <shard>|series <shard>|shutdown|gossip <shard>)"
                ))
            ),
        },
    };
    let _ = writeln!(stream, "{response}");
}

/// Bridges one external socket peer onto the in-process bus: frames the
/// peer ships are republished to every bus subscriber, frames any bus
/// subscriber publishes flow back to the peer. Dropping out (peer
/// disconnect, shutdown) unsubscribes the relay's bus link.
fn relay(stream: UnixStream, bus: Bus, shutdown: Arc<AtomicBool>) {
    let mut sock = UnixGossipLink::from_stream(stream);
    let mut bus_link = bus.link();
    while !shutdown.load(Ordering::Relaxed) {
        for frame in sock.drain() {
            bus_link.publish(&frame);
        }
        for frame in bus_link.drain() {
            sock.publish(&frame);
        }
        if sock.is_dead() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz::gossip::GossipFrame;
    use dejavuzz::observer::{PeerDeltaImported, RoundStarted, SlotCommitted};
    use dejavuzz::WindowType;
    use dejavuzz_ift::CoveragePoint;

    fn pt(module: &'static str, index: usize) -> CoveragePoint {
        CoveragePoint { module, index }
    }

    fn gained(slot: usize, points: Vec<CoveragePoint>, total: usize) -> CampaignEvent {
        CampaignEvent::CoverageGained {
            slot,
            points,
            total_points: total,
        }
    }

    #[test]
    fn state_builds_the_exact_union_from_gained_points() {
        let mut state = FleetState::new();
        state.register(0);
        state.register(1);
        state.apply(0, &gained(0, vec![pt("rob", 1), pt("rob", 2)], 2));
        state.apply(1, &gained(0, vec![pt("rob", 2), pt("lsu", 1)], 2));
        assert_eq!(state.union().points(), 3, "shared points deduplicate");
        assert_eq!(
            state.render_coverage(),
            "{\"union_points\":3,\"summed_points\":4,\
             \"per_shard\":[{\"shard\":0,\"points\":2},{\"shard\":1,\"points\":2}]}"
        );
    }

    #[test]
    fn state_tracks_progress_imports_and_completion() {
        let mut state = FleetState::new();
        state.register(0);
        state.apply(
            0,
            &CampaignEvent::SlotCommitted(SlotCommitted {
                slot: 3,
                stream: 0,
                window_type: WindowType::ALL[0],
                triggered: false,
                to: 0,
                eto: 0,
                sim_runs: 1,
                final_gain: 0,
                fresh_points: 0,
                total_points: 5,
                error: None,
            }),
        );
        state.apply(
            0,
            &CampaignEvent::PeerDeltaImported(PeerDeltaImported {
                from_shard: 1,
                peer_iterations: 8,
                boundary: 4,
                points: 3,
                fresh_points: 2,
                total_points: 7,
            }),
        );
        let s = &state.shards()[&0];
        assert_eq!((s.iterations, s.points, s.peer_imports), (4, 7, 1));
        assert!(!s.finished);
        state.apply(
            0,
            &CampaignEvent::CampaignFinished {
                iterations: 8,
                sim_runs: 32,
                sim_cycles: 1024,
                coverage_points: 9,
                corpus_retained: 3,
                corpus_evicted: 0,
                failed_runs: 0,
                bugs: 2,
                first_bug: Some(5),
            },
        );
        let s = &state.shards()[&0];
        assert!(s.finished);
        assert_eq!((s.iterations, s.points, s.bugs), (8, 9, 2));
        assert_eq!(
            state.render_status(),
            "{\"shards\":1,\"finished\":1,\"iterations\":8,\"union_points\":0,\"bugs\":2}"
        );
    }

    /// A gossip import at the *final* round boundary postdates the
    /// coverage curve, so the finish summary's `coverage_points` can be
    /// stale — neither the shard total nor the series may walk the
    /// import back.
    #[test]
    fn stale_finish_summary_never_regresses_points_or_series() {
        let mut state = FleetState::new();
        state.register(0);
        state.apply(
            0,
            &CampaignEvent::PeerDeltaImported(PeerDeltaImported {
                from_shard: 1,
                peer_iterations: 8,
                boundary: 4,
                points: 3,
                fresh_points: 2,
                total_points: 7,
            }),
        );
        state.apply(
            0,
            &CampaignEvent::CampaignFinished {
                iterations: 4,
                sim_runs: 16,
                sim_cycles: 512,
                coverage_points: 5, // the curve's last value, pre-import
                corpus_retained: 3,
                corpus_evicted: 0,
                failed_runs: 0,
                bugs: 0,
                first_bug: None,
            },
        );
        assert_eq!(state.shards()[&0].points, 7, "import is not walked back");
        assert!(
            state.render_series(0).contains("\"points\":[[4,7],[4,7]]"),
            "series ends on the import total: {}",
            state.render_series(0)
        );
    }

    #[test]
    fn telemetry_ring_is_bounded() {
        let mut state = FleetState::new();
        for i in 0..TELEMETRY_RING + 10 {
            state.apply(
                0,
                &CampaignEvent::RoundStarted(RoundStarted {
                    first_slot: i,
                    slots: 1,
                    gain_threshold_samples: 0,
                }),
            );
        }
        let rendered = state.render_telemetry(0);
        assert_eq!(rendered.lines().count(), TELEMETRY_RING);
        assert!(
            rendered
                .lines()
                .last()
                .unwrap()
                .contains(&format!("\"first_slot\":{}", TELEMETRY_RING + 9)),
            "newest line retained"
        );
    }

    /// Both shard-addressed queries answer an unknown shard with the
    /// same structured error a malformed id gets — never an empty
    /// string a client cannot tell apart from "registered but quiet".
    #[test]
    fn unknown_shard_is_a_structured_error() {
        let mut state = FleetState::new();
        state.register(0);
        assert_eq!(state.render_telemetry(9), "{\"error\":\"unknown shard 9\"}");
        assert_eq!(state.render_series(9), "{\"error\":\"unknown shard 9\"}");
        // A registered-but-quiet shard is distinguishable: empty data,
        // not an error.
        assert_eq!(state.render_telemetry(0), "");
        assert_eq!(
            state.render_series(0),
            "{\"shard\":0,\"samples\":0,\"points\":[]}"
        );
    }

    #[test]
    fn series_tracks_coverage_over_time_and_ends_exact() {
        let mut state = FleetState::new();
        state.register(0);
        let mut total = 0usize;
        for slot in 0..1000usize {
            if slot % 7 == 0 {
                total += 1;
            }
            state.apply(
                0,
                &CampaignEvent::SlotCommitted(SlotCommitted {
                    slot,
                    stream: 0,
                    window_type: WindowType::ALL[0],
                    triggered: false,
                    to: 0,
                    eto: 0,
                    sim_runs: 1,
                    final_gain: 0,
                    fresh_points: 0,
                    total_points: total,
                    error: None,
                }),
            );
        }
        let rendered = state.render_series(0);
        assert!(
            rendered.starts_with("{\"shard\":0,\"samples\":1000,\"points\":[["),
            "{rendered}"
        );
        // Parse the [[x,y],...] pairs back out and check the acceptance
        // properties: bounded, monotone, exact final value.
        let points: Vec<(u64, u64)> = rendered
            .split_once("\"points\":[")
            .unwrap()
            .1
            .trim_end_matches("]}")
            .trim_matches(|c| c == '[' || c == ']')
            .split("],[")
            .map(|pair| {
                let (x, y) = pair.split_once(',').unwrap();
                (x.parse().unwrap(), y.parse().unwrap())
            })
            .collect();
        assert!(points.len() <= SERIES_BUDGET + 1, "got {}", points.len());
        assert!(points.len() >= SERIES_BUDGET / 2, "got {}", points.len());
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0), "x monotone");
        assert!(points.windows(2).all(|w| w[0].1 <= w[1].1), "y monotone");
        assert_eq!(
            *points.last().unwrap(),
            (1000, total as u64),
            "final point is the shard's exact latest total"
        );
    }

    #[test]
    fn metrics_exposition_covers_registry_and_fleet_families() {
        let mut state = FleetState::new();
        state.register(0);
        state.register(3);
        state.apply(0, &gained(0, vec![pt("rob", 1)], 1));
        // Touch the core engine's instruments so the registry section is
        // provably present alongside the fleet section.
        let _ = dejavuzz::metrics::handles();
        let text = state.render_metrics();
        // Registry families (executor + gossip instruments).
        assert!(text.contains("# TYPE dejavuzz_iterations_total counter"));
        assert!(text.contains("# TYPE dejavuzz_plan_nanos histogram"));
        assert!(text.contains("# TYPE dejavuzz_gossip_exchange_nanos histogram"));
        // Fleet families with per-shard labels.
        assert!(text.contains("# TYPE dejavuzz_fleet_shards gauge\ndejavuzz_fleet_shards 2\n"));
        assert!(text.contains("dejavuzz_fleet_union_points 1\n"));
        assert!(text.contains("dejavuzz_fleet_shard_points{shard=\"0\"} 1\n"));
        assert!(text.contains("dejavuzz_fleet_shard_points{shard=\"3\"} 0\n"));
        // Exposition validity: every family has exactly one TYPE line
        // (no duplicates across the two sections), and every sample line
        // belongs to a declared family.
        let mut seen = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split(' ').next().unwrap();
                assert!(seen.insert(family.to_string()), "duplicate family {family}");
            }
        }
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line
                .split(['{', ' '])
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                seen.contains(name) || seen.contains(&format!("{name}_count")),
                "sample {line:?} has no family"
            );
        }
    }

    fn temp_socket(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("djvz-hub-{tag}-{}.sock", std::process::id()))
    }

    fn query(path: &Path, request: &str) -> String {
        let mut stream = UnixStream::connect(path).unwrap();
        stream.write_all(format!("{request}\n").as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn hub_answers_queries_and_shuts_down() {
        let path = temp_socket("query");
        let state = Arc::new(Mutex::new(FleetState::new()));
        state.lock().unwrap().register(0);
        let hub = FleetHub::bind(&path, Arc::clone(&state), Bus::new()).unwrap();
        let server = std::thread::spawn(move || hub.run());
        assert_eq!(
            query(&path, "status"),
            "{\"shards\":1,\"finished\":0,\"iterations\":0,\"union_points\":0,\"bugs\":0}\n"
        );
        assert!(query(&path, "bogus").starts_with("{\"error\":"));
        assert_eq!(query(&path, "shutdown"), "{\"ok\":\"shutting down\"}\n");
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    /// An external `UnixGossipLink` (the `dejavuzz-fuzz --peers` client)
    /// joins the in-process bus through the relay: frames flow both
    /// ways.
    #[test]
    fn relay_bridges_external_peers_onto_the_bus() {
        let path = temp_socket("relay");
        let state = Arc::new(Mutex::new(FleetState::new()));
        let bus = Bus::new();
        let mut local = bus.link();
        let hub = FleetHub::bind(&path, state, bus.clone()).unwrap();
        let flag = hub.shutdown_flag();
        let server = std::thread::spawn(move || hub.run());

        let mut external = UnixGossipLink::connect(&path, 7).unwrap();
        let frame = GossipFrame {
            shard: 7,
            iterations: 12,
            delta: vec![pt("relay", 1)],
            favoured: Vec::new(),
        };
        external.publish(&frame);
        let inbound = wait_for(|| {
            let got = local.drain();
            (!got.is_empty()).then_some(got)
        });
        assert_eq!(inbound, vec![frame.clone()]);

        let reply = GossipFrame {
            shard: 0,
            iterations: 4,
            delta: vec![pt("relay", 2)],
            favoured: Vec::new(),
        };
        local.publish(&reply);
        let outbound = wait_for(|| {
            let got = external.drain();
            (!got.is_empty()).then_some(got)
        });
        assert_eq!(outbound, vec![reply]);

        flag.store(true, Ordering::Relaxed);
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    /// Polls until `probe` yields, panicking after ~5s — relay delivery
    /// crosses threads, so assertions need a deadline, not a sleep.
    fn wait_for<T>(mut probe: impl FnMut() -> Option<T>) -> T {
        for _ in 0..1000 {
            if let Some(v) = probe() {
                return v;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("relay delivery timed out");
    }
}
