//! `dejavuzz-serve` — the fleet daemon: N gossiping campaigns in one
//! process, aggregated telemetry, and a Unix query socket.
//!
//! ```sh
//! # Serve a 2-shard gossiping fleet:
//! dejavuzz-serve --shards 2 --iters 50 --socket /tmp/fleet.sock &
//! # Query it (from anywhere):
//! dejavuzz-serve --socket /tmp/fleet.sock --query status
//! dejavuzz-serve --socket /tmp/fleet.sock --query coverage
//! dejavuzz-serve --socket /tmp/fleet.sock --query metrics     # Prometheus text
//! dejavuzz-serve --socket /tmp/fleet.sock --query 'series 0'  # coverage over time
//! dejavuzz-serve --socket /tmp/fleet.sock --query shutdown
//! # External shards join the same mesh over the socket:
//! dejavuzz-fuzz --shard 9 --peers unix:/tmp/fleet.sock --iters 50
//! ```
//!
//! Every served shard runs the same campaign engine as `dejavuzz-fuzz`
//! (shard `i` uses `seed + i`), wired to the in-process gossip bus and
//! observed through a bounded channel; the aggregate is served until a
//! `shutdown` query arrives. All daemon chatter goes to stderr; stdout
//! carries only `--query` responses.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use dejavuzz::backend::BackendSpec;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::gossip::shared_link;
use dejavuzz::observer::CampaignObserver;
use dejavuzz_fleet::gossip::Bus;
use dejavuzz_fleet::serve::{FleetHub, FleetState};
use dejavuzz_fleet::transport::ChannelObserver;
use dejavuzz_uarch::{boom_small, xiangshan_minimal};

fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("dejavuzz-serve: {msg}");
    eprintln!("dejavuzz-serve: run with --help for usage");
    std::process::exit(2);
}

/// Strict optional flag lookup, same contract as `dejavuzz-fuzz`: a
/// present flag must have a parseable value, and a following `--flag`
/// token is a missing value, not a value.
fn opt_arg<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(v) = args.get(i + 1).filter(|v| !v.starts_with("--")) else {
        die(format_args!("{flag} requires a value"));
    };
    match v.parse() {
        Ok(v) => Some(v),
        Err(_) => die(format_args!("invalid value {v:?} for {flag}")),
    }
}

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    opt_arg(args, flag).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "dejavuzz-serve — fleet daemon: N gossiping campaigns, one query socket\n\n\
             --socket PATH           Unix socket to serve on (required). Queries,\n\
             \u{20}                        telemetry and external gossip peers\n\
             \u{20}                        (dejavuzz-fuzz --peers unix:PATH) all use it\n\
             --shards N              campaigns to own (default 2; shard i runs seed+i)\n\
             --iters N               iterations per worker per shard (default 50)\n\
             --workers N             workers per shard (default 1)\n\
             --seed N                base RNG seed (default 42)\n\
             --core boom|xiangshan   behavioural DUT model (default boom)\n\
             --gossip-every N        rounds between gossip exchanges (default 1;\n\
             \u{20}                        0 = isolated shards, no bus wiring)\n\
             --snapshot-dir DIR      write each shard's end-of-run snapshot to\n\
             \u{20}                        DIR/shard<i>.snap (mergeable by dejavuzz-merge)\n\
             --query CMD             client mode: send CMD to --socket, print the\n\
             \u{20}                        response on stdout and exit. CMD is one of\n\
             \u{20}                        status | shards | coverage | metrics |\n\
             \u{20}                        'telemetry <shard>' | 'series <shard>' |\n\
             \u{20}                        shutdown\n\
             \u{20}                        metrics = Prometheus text exposition for the\n\
             \u{20}                        whole fleet (executor, gossip and transport\n\
             \u{20}                        instruments plus dejavuzz_fleet_* aggregates);\n\
             \u{20}                        series = the shard's downsampled coverage-over-\n\
             \u{20}                        time curve, final point exact (EXPERIMENTS.md\n\
             \u{20}                        \"Observability\")\n\n\
             The daemon serves until a shutdown query arrives; campaigns that\n\
             are still running finish first. Flag values that fail to parse\n\
             are an error (exit 2), never a silent fallback to the default.\n"
        );
        return;
    }
    let socket = opt_arg::<String>(&args, "--socket");
    let query = opt_arg::<String>(&args, "--query");

    if let Some(request) = query {
        let Some(socket) = socket else {
            die(format_args!("--query requires --socket"));
        };
        let mut stream = match UnixStream::connect(Path::new(&socket)) {
            Ok(s) => s,
            Err(e) => die(format_args!("cannot connect to {socket}: {e}")),
        };
        if let Err(e) = stream.write_all(format!("{request}\n").as_bytes()) {
            die(format_args!("cannot send query: {e}"));
        }
        let mut response = String::new();
        if let Err(e) = stream.read_to_string(&mut response) {
            die(format_args!("cannot read response: {e}"));
        }
        print!("{response}");
        return;
    }

    let Some(socket) = socket else {
        die(format_args!("--socket is required (or --query CMD)"));
    };
    let shards = arg(&args, "--shards", 2usize);
    if shards == 0 {
        die(format_args!("--shards must be at least 1"));
    }
    let iters = arg(&args, "--iters", 50usize);
    let workers = arg(&args, "--workers", 1usize).max(1);
    let seed = arg(&args, "--seed", 42u64);
    let core = arg::<String>(&args, "--core", "boom".into());
    if core != "boom" && core != "xiangshan" {
        die(format_args!(
            "unknown core {core:?} (expected boom|xiangshan)"
        ));
    }
    let gossip_every = arg(&args, "--gossip-every", 1usize);
    let snapshot_dir = opt_arg::<String>(&args, "--snapshot-dir").map(PathBuf::from);
    if let Some(dir) = &snapshot_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(format_args!(
                "cannot create snapshot dir {}: {e}",
                dir.display()
            ));
        }
    }

    let state = Arc::new(Mutex::new(FleetState::new()));
    let bus = Bus::new();
    let gossip = gossip_every > 0 && shards > 1;

    let mut campaigns = Vec::new();
    for i in 0..shards {
        let shard = i as u32;
        state.lock().expect("fleet state poisoned").register(shard);
        let cfg = match core.as_str() {
            "xiangshan" => xiangshan_minimal(),
            _ => boom_small(),
        };
        let mut builder = CampaignBuilder::new()
            .backend(BackendSpec::behavioural(cfg))
            .workers(workers)
            .seed(seed + i as u64)
            .shard_id(shard);
        if gossip {
            builder = builder
                .gossip(shared_link(bus.link()))
                .gossip_every(gossip_every);
        }
        if let Some(dir) = &snapshot_dir {
            builder = builder.snapshot_path(dir.join(format!("shard{i}.snap")));
        }
        let orch = match builder.build() {
            Ok(orch) => orch,
            Err(e) => die(format_args!("shard {shard}: {e}")),
        };
        let (observer, events) = ChannelObserver::channel(1024);
        let agg_state = Arc::clone(&state);
        let aggregator = std::thread::spawn(move || {
            while let Ok(ev) = events.recv() {
                agg_state
                    .lock()
                    .expect("fleet state poisoned")
                    .apply(shard, &ev);
            }
        });
        let campaign = std::thread::spawn(move || {
            let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(observer)];
            let (report, _) = orch.run_observed(iters * workers, &mut observers);
            drop(observers); // closes the channel; the aggregator drains and exits
            eprintln!(
                "dejavuzz-serve: shard {shard} finished: {} iterations, {} points, {} bug(s)",
                report.stats.iterations,
                report.stats.coverage(),
                report.stats.bugs.len()
            );
        });
        campaigns.push((campaign, aggregator));
    }

    let hub = match FleetHub::bind(Path::new(&socket), Arc::clone(&state), bus) {
        Ok(hub) => hub,
        Err(e) => die(format_args!("cannot bind {socket}: {e}")),
    };
    eprintln!(
        "dejavuzz-serve: serving {shards} shard(s) on {socket} \
         ({iters} iters x {workers} worker(s) each, base seed {seed}, {})",
        if gossip {
            format!("gossip every {gossip_every} round(s)")
        } else {
            "no gossip".to_string()
        }
    );
    hub.run();

    eprintln!("dejavuzz-serve: shutdown requested; waiting for campaigns");
    for (campaign, aggregator) in campaigns {
        let _ = campaign.join();
        let _ = aggregator.join();
    }
    let state = state.lock().expect("fleet state poisoned");
    eprintln!(
        "dejavuzz-serve: fleet done: {} union point(s) across {shards} shard(s)",
        state.union().points()
    );
    let _ = std::fs::remove_file(&socket);
}
