//! End-to-end contracts of the scenario-template subsystem: per-family
//! determinism, the scenarios-off identity, nonzero per-family stats for
//! every shipped template, halt→resume bit-identity with scenarios
//! active, and structural failure on unknown families at resume.

use dejavuzz::builder::{BuildError, CampaignBuilder};
use dejavuzz::gen::WindowType;
use dejavuzz::scheduler::SchedulerSpec;
use dejavuzz::BackendSpec;
use dejavuzz_uarch::boom_small;

const ALL_FAMILIES: &[&str] = &[
    "zenbleed",
    "double-fetch:gap=3",
    "nested-spec:depth=4",
    "sibling-leak:bursts=3",
];

fn behavioural() -> CampaignBuilder {
    CampaignBuilder::new()
        .backend(BackendSpec::behavioural(boom_small()))
        .seed(11)
}

fn netlist_small() -> CampaignBuilder {
    CampaignBuilder::new()
        .backend(BackendSpec::netlist(dejavuzz_rtl::examples::SMALL_SCALE))
        .seed(11)
}

/// Per-family stats accumulated for `family` across the window table
/// (scenario windows key by interned instance; several parameterisations
/// of one family sum here).
fn family_attempts(stats: &dejavuzz::CampaignStats, family: &str) -> usize {
    stats
        .windows
        .iter()
        .filter(|(wt, _)| matches!(wt, WindowType::Scenario(_)) && wt.table5_class() == family)
        .map(|(_, ws)| ws.attempted)
        .sum()
}

/// A scenario campaign is a pure function of (seed, workers, batch):
/// two identical multi-worker runs produce byte-identical snapshots.
#[test]
fn scenario_campaigns_are_deterministic() {
    let run = || {
        behavioural()
            .workers(2)
            .batch(3)
            .scheduler(SchedulerSpec::WorkStealing)
            .scenarios(ALL_FAMILIES)
            .build()
            .unwrap()
            .run_snapshotting(24)
            .1
            .to_bytes()
    };
    assert_eq!(run(), run(), "same config must replay bit-identically");
}

/// An explicitly empty scenario list is the default: the snapshot (and
/// therefore every downstream stat) is byte-identical to a build that
/// never mentioned scenarios at all.
#[test]
fn scenarios_off_is_byte_identical_to_default() {
    let plain = behavioural()
        .workers(2)
        .build()
        .unwrap()
        .run_snapshotting(20)
        .1
        .to_bytes();
    let empty = behavioural()
        .workers(2)
        .scenarios(&[] as &[&str])
        .build()
        .unwrap()
        .run_snapshotting(20)
        .1
        .to_bytes();
    assert_eq!(plain, empty);
}

/// Every shipped template family draws, triggers and accumulates
/// per-family window stats on the small synthesised netlist.
#[test]
fn each_builtin_family_reaches_nonzero_stats_on_netlist_small() {
    for spec in ALL_FAMILIES {
        let family = spec.split(':').next().unwrap();
        let report = netlist_small().scenarios(&[*spec]).build().unwrap().run(64);
        assert!(
            family_attempts(&report.stats, family) > 0,
            "{family}: expected nonzero per-family attempts in {:?}",
            report.stats.windows.keys().collect::<Vec<_>>()
        );
    }
}

/// Scenario specs persist canonically (every declared parameter, in
/// declaration order, defaults filled in) and a halt→resume mid-campaign
/// with scenarios active is byte-identical to the uninterrupted run.
#[test]
fn scenario_halt_resume_is_bit_identical() {
    let full = behavioural()
        .workers(2)
        .scheduler(SchedulerSpec::WorkStealing)
        .scenarios(&["zenbleed", "nested-spec"])
        .build()
        .unwrap()
        .run_snapshotting(24)
        .1;

    let (_, halted) = behavioural()
        .workers(2)
        .scheduler(SchedulerSpec::WorkStealing)
        .scenarios(&["zenbleed", "nested-spec"])
        .halt_after(12)
        .build()
        .unwrap()
        .run_snapshotting(24);
    assert!(
        halted.stats.iterations < 24,
        "halt_after must stop the run mid-campaign"
    );
    assert_eq!(
        halted.scenarios,
        vec![
            "nested-spec:depth=3".to_string(),
            "zenbleed:zero_idiom=0".to_string()
        ],
        "snapshots persist canonical specs in sorted order"
    );

    // The resume build names no scenarios: it adopts the snapshot's.
    let resumed = behavioural()
        .workers(2)
        .scheduler(SchedulerSpec::WorkStealing)
        .resume(halted)
        .build()
        .unwrap()
        .run_snapshotting(24)
        .1;
    assert_eq!(
        full.to_bytes(),
        resumed.to_bytes(),
        "halt→resume with scenarios active must be bit-identical"
    );
}

/// A snapshot naming a family this process never registered fails the
/// resume build structurally, with a pinned message naming the family.
#[test]
fn unknown_family_in_snapshot_fails_resume_structurally() {
    let (_, mut snap) = behavioural().build().unwrap().run_snapshotting(6);
    snap.scenarios = vec!["ghost-fam".to_string()];
    let err = behavioural().resume(snap).build().unwrap_err();
    assert!(matches!(err, BuildError::InvalidScenario { .. }));
    assert_eq!(
        err.to_string(),
        "invalid scenario spec \"ghost-fam\": unknown scenario family \"ghost-fam\""
    );
}

/// Builder-path validation mirrors the CLI: malformed and out-of-range
/// parameters are structured errors with pinned messages.
#[test]
fn builder_scenario_spec_errors_are_pinned() {
    let err = behavioural()
        .scenarios(&["zenbleed:zero_idiom=9"])
        .build()
        .unwrap_err();
    assert_eq!(
        err.to_string(),
        "invalid scenario spec \"zenbleed:zero_idiom=9\": parameter \"zero_idiom\" of \
         scenario family \"zenbleed\" must be in [0, 2], got 9"
    );

    let err = behavioural()
        .scenarios(&["double-fetch:gap"])
        .build()
        .unwrap_err();
    assert_eq!(
        err.to_string(),
        "invalid scenario spec \"double-fetch:gap\": malformed parameter \"gap\" for \
         scenario family \"double-fetch\" (expected name=integer)"
    );
}
