//! CLI contract tests for `dejavuzz-fuzz`: strict flag parsing exits 2
//! with an error naming the flag (never a silent fall-through to the
//! default), and configuration errors surface the builder's structured
//! message. Pinned here because scripts and CI parse this output.

use std::process::Command;

fn fuzz(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dejavuzz-fuzz"))
        .args(args)
        .output()
        .expect("spawn dejavuzz-fuzz");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A malformed proc backend spec is an exit-2 error naming the spec and
/// the expected shape.
#[test]
fn malformed_proc_spec_exits_two_naming_the_spec() {
    let (code, _, stderr) = fuzz(&["--backend", "proc:bogus", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("unknown proc backend \"proc:bogus\" (expected proc:<inner>:<M>"),
        "stderr names the spec and shape: {stderr}"
    );
}

/// A zero-size pool is refused at parse time with a pinned message.
#[test]
fn zero_proc_pool_exits_two() {
    let (code, _, stderr) = fuzz(&["--backend", "proc:netlist:boom:0", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("proc pool size must be >= 1 in \"proc:netlist:boom:0\""),
        "stderr: {stderr}"
    );
}

/// A missing worker binary is the builder's structured `ProcPool` error
/// (exit 2 naming the backend spec and the attempted path), reported at
/// build time — before any campaign work.
#[test]
fn missing_worker_binary_exits_two_with_the_builder_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_dejavuzz-fuzz"))
        .args(["--backend", "proc:netlist:small:2", "--iters", "1"])
        .env("DEJAVUZZ_SIMD_BIN", "/nonexistent/dejavuzz-simd")
        .output()
        .expect("spawn dejavuzz-fuzz");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr.contains("cannot start worker pool for backend \"proc:netlist:small:2\"")
            && stderr.contains("/nonexistent/dejavuzz-simd"),
        "stderr names spec and path: {stderr}"
    );
}

/// The happy path: a pool-of-1 proc campaign produces the same stdout as
/// the in-process backend it wraps, except for the backend label in the
/// banner. The strongest CLI-level statement of the determinism
/// contract, pinned cheaply here (CI diffs bigger runs).
#[test]
fn proc_pool_of_one_matches_in_process_stdout() {
    let worker = env!("CARGO_BIN_EXE_dejavuzz-simd");
    let run = |backend: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_dejavuzz-fuzz"))
            .args(["--backend", backend, "--iters", "3", "--seed", "11"])
            .env("DEJAVUZZ_SIMD_BIN", worker)
            .output()
            .expect("spawn dejavuzz-fuzz");
        assert_eq!(out.status.code(), Some(0), "{backend} failed");
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| {
                !l.starts_with("fuzzing ") && !l.contains("elapsed") && !l.contains("throughput")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(run("netlist:small"), run("proc:netlist:small:1"));
}

/// A malformed `--pipeline-lag` value is an exit-2 error naming both the
/// value and the flag — not a silent run with lag 0.
#[test]
fn malformed_pipeline_lag_exits_two_naming_the_flag() {
    let (code, _, stderr) = fuzz(&["--pipeline-lag", "abc"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("invalid value \"abc\" for --pipeline-lag"),
        "stderr names value and flag: {stderr}"
    );
}

/// `--pipeline-lag` followed by another flag is a missing value, not a
/// value.
#[test]
fn pipeline_lag_requires_a_value() {
    let (code, _, stderr) = fuzz(&["--pipeline-lag", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--pipeline-lag requires a value"),
        "stderr: {stderr}"
    );
}

/// Pipelining under the default (round-robin) scheduler is refused with
/// the builder's structured message, pinned verbatim.
#[test]
fn pipeline_lag_with_round_robin_is_a_structured_build_error() {
    let (code, _, stderr) = fuzz(&["--pipeline-lag", "2", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains(
            "pipeline lag requires a queue-planning scheduler, \
             but \"round\" does not support pipelining"
        ),
        "stderr carries the builder's message: {stderr}"
    );
}

/// A malformed `--gossip-every` value is an exit-2 error naming both the
/// value and the flag.
#[test]
fn malformed_gossip_every_exits_two_naming_the_flag() {
    let (code, _, stderr) = fuzz(&["--gossip-every", "abc"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("invalid value \"abc\" for --gossip-every"),
        "stderr names value and flag: {stderr}"
    );
}

/// `--peers` followed by another flag is a missing value, not a value.
#[test]
fn peers_requires_a_value() {
    let (code, _, stderr) = fuzz(&["--peers", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--peers requires a value"),
        "stderr: {stderr}"
    );
}

/// A peer spec without the `unix:` scheme is refused with the spec named
/// verbatim — never treated as a path.
#[test]
fn unknown_peer_spec_exits_two() {
    let (code, _, stderr) = fuzz(&["--peers", "tcp:127.0.0.1:9", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("unknown peer spec \"tcp:127.0.0.1:9\" (expected unix:PATH)"),
        "stderr: {stderr}"
    );
}

/// A peer socket that cannot be dialled is a configuration error at
/// startup (exit 2 naming the spec) — only a peer dying *mid-run*
/// degrades to a solo campaign.
#[test]
fn unreachable_peer_exits_two() {
    let (code, _, stderr) = fuzz(&[
        "--peers",
        "unix:/nonexistent/djvz-fleet.sock",
        "--iters",
        "1",
    ]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("cannot connect to peer \"unix:/nonexistent/djvz-fleet.sock\""),
        "stderr: {stderr}"
    );
}

/// `--gossip-every` without `--peers` warns on stderr and changes
/// nothing: the JSON telemetry on stdout is byte-identical to a run
/// without the flag.
#[test]
fn solo_gossip_every_warns_and_leaves_stdout_untouched() {
    let plain = fuzz(&["--iters", "2", "--telemetry", "json"]);
    let solo = fuzz(&["--iters", "2", "--telemetry", "json", "--gossip-every", "3"]);
    assert_eq!(plain.0, Some(0));
    assert_eq!(solo.0, Some(0));
    assert!(
        solo.2
            .contains("warning: --gossip-every 3 ignored; no --peers given"),
        "stderr: {}",
        solo.2
    );
    assert_eq!(
        plain.1, solo.1,
        "stdout telemetry is byte-identical with and without the ignored flag"
    );
}

/// `--metrics-out` followed by another flag is a missing value, not a
/// value: the dump must never land in a file literally named "--iters".
#[test]
fn metrics_out_requires_a_value() {
    let (code, _, stderr) = fuzz(&["--metrics-out", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--metrics-out requires a value"),
        "stderr: {stderr}"
    );
}

/// `--metrics-out` writes a JSON metrics dump at campaign end without
/// perturbing campaign output: stdout is byte-identical to a run
/// without the flag, the dump announces itself on stderr only, and the
/// file holds the registry's three top-level sections.
#[test]
fn metrics_out_writes_json_and_leaves_stdout_untouched() {
    let dir = std::env::temp_dir().join(format!("djvz-cli-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let plain = fuzz(&["--iters", "2", "--telemetry", "json"]);
    let dumped = fuzz(&[
        "--iters",
        "2",
        "--telemetry",
        "json",
        "--metrics-out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(plain.0, Some(0));
    assert_eq!(dumped.0, Some(0), "stderr: {}", dumped.2);
    assert_eq!(
        plain.1, dumped.1,
        "stdout is byte-identical with and without --metrics-out"
    );
    assert!(
        dumped.2.contains("metrics written to"),
        "stderr: {}",
        dumped.2
    );
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.starts_with("{\"counters\":{"), "dump: {json}");
    assert!(json.contains("\"gauges\":{"), "dump: {json}");
    assert!(json.contains("\"histograms\":{"), "dump: {json}");
    assert!(
        json.contains("\"dejavuzz_iterations_total\":2"),
        "2 iters x 1 worker = 2 committed slots recorded: {json}"
    );
    assert!(json.ends_with("}\n"), "newline-terminated object");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The supported combination actually runs: steal + lag completes a tiny
/// campaign and announces the lag on stderr (stdout stays report-only).
#[test]
fn pipelined_steal_campaign_runs() {
    let (code, stdout, stderr) = fuzz(&[
        "--scheduler",
        "steal",
        "--pipeline-lag",
        "1",
        "--iters",
        "2",
        "--workers",
        "2",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("fuzzing"), "the campaign report ran");
    assert!(
        stderr.contains("scheduler steal, seed policy energy, pipeline lag 1"),
        "stderr: {stderr}"
    );
}

/// An unknown scenario family is an exit-2 error naming the offending
/// spec and the family, before any campaign work.
#[test]
fn unknown_scenario_family_exits_two_naming_the_family() {
    let (code, _, stderr) = fuzz(&["--scenarios", "ghost", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains(
            "dejavuzz-fuzz: invalid scenario spec \"ghost\": unknown scenario family \"ghost\""
        ),
        "stderr names the family: {stderr}"
    );
}

/// A malformed scenario parameter is an exit-2 error naming the item,
/// the family and the expected shape.
#[test]
fn malformed_scenario_param_exits_two_naming_the_item() {
    let (code, _, stderr) = fuzz(&["--scenarios", "zenbleed:zero_idiom=x", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains(
            "invalid scenario spec \"zenbleed:zero_idiom=x\": malformed parameter \
             \"zero_idiom=x\" for scenario family \"zenbleed\" (expected name=integer)"
        ),
        "stderr: {stderr}"
    );
}

/// An empty scenario list (empty string, or only separators) is refused:
/// "no scenarios" is spelled by omitting the flag, never by passing it
/// an empty value.
#[test]
fn empty_scenario_list_exits_two() {
    for value in ["", ",", " , "] {
        let (code, _, stderr) = fuzz(&["--scenarios", value, "--iters", "1"]);
        assert_eq!(code, Some(2), "--scenarios {value:?}");
        assert!(
            stderr.contains("dejavuzz-fuzz: --scenarios requires at least one scenario family"),
            "stderr for {value:?}: {stderr}"
        );
    }
}

/// `--scenarios` as the last argument is a missing-value error.
#[test]
fn scenarios_flag_requires_a_value() {
    let (code, _, stderr) = fuzz(&["--iters", "1", "--scenarios"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("dejavuzz-fuzz: --scenarios requires a value"),
        "stderr: {stderr}"
    );
}

/// The scenario note is stderr chatter: enabling scenarios never leaks
/// configuration lines into the stdout report stream.
#[test]
fn scenario_note_goes_to_stderr_not_stdout() {
    let (code, stdout, stderr) = fuzz(&["--scenarios", "zenbleed", "--iters", "2", "--seed", "5"]);
    assert_eq!(code, Some(0));
    assert!(
        stderr.contains("dejavuzz-fuzz: scenarios zenbleed"),
        "stderr carries the note: {stderr}"
    );
    assert!(
        !stdout.contains("dejavuzz-fuzz: scenarios"),
        "stdout stays a pure report: {stdout}"
    );
}

/// `--list-extensions` output is pinned verbatim: scripts parse it, and
/// the shipped scenario templates (with their parameter spaces) are part
/// of the surface.
#[test]
fn list_extensions_output_is_pinned() {
    let (code, stdout, _) = fuzz(&["--list-extensions"]);
    assert_eq!(code, Some(0));
    let expected = "\
schedulers:
  round
  steal
seed policies:
  energy
  favoured
backends:
  behavioural
  netlist:small
  netlist:boom
  netlist:xiangshan
  proc:<inner>:<M>
scenarios:
  double-fetch \u{2014} double-fetch TOCTOU window over the memory-disambiguation squash (gap=2 in [0, 8])
  nested-spec \u{2014} nested-speculation depth stress: depth data-dependent branches in-window (depth=3 in [1, 8])
  sibling-leak \u{2014} sibling-unit contention sweep (div/mul/fpu) with secret-dependent bursts (unit=0 in [0, 2], bursts=2 in [1, 4])
  zenbleed \u{2014} move-elimination / register-file stale-data leak (Zenbleed-shaped) (zero_idiom=0 in [0, 2])
";
    assert_eq!(stdout, expected);
}
