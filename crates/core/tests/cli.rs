//! CLI contract tests for `dejavuzz-fuzz`: strict flag parsing exits 2
//! with an error naming the flag (never a silent fall-through to the
//! default), and configuration errors surface the builder's structured
//! message. Pinned here because scripts and CI parse this output.

use std::process::Command;

fn fuzz(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dejavuzz-fuzz"))
        .args(args)
        .output()
        .expect("spawn dejavuzz-fuzz");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A malformed `--pipeline-lag` value is an exit-2 error naming both the
/// value and the flag — not a silent run with lag 0.
#[test]
fn malformed_pipeline_lag_exits_two_naming_the_flag() {
    let (code, _, stderr) = fuzz(&["--pipeline-lag", "abc"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("invalid value \"abc\" for --pipeline-lag"),
        "stderr names value and flag: {stderr}"
    );
}

/// `--pipeline-lag` followed by another flag is a missing value, not a
/// value.
#[test]
fn pipeline_lag_requires_a_value() {
    let (code, _, stderr) = fuzz(&["--pipeline-lag", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--pipeline-lag requires a value"),
        "stderr: {stderr}"
    );
}

/// Pipelining under the default (round-robin) scheduler is refused with
/// the builder's structured message, pinned verbatim.
#[test]
fn pipeline_lag_with_round_robin_is_a_structured_build_error() {
    let (code, _, stderr) = fuzz(&["--pipeline-lag", "2", "--iters", "1"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains(
            "pipeline lag requires a queue-planning scheduler, \
             but \"round\" does not support pipelining"
        ),
        "stderr carries the builder's message: {stderr}"
    );
}

/// The supported combination actually runs: steal + lag completes a tiny
/// campaign and announces the lag on stderr (stdout stays report-only).
#[test]
fn pipelined_steal_campaign_runs() {
    let (code, stdout, stderr) = fuzz(&[
        "--scheduler",
        "steal",
        "--pipeline-lag",
        "1",
        "--iters",
        "2",
        "--workers",
        "2",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("fuzzing"), "the campaign report ran");
    assert!(
        stderr.contains("scheduler steal, seed policy energy, pipeline lag 1"),
        "stderr: {stderr}"
    );
}
