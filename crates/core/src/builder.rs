//! [`CampaignBuilder`]: the single typed entry point for configuring and
//! launching fuzzing campaigns.
//!
//! Historically a campaign was assembled from ~15 loose
//! `Orchestrator` setters plus `CoreConfig`-positional compatibility
//! constructors, each validating (or panicking) on its own. The builder
//! subsumes all of them: one value describes the whole campaign, `build`
//! validates the whole configuration *up front* into one structured
//! [`BuildError`] (never a panic), and the returned
//! [`crate::executor::Orchestrator`] only ever runs configurations that
//! already passed validation.
//!
//! Beyond the built-in selector enums ([`BackendSpec`],
//! [`SchedulerSpec`], [`PolicySpec`]), the builder accepts *custom
//! implementations* as constructor trait objects
//! ([`CampaignBuilder::scheduler_ctor`],
//! [`CampaignBuilder::seed_policy_ctor`],
//! [`CampaignBuilder::backend_ctor`]) — each call registers the
//! constructor in the process-global [`crate::registry`] under the given
//! id and selects it, so the campaign's snapshots can persist the id and
//! a later `--resume` (same process or a fresh one that re-registers the
//! id) rehydrates the custom implementation, state blob included.
//!
//! # Embedding example
//!
//! ```
//! use dejavuzz::builder::CampaignBuilder;
//! use dejavuzz::observer::{CampaignObserver, BugFound};
//! use dejavuzz::scheduler::SchedulerSpec;
//!
//! // An observer that collects bug reports as they are committed.
//! #[derive(Default)]
//! struct BugLog(Vec<String>);
//! impl CampaignObserver for BugLog {
//!     fn bug_found(&mut self, ev: &BugFound) {
//!         self.0.push(ev.bug.to_string());
//!     }
//! }
//!
//! let orch = CampaignBuilder::new() // behavioural SmallBOOM by default
//!     .workers(2)
//!     .seed(7)
//!     .scheduler(SchedulerSpec::WorkStealing)
//!     .build()
//!     .expect("a valid configuration");
//! let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(BugLog::default())];
//! let (report, _snapshot) = orch.run_observed(16, &mut observers);
//! assert_eq!(report.stats.iterations, 16);
//! ```

use std::fmt;
use std::path::PathBuf;

use crate::backend::{BackendSpec, SimBackend};
use crate::campaign::FuzzerOptions;
use crate::executor::Orchestrator;
use crate::gossip::SharedGossipLink;
use crate::registry;
use crate::scheduler::{PolicySpec, Scheduler, SchedulerSpec, SeedPolicy};
use crate::snapshot::{CampaignSnapshot, ResumeError};

/// Why [`CampaignBuilder::build`] refused a configuration. Every variant
/// is a misconfiguration the old setter-based API either panicked on or
/// silently clamped; the builder reports them all structurally, before
/// any worker thread or simulator is created.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The corpus exploit probability is NaN or outside `[0, 1]`.
    InvalidExploitProbability {
        /// The offending value.
        value: f64,
    },
    /// A pool needs at least one worker.
    ZeroWorkers,
    /// A round needs at least one slot per worker.
    ZeroBatch,
    /// The corpus must be able to hold at least one seed.
    ZeroCorpusCapacity,
    /// The configuration names a scheduler extension id with no
    /// registered constructor.
    UnknownScheduler {
        /// The unresolvable id.
        id: String,
    },
    /// The configuration names a seed-policy extension id with no
    /// registered constructor.
    UnknownSeedPolicy {
        /// The unresolvable id.
        id: String,
    },
    /// The configuration names a backend extension id with no registered
    /// constructor.
    UnknownBackend {
        /// The unresolvable id.
        id: String,
    },
    /// Cross-round pipelining (`pipeline_lag > 0`) was requested under a
    /// scheduler that does not promise queue-shaped plans
    /// ([`Scheduler::supports_pipelining`] is false) — the orchestrator
    /// cannot pre-draw a round it cannot represent as independent slots.
    PipelineLagUnsupported {
        /// The offending scheduler's label (`SchedulerSpec::label`).
        scheduler: String,
    },
    /// A gossip link was attached ([`CampaignBuilder::gossip`]) without a
    /// positive exchange cadence ([`CampaignBuilder::gossip_every`]) — a
    /// link the campaign would never publish on or drain is a
    /// misconfiguration, not a silent no-op.
    GossipLinkWithoutInterval,
    /// A gossip cadence was set without attaching a link — the campaign
    /// would silently skip every scheduled exchange.
    GossipIntervalWithoutLink {
        /// The configured cadence, in rounds.
        every: usize,
    },
    /// A supplied extension id is unusable (empty, non-ASCII, contains
    /// `:`), wrapping the registry's diagnosis.
    InvalidExtensionId(registry::RegistryError),
    /// A `proc:<inner>:<M>` backend's worker pool could not be started:
    /// missing `dejavuzz-simd` binary, spawn failure, or the workers
    /// refused the configuration at handshake.
    ProcPool {
        /// The backend label (`proc:<inner>:<M>`).
        spec: String,
        /// The spawn or handshake diagnosis.
        detail: String,
    },
    /// A scenario spec handed to [`CampaignBuilder::scenarios`] (or
    /// adopted from a resumed snapshot) does not parse: unknown family,
    /// malformed or out-of-range parameter. Wraps the scenario
    /// registry's diagnosis verbatim.
    InvalidScenario {
        /// The offending spec as supplied.
        spec: String,
        /// The scenario registry's diagnosis.
        detail: String,
    },
    /// The snapshot handed to [`CampaignBuilder::resume`] cannot continue
    /// under this configuration.
    Resume(ResumeError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidExploitProbability { value } => {
                write!(f, "exploit probability must be in [0, 1], got {value}")
            }
            BuildError::ZeroWorkers => write!(f, "workers must be at least 1"),
            BuildError::ZeroBatch => write!(f, "batch size must be at least 1"),
            BuildError::ZeroCorpusCapacity => write!(f, "corpus capacity must be at least 1"),
            BuildError::UnknownScheduler { id } => {
                write!(f, "no scheduler extension registered under id {id:?}")
            }
            BuildError::UnknownSeedPolicy { id } => {
                write!(f, "no seed-policy extension registered under id {id:?}")
            }
            BuildError::UnknownBackend { id } => {
                write!(f, "no backend extension registered under id {id:?}")
            }
            BuildError::PipelineLagUnsupported { scheduler } => {
                write!(
                    f,
                    "pipeline lag requires a queue-planning scheduler, \
                     but {scheduler:?} does not support pipelining"
                )
            }
            BuildError::GossipLinkWithoutInterval => {
                write!(f, "a gossip link requires gossip_every of at least 1 round")
            }
            BuildError::GossipIntervalWithoutLink { every } => {
                write!(
                    f,
                    "gossip_every of {every} rounds set, but no gossip link attached"
                )
            }
            BuildError::InvalidExtensionId(e) => write!(f, "{e}"),
            BuildError::ProcPool { spec, detail } => {
                write!(f, "cannot start worker pool for backend {spec:?}: {detail}")
            }
            BuildError::InvalidScenario { spec, detail } => {
                write!(f, "invalid scenario spec {spec:?}: {detail}")
            }
            BuildError::Resume(e) => write!(f, "cannot resume: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ResumeError> for BuildError {
    fn from(e: ResumeError) -> Self {
        BuildError::Resume(e)
    }
}

impl From<registry::RegistryError> for BuildError {
    fn from(e: registry::RegistryError) -> Self {
        BuildError::InvalidExtensionId(e)
    }
}

/// Interns a list of scenario specs and returns the campaign's canonical
/// scenario set: `(canonical specs, intern indices)`, both sorted by the
/// canonical spec *string* and deduplicated. Sorting by string (not by
/// process-local intern index) is what makes the k-th fresh-seed draw
/// map to the same scenario instance in every process — intern order
/// differs between a fresh build and a resume.
pub(crate) fn intern_scenarios<S: AsRef<str>>(
    specs: &[S],
) -> Result<(Vec<String>, Vec<u16>), BuildError> {
    let mut interned: Vec<(String, u16)> = Vec::with_capacity(specs.len());
    for spec in specs {
        let spec = spec.as_ref();
        let idx =
            dejavuzz_scenarios::intern_spec(spec).map_err(|e| BuildError::InvalidScenario {
                spec: spec.to_string(),
                detail: e.to_string(),
            })?;
        interned.push((dejavuzz_scenarios::instance_spec(idx).to_string(), idx));
    }
    interned.sort_by(|a, b| a.0.cmp(&b.0));
    interned.dedup_by(|a, b| a.0 == b.0);
    Ok(interned.into_iter().unzip())
}

/// The typed campaign entry point. See the module docs; every method is
/// chainable, the builder is `Clone` (re-run the same configuration with
/// different halt points, as the persistence tests do) and
/// [`CampaignBuilder::build`] is where all validation happens.
#[derive(Clone, Default)]
pub struct CampaignBuilder {
    backend: BackendSpec,
    opts: FuzzerOptions,
    workers: usize,
    seed: u64,
    batch: Option<usize>,
    pipeline_lag: usize,
    scheduler: SchedulerSpec,
    policy: PolicySpec,
    corpus_capacity: usize,
    corpus_exploit: f64,
    shard_id: u32,
    snapshot_every: usize,
    snapshot_path: Option<PathBuf>,
    snapshot_keep: usize,
    halt_after: Option<usize>,
    resume: Option<Box<CampaignSnapshot>>,
    gossip_every: usize,
    gossip: Option<SharedGossipLink>,
    scenarios: Vec<String>,
    /// An id supplied through a `*_ctor` convenience that failed registry
    /// validation; surfaced as a [`BuildError`] at build time so the
    /// convenience methods stay chainable.
    bad_id: Option<registry::RegistryError>,
}

// Manual: the gossip link is a `dyn` trait object with no `Debug` bound
// (links wrap sockets); everything a failing configuration needs to name
// is here.
impl fmt::Debug for CampaignBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignBuilder")
            .field("backend", &self.backend.label())
            .field("workers", &self.workers)
            .field("seed", &self.seed)
            .field("batch", &self.batch)
            .field("pipeline_lag", &self.pipeline_lag)
            .field("scheduler", &self.scheduler)
            .field("policy", &self.policy)
            .field("shard_id", &self.shard_id)
            .field("scenarios", &self.scenarios)
            .field("gossip_every", &self.gossip_every)
            .field("gossip", &self.gossip.as_ref().map(|_| "<link>"))
            .finish_non_exhaustive()
    }
}

impl CampaignBuilder {
    /// A fresh builder with the library defaults: the behavioural
    /// SmallBOOM backend, default [`FuzzerOptions`], one worker, seed 0,
    /// round-robin scheduling, energy-decay corpus picks.
    pub fn new() -> Self {
        CampaignBuilder {
            backend: BackendSpec::default(),
            opts: FuzzerOptions::default(),
            workers: 1,
            seed: 0,
            batch: None,
            pipeline_lag: 0,
            scheduler: SchedulerSpec::default(),
            policy: PolicySpec::default(),
            corpus_capacity: crate::corpus::DEFAULT_CAPACITY,
            corpus_exploit: crate::corpus::EXPLOIT_PROBABILITY,
            shard_id: 0,
            snapshot_every: 0,
            snapshot_path: None,
            snapshot_keep: 0,
            halt_after: None,
            resume: None,
            gossip_every: 0,
            gossip: None,
            scenarios: Vec::new(),
            bad_id: None,
        }
    }

    /// Selects the simulation backend (default: behavioural SmallBOOM).
    /// Each worker thread builds its own simulator from the spec.
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Supplies a custom [`SimBackend`] as a constructor trait object:
    /// registers `ctor` in the global [`crate::registry`] under `id` and
    /// selects [`BackendSpec::Extension`]`(id)`. The constructor runs
    /// once per worker thread. Snapshots echo the label `ext:<id>`, so
    /// resuming requires the same id to be registered again.
    pub fn backend_ctor(
        mut self,
        id: &str,
        ctor: impl Fn() -> Box<dyn SimBackend> + Send + Sync + 'static,
    ) -> Self {
        if let Err(e) = registry::register_backend(id, ctor) {
            self.bad_id = Some(e);
            return self;
        }
        self.backend = BackendSpec::Extension(id.to_string());
        self
    }

    /// Campaign options (variant, IFT mode, mutation budget).
    pub fn options(mut self, opts: FuzzerOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Pipeline workers sharing one corpus (default 1; zero is a
    /// [`BuildError::ZeroWorkers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The campaign RNG seed (default 0). Together with `workers` and
    /// `batch` this is the campaign's replay identity.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Iteration slots per worker per round (default
    /// [`crate::executor::DEFAULT_BATCH`]; zero is a
    /// [`BuildError::ZeroBatch`]). Part of the replay identity — at
    /// `batch == 1` the two built-in schedulers are bit-identical (see
    /// the [`crate::scheduler`] docs).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Feedback lag of the cross-round steal pipeline (default 0 =
    /// barriered rounds, the exact historical behaviour). Any `lag >= 1`
    /// lets the orchestrator pre-draw the next round while the current
    /// one's stragglers finish: round `k` is planned from the state
    /// committed through round `k - 2`, killing the end-of-round barrier
    /// idle. Requires a scheduler whose
    /// [`Scheduler::supports_pipelining`] is true (the built-in
    /// [`SchedulerSpec::WorkStealing`]); anything else is a
    /// [`BuildError::PipelineLagUnsupported`]. Part of the campaign's
    /// replay identity: results are identical per `(seed, workers,
    /// batch, lag)`, and every `lag >= 1` yields the same results.
    pub fn pipeline_lag(mut self, lag: usize) -> Self {
        self.pipeline_lag = lag;
        self
    }

    /// Selects the slot scheduler (default
    /// [`SchedulerSpec::RoundRobin`]). Pass
    /// [`SchedulerSpec::Extension`] for an implementation registered with
    /// [`crate::registry::register_scheduler`].
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Supplies a custom [`Scheduler`] as a constructor trait object:
    /// registers `ctor` under `id` and selects
    /// [`SchedulerSpec::Extension`]`(id)`. The constructor receives
    /// `Some(blob)` when rehydrating the scheduler's
    /// [`Scheduler::state`] from a snapshot, `None` for a fresh campaign.
    pub fn scheduler_ctor(
        mut self,
        id: &str,
        ctor: impl Fn(Option<&[u8]>) -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> Self {
        if let Err(e) = registry::register_scheduler(id, ctor) {
            self.bad_id = Some(e);
            return self;
        }
        self.scheduler = SchedulerSpec::Extension(id.to_string());
        self
    }

    /// Selects the corpus seed policy (default
    /// [`PolicySpec::EnergyDecay`]). Pass [`PolicySpec::Extension`] for
    /// an implementation registered with
    /// [`crate::registry::register_seed_policy`].
    pub fn seed_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Supplies a custom [`SeedPolicy`] as a constructor trait object:
    /// registers `ctor` under `id` and selects
    /// [`PolicySpec::Extension`]`(id)`. The constructor receives the raw
    /// blob of a persisted
    /// [`crate::scheduler::PolicyState::Opaque`] on resume.
    pub fn seed_policy_ctor(
        mut self,
        id: &str,
        ctor: impl Fn(Option<&[u8]>) -> Box<dyn SeedPolicy> + Send + Sync + 'static,
    ) -> Self {
        if let Err(e) = registry::register_seed_policy(id, ctor) {
            self.bad_id = Some(e);
            return self;
        }
        self.policy = PolicySpec::Extension(id.to_string());
        self
    }

    /// Overrides the corpus capacity (default
    /// [`crate::corpus::DEFAULT_CAPACITY`]; zero is a
    /// [`BuildError::ZeroCorpusCapacity`]).
    pub fn corpus_capacity(mut self, capacity: usize) -> Self {
        self.corpus_capacity = capacity;
        self
    }

    /// Overrides the corpus exploit probability (default
    /// [`crate::corpus::EXPLOIT_PROBABILITY`]); `0.0` disables corpus
    /// scheduling so every iteration samples a fresh uniform seed
    /// (measurements like Table 3 need unskewed per-window-type counts).
    ///
    /// NaN or out-of-`[0, 1]` values are *not* panics here (the
    /// historical setter asymmetry): they surface as
    /// [`BuildError::InvalidExploitProbability`] from
    /// [`CampaignBuilder::build`].
    pub fn exploit_probability(mut self, p: f64) -> Self {
        self.corpus_exploit = p;
        self
    }

    /// Tags snapshots from this campaign with a shard id (multi-machine
    /// campaigns give each machine a distinct id; `dejavuzz-merge` keys
    /// reports by it).
    pub fn shard_id(mut self, shard: u32) -> Self {
        self.shard_id = shard;
        self
    }

    /// Checkpoint destination. Each write is atomic (write-rename), so a
    /// crash mid-checkpoint leaves the previous snapshot intact; a final
    /// checkpoint is always written at run end when a path is set.
    pub fn snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Writes a checkpoint every `rounds` rounds (0 — the default —
    /// disables periodic checkpoints; the end-of-run snapshot is still
    /// written when a [`CampaignBuilder::snapshot_path`] is set).
    pub fn snapshot_every(mut self, rounds: usize) -> Self {
        self.snapshot_every = rounds;
        self
    }

    /// Keeps the last `keep` *periodic* checkpoints as rotated
    /// `<path>.<iterations>` siblings instead of overwriting one file,
    /// pruning older rounds after each successful atomic write (0 — the
    /// default — keeps the single-file overwrite behaviour). The
    /// end-of-run checkpoint always lands on the plain path either way.
    pub fn snapshot_keep(mut self, keep: usize) -> Self {
        self.snapshot_keep = keep;
        self
    }

    /// Halts the run gracefully at the first round boundary where at
    /// least `iterations` iterations have completed — the controlled
    /// form of an interruption, used with checkpointing to exercise
    /// stop/resume workflows. The run's total-iteration target is
    /// unchanged, so slot scheduling (and therefore the resumed
    /// continuation) stays bit-identical to an uninterrupted run.
    pub fn halt_after(mut self, iterations: usize) -> Self {
        self.halt_after = Some(iterations);
        self
    }

    /// Exchanges gossip frames with fleet peers every `rounds` round
    /// boundaries (default 0 = never). At each boundary the campaign
    /// publishes its coverage delta plus its favoured corpus entries on
    /// the attached [`CampaignBuilder::gossip`] link and imports every
    /// queued peer frame, firing one
    /// [`crate::observer::PeerDeltaImported`] /
    /// [`crate::observer::SeedImported`] event per import. A positive
    /// cadence without a link (or a link without a cadence) is a
    /// [`BuildError`] — gossip is never a silent half-configuration.
    pub fn gossip_every(mut self, rounds: usize) -> Self {
        self.gossip_every = rounds;
        self
    }

    /// Attaches the gossip link this campaign publishes on and drains
    /// peer frames from — an in-process [`crate::gossip::GossipLink`]
    /// (the fleet bus) or a socket-backed one
    /// ([`crate::gossip::UnixGossipLink`] behind
    /// [`crate::gossip::shared_link`]). Requires
    /// [`CampaignBuilder::gossip_every`] `>= 1`. Campaigns without a
    /// link are byte-identical to builds that never heard of gossip.
    pub fn gossip(mut self, link: SharedGossipLink) -> Self {
        self.gossip = Some(link);
        self
    }

    /// Enables scenario-template window families on top of the eight
    /// built-in [`crate::gen::WindowType`]s. Each spec names a family
    /// registered in [`crate::scenarios`] (`dejavuzz-scenarios`),
    /// optionally with `name=value` parameter overrides:
    /// `"nested-spec:depth=5"`. Specs are canonicalised (every declared
    /// parameter spelled out in declaration order) and deduplicated, so
    /// `"nested-spec"` and `"nested-spec:depth=3"` select the same
    /// instance. The enabled set is part of the campaign's replay
    /// identity: it is persisted in snapshots and adopted back on
    /// resume. Unknown families and malformed parameters surface from
    /// [`CampaignBuilder::build`] as [`BuildError::InvalidScenario`].
    pub fn scenarios<S: AsRef<str>>(mut self, specs: &[S]) -> Self {
        self.scenarios = specs.iter().map(|s| s.as_ref().to_string()).collect();
        self
    }

    /// Continues a snapshotted campaign: the built orchestrator's next
    /// run picks up where the snapshot stopped, bit-identically to a run
    /// that was never interrupted.
    ///
    /// The snapshot's geometry (`workers`, `seed`, `batch`, `shard_id`)
    /// and its scheduling configuration (scheduler, seed policy, their
    /// persisted state) are *adopted* — they are part of the campaign's
    /// replay identity. The backend label and campaign options must match
    /// this builder's; mismatches are a [`BuildError::Resume`]. Snapshots
    /// naming extension ids additionally require those ids to be
    /// registered ([`BuildError::UnknownScheduler`] and friends
    /// otherwise) — that is how user-supplied implementations round-trip
    /// through persistence.
    pub fn resume(mut self, snapshot: CampaignSnapshot) -> Self {
        self.resume = Some(Box::new(snapshot));
        self
    }

    /// Validates the whole configuration and builds the runnable
    /// [`Orchestrator`]. This is the only place campaign configuration is
    /// validated — every error any combination of settings can produce
    /// surfaces here as a [`BuildError`], before a single worker thread
    /// or simulator instance exists.
    pub fn build(mut self) -> Result<Orchestrator, BuildError> {
        if let Some(e) = self.bad_id.take() {
            return Err(e.into());
        }
        // Resume adoption first: the snapshot's replay identity overrides
        // whatever the builder was configured with, and the adopted
        // selectors are what the extension-resolution checks below must
        // see.
        if let Some(snap) = &self.resume {
            let current = self.backend.label();
            if snap.backend != current {
                return Err(ResumeError::BackendMismatch {
                    snapshot: snap.backend.clone(),
                    current,
                }
                .into());
            }
            if snap.opts != self.opts {
                return Err(ResumeError::OptionsMismatch.into());
            }
            self.workers = snap.workers;
            self.seed = snap.seed;
            self.batch = Some(snap.batch);
            self.shard_id = snap.shard_id;
            self.scheduler = snap.scheduler.clone();
            self.policy = snap.policy.clone();
            self.pipeline_lag = snap.pipeline_lag;
            self.scenarios = snap.scenarios.clone();
        }
        let (scenario_specs, scenarios) = intern_scenarios(&self.scenarios)?;
        if self.workers == 0 {
            return Err(BuildError::ZeroWorkers);
        }
        let batch = self.batch.unwrap_or(crate::executor::DEFAULT_BATCH);
        if batch == 0 {
            return Err(BuildError::ZeroBatch);
        }
        if self.corpus_capacity == 0 {
            return Err(BuildError::ZeroCorpusCapacity);
        }
        if !(0.0..=1.0).contains(&self.corpus_exploit) {
            return Err(BuildError::InvalidExploitProbability {
                value: self.corpus_exploit,
            });
        }
        if self.gossip.is_some() && self.gossip_every == 0 {
            return Err(BuildError::GossipLinkWithoutInterval);
        }
        if self.gossip.is_none() && self.gossip_every > 0 {
            return Err(BuildError::GossipIntervalWithoutLink {
                every: self.gossip_every,
            });
        }
        // Resolve every extension id now: a campaign must never discover
        // an unregistered extension mid-run. The resolved constructors
        // are captured in the orchestrator, so a later re-registration
        // (or none) cannot change a built campaign.
        let backend_ctor = match &self.backend {
            BackendSpec::Extension(id) => Some(
                registry::backend_ctor(id)
                    .ok_or_else(|| BuildError::UnknownBackend { id: id.clone() })?,
            ),
            _ => None,
        };
        let scheduler_ctor = match &self.scheduler {
            SchedulerSpec::Extension(id) => Some(
                registry::scheduler_ctor(id)
                    .ok_or_else(|| BuildError::UnknownScheduler { id: id.clone() })?,
            ),
            _ => None,
        };
        let policy_ctor = match &self.policy {
            PolicySpec::Extension(id) => Some(
                registry::seed_policy_ctor(id)
                    .ok_or_else(|| BuildError::UnknownSeedPolicy { id: id.clone() })?,
            ),
            _ => None,
        };
        if self.pipeline_lag > 0 {
            // Probe an instance: pipelining needs the scheduler's promise
            // that every plan is queue-shaped (independent pre-drawn
            // slots), and extensions can only answer from an instance.
            let probe = match &scheduler_ctor {
                Some(ctor) => ctor(None),
                None => self
                    .scheduler
                    .build(None)
                    .expect("built-in scheduler specs build infallibly"),
            };
            if !probe.supports_pipelining() {
                return Err(BuildError::PipelineLagUnsupported {
                    scheduler: self.scheduler.label(),
                });
            }
        }
        // Spawn (and handshake) the worker-process pool last, after all
        // cheap validation: every other misconfiguration is reported
        // without ever forking. The one pool is shared by every executor
        // worker thread of this orchestrator.
        let proc = match &self.backend {
            BackendSpec::Proc(spec) => {
                Some(crate::procbackend::spawn_shared(spec).map_err(|detail| {
                    BuildError::ProcPool {
                        spec: self.backend.label(),
                        detail,
                    }
                })?)
            }
            _ => None,
        };
        Ok(Orchestrator {
            backend: self.backend,
            backend_ctor,
            proc,
            opts: self.opts,
            workers: self.workers,
            seed: self.seed,
            batch,
            pipeline_lag: self.pipeline_lag,
            scheduler: self.scheduler,
            scheduler_ctor,
            policy: self.policy,
            policy_ctor,
            corpus_capacity: self.corpus_capacity,
            corpus_exploit: self.corpus_exploit,
            shard_id: self.shard_id,
            snapshot_every: self.snapshot_every,
            snapshot_path: self.snapshot_path,
            snapshot_keep: self.snapshot_keep,
            halt_after: self.halt_after,
            resume: self.resume,
            gossip_every: self.gossip_every,
            gossip: self.gossip,
            scenario_specs,
            scenarios,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::RoundRobin;
    use dejavuzz_uarch::boom_small;

    fn base() -> CampaignBuilder {
        CampaignBuilder::new()
            .backend(BackendSpec::behavioural(boom_small()))
            .seed(5)
    }

    /// The builder-path validation contract of the
    /// `with_exploit_probability` asymmetry fix: NaN and out-of-range
    /// values are structured errors with pinned messages, never panics.
    #[test]
    fn invalid_probabilities_are_build_errors_with_pinned_messages() {
        for bad in [f64::NAN, -0.1, 1.01, f64::INFINITY] {
            let err = base().exploit_probability(bad).build().unwrap_err();
            assert!(
                matches!(err, BuildError::InvalidExploitProbability { value }
                    if value.to_bits() == bad.to_bits()),
                "{bad} gave {err:?}"
            );
            assert_eq!(
                err.to_string(),
                format!("exploit probability must be in [0, 1], got {bad}")
            );
        }
        // The boundary values are valid.
        for ok in [0.0, 1.0, 0.35] {
            assert!(base().exploit_probability(ok).build().is_ok());
        }
    }

    #[test]
    fn zero_geometry_is_rejected_with_pinned_messages() {
        let err = base().workers(0).build().unwrap_err();
        assert_eq!(err, BuildError::ZeroWorkers);
        assert_eq!(err.to_string(), "workers must be at least 1");

        let err = base().batch(0).build().unwrap_err();
        assert_eq!(err, BuildError::ZeroBatch);
        assert_eq!(err.to_string(), "batch size must be at least 1");

        let err = base().corpus_capacity(0).build().unwrap_err();
        assert_eq!(err, BuildError::ZeroCorpusCapacity);
        assert_eq!(err.to_string(), "corpus capacity must be at least 1");
    }

    #[test]
    fn unknown_extensions_are_build_errors_with_pinned_messages() {
        let err = base()
            .scheduler(SchedulerSpec::Extension("nope-sched".into()))
            .build()
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "no scheduler extension registered under id \"nope-sched\""
        );
        let err = base()
            .seed_policy(PolicySpec::Extension("nope-pol".into()))
            .build()
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "no seed-policy extension registered under id \"nope-pol\""
        );
        let err = base()
            .backend(BackendSpec::Extension("nope-be".into()))
            .build()
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "no backend extension registered under id \"nope-be\""
        );
    }

    /// The pipelining gate: any positive lag under a scheduler that
    /// plans per-worker batches (round-robin, the default) is refused
    /// with a pinned message, while the queue-planning built-in accepts
    /// every lag.
    #[test]
    fn pipeline_lag_under_a_batch_scheduler_is_a_build_error() {
        let err = base().pipeline_lag(2).build().unwrap_err();
        assert_eq!(
            err,
            BuildError::PipelineLagUnsupported {
                scheduler: "round".into()
            }
        );
        assert_eq!(
            err.to_string(),
            "pipeline lag requires a queue-planning scheduler, \
             but \"round\" does not support pipelining"
        );
        for lag in [1, 2, usize::MAX] {
            assert!(base()
                .scheduler(SchedulerSpec::WorkStealing)
                .pipeline_lag(lag)
                .build()
                .is_ok());
        }
        // Lag 0 is "pipelining off" and valid under every scheduler.
        assert!(base().pipeline_lag(0).build().is_ok());
    }

    /// The pipeline lag is replay identity, so a resume adopts the
    /// snapshot's lag over whatever the builder was configured with.
    #[test]
    fn resume_adopts_the_snapshot_pipeline_lag() {
        let (_, snap) = base()
            .workers(2)
            .scheduler(SchedulerSpec::WorkStealing)
            .pipeline_lag(3)
            .build()
            .unwrap()
            .run_snapshotting(8);
        assert_eq!(snap.pipeline_lag, 3);
        let orch = base().resume(snap).build().unwrap();
        assert_eq!(orch.pipeline_lag, 3, "snapshot lag overrides the default");
    }

    /// Gossip is all-or-nothing: a link without a cadence (and a cadence
    /// without a link) are structured errors with pinned messages.
    #[test]
    fn half_configured_gossip_is_a_build_error() {
        let err = base()
            .gossip(crate::gossip::shared_link(crate::gossip::NullLink))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::GossipLinkWithoutInterval);
        assert_eq!(
            err.to_string(),
            "a gossip link requires gossip_every of at least 1 round"
        );

        let err = base().gossip_every(3).build().unwrap_err();
        assert_eq!(err, BuildError::GossipIntervalWithoutLink { every: 3 });
        assert_eq!(
            err.to_string(),
            "gossip_every of 3 rounds set, but no gossip link attached"
        );

        assert!(base()
            .gossip_every(2)
            .gossip(crate::gossip::shared_link(crate::gossip::NullLink))
            .build()
            .is_ok());
    }

    #[test]
    fn bad_ctor_ids_surface_at_build_not_registration() {
        let err = base()
            .scheduler_ctor("bad id", |_| Box::new(RoundRobin))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidExtensionId(_)));
        assert!(err.to_string().contains("invalid extension id"));
    }

    #[test]
    fn resume_mismatches_are_build_errors() {
        let (_, snap) = base().workers(2).build().unwrap().run_snapshotting(8);
        let err = base()
            .backend(BackendSpec::netlist(dejavuzz_rtl::examples::SMALL_SCALE))
            .resume(snap.clone())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::Resume(ResumeError::BackendMismatch { .. })
        ));
        assert!(err.to_string().starts_with("cannot resume:"));

        let err = base()
            .options(FuzzerOptions::dejavuzz_minus())
            .resume(snap)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::Resume(ResumeError::OptionsMismatch));
    }
}
