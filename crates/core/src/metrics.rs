//! The core engine's instrument handles in the process-global
//! [`dejavuzz_telemetry`] registry.
//!
//! Everything here is **off the commit path**: the executor writes these
//! instruments at its phase boundaries, but no campaign decision, report
//! field, stdout byte or snapshot byte ever reads one back, so recording
//! (on, off, or scraped mid-run) cannot perturb results — the byte-
//! identity contract `tests/metrics.rs` pins. Durations already measured
//! for the report (slot elapsed, view setup) are *re-used* here rather
//! than re-measured; the extra instruments (plan, census, stall,
//! snapshot, gossip) read the clock only when recording is on.
//!
//! Handles resolve lazily through a `OnceLock` so the first instrumented
//! operation pays the registration walk and every later one is a field
//! load.

use std::sync::Arc;
use std::sync::OnceLock;

use dejavuzz_telemetry::{global, Counter, Gauge, Histogram};

/// The engine's registered instruments. Obtain via [`handles`]; fields
/// are shared handles into [`dejavuzz_telemetry::global`].
#[derive(Debug)]
pub struct CoreMetrics {
    /// Time to plan (and for steal schedulers, pre-draw) one round.
    pub plan_nanos: Arc<Histogram>,
    /// Per-slot backend run time (the worker's measured `elapsed_nanos`,
    /// observed at commit — no extra clock read).
    pub slot_run_nanos: Arc<Histogram>,
    /// Per-slot overlay view construction time (steal rounds only).
    pub view_setup_nanos: Arc<Histogram>,
    /// DIFT taint-census time: folding a run's taint log into the
    /// coverage matrix in phase 2.
    pub census_nanos: Arc<Histogram>,
    /// Time the pipelined orchestrator spent blocked on `recv` waiting
    /// for the next contiguous slot — the contiguous-prefix stall.
    pub commit_stall_nanos: Arc<Histogram>,
    /// Out-of-order outcomes buffered ahead of the contiguous commit
    /// prefix, sampled after each arrival.
    pub commit_queue_depth: Arc<Gauge>,
    /// Checkpoint serialisation + write time.
    pub snapshot_write_nanos: Arc<Histogram>,
    /// Checkpoints written.
    pub snapshots_total: Arc<Counter>,
    /// One full gossip exchange (publish + drain under the link lock,
    /// plus importing the drained frames).
    pub gossip_exchange_nanos: Arc<Histogram>,
    /// Peer frames imported (self-echoes excluded).
    pub gossip_frames_in_total: Arc<Counter>,
    /// Coverage points published to peers.
    pub gossip_points_out_total: Arc<Counter>,
    /// Globally fresh coverage points imported from peers.
    pub gossip_points_in_total: Arc<Counter>,
    /// Slots committed whose window was a scenario-template family
    /// ([`crate::gen::WindowType::Scenario`]).
    pub scenario_slots_total: Arc<Counter>,
    /// Slots committed.
    pub iterations_total: Arc<Counter>,
    /// Backend simulator invocations (a slot runs several).
    pub sim_runs_total: Arc<Counter>,
    /// Current global coverage points (last committing run wins).
    pub coverage_points: Arc<Gauge>,
    /// Sum of per-slot backend run time across completed runs — the
    /// `ExecutorReport::busy_nanos` fold, accumulated per run so a
    /// multi-shard process reports fleet totals.
    pub busy_nanos: Arc<Gauge>,
    /// `ExecutorReport::barrier_idle_nanos`, accumulated per run.
    pub barrier_idle_nanos: Arc<Gauge>,
    /// `ExecutorReport::view_setup_nanos`, accumulated per run.
    pub report_view_setup_nanos: Arc<Gauge>,
    /// `ExecutorReport::modelled_makespan_nanos`, accumulated per run.
    pub modelled_makespan_nanos: Arc<Gauge>,
    /// Campaign runs completed in this process.
    pub runs_total: Arc<Counter>,
    /// One worker-pool RPC round trip (encode + queue + worker simulate
    /// + decode), as seen by the calling worker thread.
    pub pool_rpc_nanos: Arc<Histogram>,
    /// Worker-pool RPCs currently issued and not yet answered.
    pub pool_in_flight: Arc<Gauge>,
    /// Worker processes respawned after a crash or protocol error.
    pub pool_respawns_total: Arc<Counter>,
}

/// The engine's instruments, registered on first use.
pub fn handles() -> &'static CoreMetrics {
    static HANDLES: OnceLock<CoreMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let r = global();
        CoreMetrics {
            plan_nanos: r.histogram(
                "dejavuzz_plan_nanos",
                "Round planning (and pre-draw) time in nanoseconds",
            ),
            slot_run_nanos: r.histogram(
                "dejavuzz_slot_run_nanos",
                "Per-slot backend run time in nanoseconds",
            ),
            view_setup_nanos: r.histogram(
                "dejavuzz_view_setup_nanos",
                "Per-slot overlay coverage view setup time in nanoseconds",
            ),
            census_nanos: r.histogram(
                "dejavuzz_census_nanos",
                "DIFT taint census (coverage fold of one taint log) time in nanoseconds",
            ),
            commit_stall_nanos: r.histogram(
                "dejavuzz_commit_stall_nanos",
                "Pipelined commit loop blocked waiting for the next contiguous slot, nanoseconds",
            ),
            commit_queue_depth: r.gauge(
                "dejavuzz_commit_queue_depth",
                "Outcomes buffered ahead of the contiguous commit prefix",
            ),
            snapshot_write_nanos: r.histogram(
                "dejavuzz_snapshot_write_nanos",
                "Campaign checkpoint serialisation and write time in nanoseconds",
            ),
            snapshots_total: r.counter("dejavuzz_snapshots_total", "Checkpoints written"),
            gossip_exchange_nanos: r.histogram(
                "dejavuzz_gossip_exchange_nanos",
                "One gossip publish+drain+import exchange in nanoseconds",
            ),
            gossip_frames_in_total: r.counter(
                "dejavuzz_gossip_frames_in_total",
                "Peer gossip frames imported (self-echoes excluded)",
            ),
            gossip_points_out_total: r.counter(
                "dejavuzz_gossip_points_out_total",
                "Coverage points published to gossip peers",
            ),
            gossip_points_in_total: r.counter(
                "dejavuzz_gossip_points_in_total",
                "Globally fresh coverage points imported from gossip peers",
            ),
            scenario_slots_total: r.counter(
                "dejavuzz_scenario_slots_total",
                "Slots committed under a scenario-template window family",
            ),
            iterations_total: r.counter("dejavuzz_iterations_total", "Slots committed"),
            sim_runs_total: r.counter("dejavuzz_sim_runs_total", "Backend simulator invocations"),
            coverage_points: r.gauge(
                "dejavuzz_coverage_points",
                "Global coverage points (last committing run wins)",
            ),
            busy_nanos: r.gauge(
                "dejavuzz_busy_nanos",
                "Sum of per-slot backend run time across completed runs, nanoseconds",
            ),
            barrier_idle_nanos: r.gauge(
                "dejavuzz_barrier_idle_nanos",
                "Modelled worker idle time at round barriers across completed runs, nanoseconds",
            ),
            report_view_setup_nanos: r.gauge(
                "dejavuzz_report_view_setup_nanos",
                "Per-slot view setup time across completed runs, nanoseconds",
            ),
            modelled_makespan_nanos: r.gauge(
                "dejavuzz_modelled_makespan_nanos",
                "Modelled campaign makespan across completed runs, nanoseconds",
            ),
            runs_total: r.counter("dejavuzz_runs_total", "Campaign runs completed"),
            pool_rpc_nanos: r.histogram(
                "dejavuzz_pool_rpc_nanos",
                "Worker-pool RPC round trip time in nanoseconds",
            ),
            pool_in_flight: r.gauge(
                "dejavuzz_pool_in_flight",
                "Worker-pool RPCs issued and not yet answered",
            ),
            pool_respawns_total: r.counter(
                "dejavuzz_pool_respawns_total",
                "Worker processes respawned after a crash or protocol error",
            ),
        }
    })
}

/// The process registry rendered as the `dejavuzz-fuzz --metrics-out`
/// JSON dump: one object, newline-terminated. The engine's instruments
/// are registered first so the dump's family set is stable even for a
/// campaign that never exercised some of them.
pub fn registry_json() -> String {
    let _ = handles();
    format!("{}\n", global().render_json())
}

/// Folds a finished run's [`crate::ExecutorReport`] timing fields into
/// the registry, so `/metrics` and `throughput_json` report from the
/// same source of truth (the report's accumulators). Accumulating
/// (`Gauge::add`) rather than last-write-wins: shards of a
/// `dejavuzz-serve` fleet share one process registry and their totals
/// should sum.
pub fn record_report(report: &crate::ExecutorReport) {
    let m = handles();
    m.busy_nanos.add(report.busy_nanos);
    m.barrier_idle_nanos.add(report.barrier_idle_nanos);
    m.report_view_setup_nanos.add(report.view_setup_nanos);
    m.modelled_makespan_nanos
        .add(report.modelled_makespan_nanos);
    m.runs_total.inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_register_once_and_render() {
        let a = handles();
        let b = handles();
        assert!(std::ptr::eq(a, b));
        let text = global().render_prometheus();
        assert!(text.contains("# TYPE dejavuzz_plan_nanos histogram"));
        assert!(text.contains("# TYPE dejavuzz_iterations_total counter"));
        assert!(text.contains("# TYPE dejavuzz_busy_nanos gauge"));
    }
}
