//! Campaign snapshots: the persisted form of everything the
//! [`crate::executor::Orchestrator`] needs to continue a run as if it had
//! never stopped, plus the cross-machine shard merge.
//!
//! A [`CampaignSnapshot`] is taken at a *round boundary* of the executor,
//! where every worker's deterministic coverage view coincides with the
//! global union (the round-start delta broadcast guarantees it — see the
//! executor module docs). That alignment is what makes the restored state
//! small and the resume *exact*: the snapshot stores one global coverage
//! matrix, the corpus, the running gain threshold, the scheduler RNG
//! position and per-worker `(rng position, iteration count, observed
//! matrix)` triples — and a resumed run replays the remaining rounds
//! bit-identically to an uninterrupted one (asserted by
//! `tests/persist.rs`).
//!
//! On disk a snapshot is a [`dejavuzz_persist::frame`] envelope
//! ([`SNAPSHOT_MAGIC`], [`SNAPSHOT_VERSION`], FNV-1a checksum) around the
//! [`Persist`]-encoded state; truncated, corrupted or wrong-version files
//! fail decoding with a structured [`DecodeError`], never a panic.
//!
//! [`merge_snapshots`] is the multi-machine story: shards run
//! independently with disjoint seeds, snapshot locally, and merge into
//! one report whose coverage is the **exact union** of per-shard
//! observations (`SharedCoverage` semantics — never a pointwise sum) and
//! whose bug list deduplicates by [`BugReport::dedup_key`].

use std::path::Path;

use dejavuzz_ift::{CoverageMatrix, IftMode};
use dejavuzz_persist::{frame, intern, DecodeError, Decoder, Encoder, LoadError, Persist};

use crate::campaign::{CampaignStats, FuzzerOptions, WindowStats};
use crate::corpus::{Corpus, CorpusEntry};
use crate::gen::{Seed, WindowType};
use crate::phases::PhaseOptions;
use crate::report::{AttackType, BugReport, LeakChannel};
use crate::scheduler::{Favour, PlannedSlot, PolicySpec, PolicyState, SchedulerSpec};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DJVZSNAP";

/// Snapshot format version this build writes.
///
/// * **v1** — through the snapshot/resume PR: geometry, options, corpus,
///   coverage, stats, RNG streams, per-worker states.
/// * **v2** — adds the scheduling layer: scheduler and seed-policy
///   selectors, the policy's persistable state (favoured map + quota
///   counters), and the corpus's cached scheduling mass (so resumed
///   roulette draws replay bit-identically against the incrementally
///   maintained total).
/// * **v3** — opens the closed v2 enums to the extension registry:
///   scheduler/policy selectors gain an `Extension(id)` tag, policy
///   state gains an opaque blob variant, and the snapshot carries the
///   scheduler's own opaque state blob — so campaigns running
///   *user-supplied* scheduler/policy implementations round-trip through
///   persistence by id ([`crate::registry`] rehydrates them on resume).
/// * **v4** — the cross-round steal pipeline: the configured
///   `pipeline_lag` plus, when a checkpoint lands while a pipelined
///   round is still in flight, that round's pre-drawn plan and the
///   coverage points committed since its dispatch ([`PendingRound`]) —
///   enough for a resume to re-dispatch it verbatim and splice
///   bit-identically instead of re-planning (which would double-draw the
///   scheduler RNG and double-decay the corpus). Barriered campaigns
///   write `lag = 0` and no pending round, so their v4 files carry nine
///   extra bytes and decode exactly as before.
/// * **v5** — the scenario library: the campaign's enabled scenario
///   specs (canonical `family:param=value` strings, part of the replay
///   identity and adopted on resume), and [`WindowType`] gains a
///   variable-length tag-8 encoding for [`WindowType::Scenario`]
///   windows carrying the instance's canonical spec — cross-process
///   identity is the spec *string*, never the process-local intern
///   index. Campaigns with no scenarios enabled write an empty list, so
///   their v5 files carry eight extra bytes and decode exactly as
///   before; pre-v5 files decode with no scenarios (none existed).
pub const SNAPSHOT_VERSION: u32 = 5;

/// Oldest snapshot version this build still reads. v1 files decode with
/// scheduling defaults (round-robin, energy decay, stateless policy, a
/// re-scanned energy cache) — exactly the configuration every v1
/// campaign ran with; v2 files decode with an empty scheduler state blob
/// (no v2 scheduler had one); v1–v3 files all decode with pipelining off
/// and no pending round (no earlier campaign pipelined).
pub const SNAPSHOT_MIN_VERSION: u32 = 1;

impl Persist for WindowType {
    fn encode(&self, enc: &mut Encoder) {
        // Base windows keep their historical fixed u32 position in ALL;
        // scenario windows travel as tag 8 plus the instance's canonical
        // spec string — the intern index is process-local and means
        // nothing on the wire.
        match self {
            WindowType::Scenario(i) => {
                enc.u32(WindowType::ALL.len() as u32);
                enc.str(dejavuzz_scenarios::instance_spec(*i));
            }
            base => {
                let tag = WindowType::ALL
                    .iter()
                    .position(|w| w == base)
                    .expect("every base WindowType is in ALL") as u32;
                enc.u32(tag);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let tag = dec.u32()?;
        if tag as usize == WindowType::ALL.len() {
            let spec = dec.string()?;
            return match dejavuzz_scenarios::intern_spec(&spec) {
                Ok(idx) => Ok(WindowType::Scenario(idx)),
                Err(e) => Err(DecodeError::InvalidValue {
                    what: "WindowType::scenario",
                    detail: e.to_string(),
                }),
            };
        }
        WindowType::ALL
            .get(tag as usize)
            .copied()
            .ok_or(DecodeError::InvalidTag {
                what: "WindowType",
                tag,
            })
    }
}

impl Persist for Seed {
    fn encode(&self, enc: &mut Encoder) {
        self.window_type.encode(enc);
        enc.u64(self.entropy);
        enc.u64(self.mutation);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Seed {
            window_type: WindowType::decode(dec)?,
            entropy: dec.u64()?,
            mutation: dec.u64()?,
        })
    }
}

impl Persist for CorpusEntry {
    fn encode(&self, enc: &mut Encoder) {
        self.seed.encode(enc);
        enc.usize(self.gain);
        enc.usize(self.schedules);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CorpusEntry {
            seed: Seed::decode(dec)?,
            gain: dec.usize()?,
            schedules: dec.usize()?,
        })
    }
}

impl Persist for Corpus {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.capacity());
        enc.f64(self.exploit_probability());
        enc.usize(self.retained());
        enc.usize(self.evicted());
        self.entries().to_vec().encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let capacity = dec.usize()?;
        let exploit = dec.f64()?;
        if !(0.0..=1.0).contains(&exploit) {
            return Err(DecodeError::InvalidValue {
                what: "Corpus::exploit_probability",
                detail: format!("{exploit} is outside [0, 1]"),
            });
        }
        let retained = dec.usize()?;
        let evicted = dec.usize()?;
        let entries = Vec::<CorpusEntry>::decode(dec)?;
        // The energy cache travels as a separate v2 snapshot field (the
        // corpus wire format itself is version-agnostic); a fresh scan
        // here keeps bare round trips and v1 files correct.
        Ok(Corpus::restore(
            entries, capacity, exploit, retained, evicted, None,
        ))
    }
}

impl Persist for SchedulerSpec {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SchedulerSpec::RoundRobin => enc.u32(0),
            SchedulerSpec::WorkStealing => enc.u32(1),
            SchedulerSpec::Extension(id) => {
                enc.u32(2);
                enc.str(id);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u32()? {
            0 => Ok(SchedulerSpec::RoundRobin),
            1 => Ok(SchedulerSpec::WorkStealing),
            2 => Ok(SchedulerSpec::Extension(dec.string()?)),
            tag => Err(DecodeError::InvalidTag {
                what: "SchedulerSpec",
                tag,
            }),
        }
    }
}

impl Persist for PolicySpec {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PolicySpec::EnergyDecay => enc.u32(0),
            PolicySpec::FavouredQuota => enc.u32(1),
            PolicySpec::Extension(id) => {
                enc.u32(2);
                enc.str(id);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u32()? {
            0 => Ok(PolicySpec::EnergyDecay),
            1 => Ok(PolicySpec::FavouredQuota),
            2 => Ok(PolicySpec::Extension(dec.string()?)),
            tag => Err(DecodeError::InvalidTag {
                what: "PolicySpec",
                tag,
            }),
        }
    }
}

impl Persist for Favour {
    fn encode(&self, enc: &mut Encoder) {
        self.window_type.encode(enc);
        enc.u64(self.entropy);
        enc.u64(self.cost);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Favour {
            window_type: WindowType::decode(dec)?,
            entropy: dec.u64()?,
            cost: dec.u64()?,
        })
    }
}

impl Persist for PolicyState {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PolicyState::Stateless => enc.u32(0),
            PolicyState::Favoured { favours, picks } => {
                enc.u32(1);
                favours.encode(enc);
                picks.encode(enc);
            }
            PolicyState::Opaque(blob) => {
                enc.u32(2);
                enc.bytes(blob);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u32()? {
            0 => Ok(PolicyState::Stateless),
            1 => Ok(PolicyState::Favoured {
                favours: Vec::<(dejavuzz_ift::CoveragePoint, Favour)>::decode(dec)?,
                picks: Vec::<(WindowType, usize)>::decode(dec)?,
            }),
            2 => Ok(PolicyState::Opaque(dec.bytes()?.to_vec())),
            tag => Err(DecodeError::InvalidTag {
                what: "PolicyState",
                tag,
            }),
        }
    }
}

impl Persist for AttackType {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(match self {
            AttackType::Meltdown => 0,
            AttackType::Spectre => 1,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u32()? {
            0 => Ok(AttackType::Meltdown),
            1 => Ok(AttackType::Spectre),
            tag => Err(DecodeError::InvalidTag {
                what: "AttackType",
                tag,
            }),
        }
    }
}

impl Persist for LeakChannel {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            LeakChannel::Encoded { module } => {
                enc.u32(0);
                enc.str(module);
            }
            LeakChannel::Timing { resource } => {
                enc.u32(1);
                enc.str(resource);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u32()? {
            0 => Ok(LeakChannel::Encoded {
                module: intern(&dec.string()?),
            }),
            1 => Ok(LeakChannel::Timing {
                resource: intern(&dec.string()?),
            }),
            tag => Err(DecodeError::InvalidTag {
                what: "LeakChannel",
                tag,
            }),
        }
    }
}

impl Persist for BugReport {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(self.core);
        self.attack.encode(enc);
        self.window_type.encode(enc);
        self.channel.encode(enc);
        enc.usize(self.iteration);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BugReport {
            core: intern(&dec.string()?),
            attack: AttackType::decode(dec)?,
            window_type: WindowType::decode(dec)?,
            channel: LeakChannel::decode(dec)?,
            iteration: dec.usize()?,
        })
    }
}

impl Persist for WindowStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.triggered);
        enc.usize(self.attempted);
        enc.usize(self.to_sum);
        enc.usize(self.eto_sum);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(WindowStats {
            triggered: dec.usize()?,
            attempted: dec.usize()?,
            to_sum: dec.usize()?,
            eto_sum: dec.usize()?,
        })
    }
}

impl Persist for CampaignStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.iterations);
        self.coverage_curve.encode(enc);
        // BTreeMap iterates sorted, so the encoding is canonical.
        let windows: Vec<(WindowType, WindowStats)> =
            self.windows.iter().map(|(k, v)| (*k, *v)).collect();
        windows.encode(enc);
        self.bugs.encode(enc);
        self.first_bug_iteration.encode(enc);
        enc.usize(self.sim_runs);
        enc.u64(self.sim_cycles);
        enc.usize(self.failed_runs);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CampaignStats {
            iterations: dec.usize()?,
            coverage_curve: Vec::<usize>::decode(dec)?,
            windows: Vec::<(WindowType, WindowStats)>::decode(dec)?
                .into_iter()
                .collect(),
            bugs: Vec::<BugReport>::decode(dec)?,
            first_bug_iteration: Option::<usize>::decode(dec)?,
            sim_runs: dec.usize()?,
            sim_cycles: dec.u64()?,
            failed_runs: dec.usize()?,
        })
    }
}

impl Persist for PhaseOptions {
    fn encode(&self, enc: &mut Encoder) {
        self.mode.encode(enc);
        enc.bool(self.training_derivation);
        enc.bool(self.training_reduction);
        enc.bool(self.liveness_filter);
        enc.usize(self.decoy_trainings);
        enc.u64(self.max_cycles);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PhaseOptions {
            mode: IftMode::decode(dec)?,
            training_derivation: dec.bool()?,
            training_reduction: dec.bool()?,
            liveness_filter: dec.bool()?,
            decoy_trainings: dec.usize()?,
            max_cycles: dec.u64()?,
        })
    }
}

impl Persist for FuzzerOptions {
    fn encode(&self, enc: &mut Encoder) {
        self.phases.encode(enc);
        enc.bool(self.coverage_feedback);
        enc.usize(self.mutation_attempts);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(FuzzerOptions {
            phases: PhaseOptions::decode(dec)?,
            coverage_feedback: dec.bool()?,
            mutation_attempts: dec.usize()?,
        })
    }
}

/// One worker's persisted stream state.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerState {
    /// Raw RNG stream position (xoshiro state, see the vendored `rand`).
    pub rng: [u64; 4],
    /// Iterations this worker has executed so far.
    pub iterations: usize,
    /// Everything this worker ever observed (the exactness-invariant
    /// matrices of [`crate::executor::WorkerSummary`]).
    pub observed: CoverageMatrix,
}

impl Persist for WorkerState {
    fn encode(&self, enc: &mut Encoder) {
        self.rng.encode(enc);
        enc.usize(self.iterations);
        self.observed.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(WorkerState {
            rng: <[u64; 4]>::decode(dec)?,
            iterations: dec.usize()?,
            observed: CoverageMatrix::decode(dec)?,
        })
    }
}

impl Persist for PlannedSlot {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.slot);
        enc.usize(self.stream);
        self.seed.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PlannedSlot {
            slot: dec.usize()?,
            stream: dec.usize()?,
            seed: Seed::decode(dec)?,
        })
    }
}

/// A pipelined round that was dispatched but not fully committed when the
/// checkpoint landed (format v4): its pre-drawn plan, the gain threshold
/// it was dispatched with, and the coverage points committed *after* its
/// dispatch (`view_behind`) — the delta the resumed orchestrator replays
/// into the broadcast log so worker views and the next plan see exactly
/// the state the uninterrupted run saw.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingRound {
    /// First global slot index of the round (always the snapshot's
    /// `completed` frontier).
    pub first_slot: usize,
    /// The round's pre-drawn slots, in slot order.
    pub slots: Vec<PlannedSlot>,
    /// Gain-threshold average at the round's dispatch.
    pub avg: f64,
    /// Gain-threshold sample count at the round's dispatch.
    pub samples: usize,
    /// Globally fresh points committed since the round's dispatch, in
    /// commit order.
    pub view_behind: Vec<dejavuzz_ift::CoveragePoint>,
}

impl Persist for PendingRound {
    fn encode(&self, enc: &mut Encoder) {
        enc.usize(self.first_slot);
        self.slots.encode(enc);
        enc.f64(self.avg);
        enc.usize(self.samples);
        self.view_behind.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PendingRound {
            first_slot: dec.usize()?,
            slots: Vec::<PlannedSlot>::decode(dec)?,
            avg: dec.f64()?,
            samples: dec.usize()?,
            view_behind: Vec::<dejavuzz_ift::CoveragePoint>::decode(dec)?,
        })
    }
}

/// The complete persisted state of a fuzzing campaign at a round
/// boundary. See the module docs for the resume-equivalence contract.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSnapshot {
    /// Which shard of a multi-machine campaign this is (0 for unsharded
    /// runs; merge keys reports by it).
    pub shard_id: u32,
    /// Backend label echo ([`crate::backend::BackendSpec::label`]) —
    /// resume validates it so a snapshot taken against one DUT is never
    /// silently continued against another.
    pub backend: String,
    /// Worker count the campaign was (and must be resumed) running with.
    pub workers: usize,
    /// The user seed.
    pub seed: u64,
    /// Per-round batch size.
    pub batch: usize,
    /// Slot scheduler the campaign ran (and must resume) with — part of
    /// its replay identity; resume adopts it. Extension ids require the
    /// resuming process to have registered the same id
    /// ([`crate::registry`]).
    pub scheduler: SchedulerSpec,
    /// The scheduler's opaque state blob ([`crate::scheduler::
    /// Scheduler::state`]); empty for the stateless built-ins, handed
    /// back to the extension constructor on resume (v3).
    pub scheduler_state: Vec<u8>,
    /// Corpus seed policy — likewise adopted on resume.
    pub policy: PolicySpec,
    /// The policy's scheduling state beyond the corpus itself (favoured
    /// map, quota counters), restored into the rebuilt policy.
    pub policy_state: PolicyState,
    /// Campaign options echo — resume validates equality.
    pub opts: FuzzerOptions,
    /// Iterations completed when the snapshot was taken.
    pub completed: usize,
    /// Running-average mutation-gain threshold (§4.2.2): (average,
    /// sample count). The average restores bit-identically.
    pub gain_avg: f64,
    /// Samples folded into `gain_avg`.
    pub gain_samples: usize,
    /// Scheduler RNG stream position.
    pub sched_rng: [u64; 4],
    /// The seed corpus.
    pub corpus: Corpus,
    /// The exact global coverage union.
    pub coverage: CoverageMatrix,
    /// Campaign statistics, including the exact coverage curve and
    /// deduplicated bug reports.
    pub stats: CampaignStats,
    /// Per-worker stream state, indexed by worker id.
    pub worker_states: Vec<WorkerState>,
    /// Cross-round pipeline depth the campaign ran (and must resume)
    /// with: 0 = barriered rounds, >= 1 = the depth-one steal pipeline
    /// (v4; part of the replay identity like the scheduler).
    pub pipeline_lag: usize,
    /// The in-flight pipelined round at checkpoint time, if any (v4).
    pub pending: Option<PendingRound>,
    /// The campaign's enabled scenario-template specs, canonical and
    /// sorted (v5; part of the replay identity — resume adopts them and
    /// fails the build if a named family is not registered). Empty for
    /// campaigns that never enabled scenarios.
    pub scenarios: Vec<String>,
}

impl Persist for CampaignSnapshot {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.shard_id);
        enc.str(&self.backend);
        enc.usize(self.workers);
        enc.u64(self.seed);
        enc.usize(self.batch);
        self.opts.encode(enc);
        enc.usize(self.completed);
        enc.f64(self.gain_avg);
        enc.usize(self.gain_samples);
        self.sched_rng.encode(enc);
        self.corpus.encode(enc);
        self.coverage.encode(enc);
        self.stats.encode(enc);
        self.worker_states.encode(enc);
        // v2 tail: the scheduling layer.
        self.scheduler.encode(enc);
        self.policy.encode(enc);
        self.policy_state.encode(enc);
        enc.f64(self.corpus.energy_cache());
        // v3 tail: the scheduler's opaque extension state.
        enc.bytes(&self.scheduler_state);
        // v4 tail: the cross-round pipeline.
        enc.usize(self.pipeline_lag);
        self.pending.encode(enc);
        // v5 tail: the enabled scenario specs.
        self.scenarios.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        CampaignSnapshot::decode_versioned(dec, SNAPSHOT_VERSION)
    }
}

impl CampaignSnapshot {
    /// Decodes a snapshot payload of a specific format version: the v1
    /// prefix is shared, the v2 tail carries the scheduling layer (v1
    /// files get the defaults every v1 campaign ran with), the v3 tail
    /// carries the scheduler's opaque extension state (empty for v1/v2
    /// files — no earlier scheduler had any), the v4 tail carries the
    /// pipeline lag and any in-flight pipelined round (v1–v3 files all
    /// ran barriered).
    fn decode_versioned(dec: &mut Decoder<'_>, version: u32) -> Result<Self, DecodeError> {
        let mut snap = CampaignSnapshot {
            shard_id: dec.u32()?,
            backend: dec.string()?,
            workers: dec.usize()?,
            seed: dec.u64()?,
            batch: dec.usize()?,
            scheduler: SchedulerSpec::RoundRobin,
            scheduler_state: Vec::new(),
            policy: PolicySpec::EnergyDecay,
            policy_state: PolicyState::Stateless,
            opts: FuzzerOptions::decode(dec)?,
            completed: dec.usize()?,
            gain_avg: dec.f64()?,
            gain_samples: dec.usize()?,
            sched_rng: <[u64; 4]>::decode(dec)?,
            corpus: Corpus::decode(dec)?,
            coverage: CoverageMatrix::decode(dec)?,
            stats: CampaignStats::decode(dec)?,
            worker_states: Vec::<WorkerState>::decode(dec)?,
            pipeline_lag: 0,
            pending: None,
            scenarios: Vec::new(),
        };
        if version >= 2 {
            snap.scheduler = SchedulerSpec::decode(dec)?;
            snap.policy = PolicySpec::decode(dec)?;
            snap.policy_state = PolicyState::decode(dec)?;
            let energy = dec.f64()?;
            // `Corpus::decode` above restored the cache from a fresh
            // scan; the persisted value may differ from it only by the
            // incremental-update float drift the cache exists to make
            // reproducible. Anything further off is a corrupt or crafted
            // file — accepting it would skew every roulette pick (and
            // trip the debug cross-check as a panic instead of a
            // structured error).
            let scan = snap.corpus.energy_cache();
            if !energy.is_finite()
                || energy < 0.0
                || (energy - scan).abs() > 1e-6 * scan.abs().max(1.0)
            {
                return Err(DecodeError::InvalidValue {
                    what: "CampaignSnapshot::corpus_energy",
                    detail: format!(
                        "{energy} is not a valid scheduling mass for entries summing to {scan}"
                    ),
                });
            }
            snap.corpus.set_energy_cache(energy);
        }
        if version >= 3 {
            snap.scheduler_state = dec.bytes()?.to_vec();
        }
        if version >= 4 {
            snap.pipeline_lag = dec.usize()?;
            snap.pending = Option::<PendingRound>::decode(dec)?;
        }
        if version >= 5 {
            snap.scenarios = Vec::<String>::decode(dec)?;
        }
        if let Some(p) = &snap.pending {
            // A pending round is the in-flight round at the committed
            // frontier: its first slot must be exactly `completed`, and a
            // barriered campaign can never have one.
            if snap.pipeline_lag == 0 {
                return Err(DecodeError::InvalidValue {
                    what: "CampaignSnapshot::pending",
                    detail: "a pending round without pipelining".into(),
                });
            }
            if p.first_slot != snap.completed {
                return Err(DecodeError::InvalidValue {
                    what: "CampaignSnapshot::pending",
                    detail: format!(
                        "pending round starts at {} but the snapshot completed {}",
                        p.first_slot, snap.completed
                    ),
                });
            }
        }
        if snap.workers == 0 {
            return Err(DecodeError::InvalidValue {
                what: "CampaignSnapshot::workers",
                detail: "zero workers".into(),
            });
        }
        if snap.worker_states.len() != snap.workers {
            return Err(DecodeError::InvalidValue {
                what: "CampaignSnapshot::worker_states",
                detail: format!(
                    "{} states for {} workers",
                    snap.worker_states.len(),
                    snap.workers
                ),
            });
        }
        if snap.completed != snap.stats.iterations {
            return Err(DecodeError::InvalidValue {
                what: "CampaignSnapshot::completed",
                detail: format!(
                    "completed {} != stats.iterations {}",
                    snap.completed, snap.stats.iterations
                ),
            });
        }
        Ok(snap)
    }
}

impl CampaignSnapshot {
    /// Serialises to the framed on-disk format (magic + version +
    /// checksum around the encoded state).
    pub fn to_bytes(&self) -> Vec<u8> {
        frame::seal(
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            &dejavuzz_persist::to_bytes(self),
        )
    }

    /// Decodes a framed snapshot, validating magic, version and checksum
    /// before any state decoding. Reads every version in
    /// [`SNAPSHOT_MIN_VERSION`]`..=`[`SNAPSHOT_VERSION`]; writing always
    /// produces the current version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (version, payload) = frame::open_versioned(
            SNAPSHOT_MAGIC,
            SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION,
            bytes,
        )?;
        let mut dec = Decoder::new(payload);
        let snap = CampaignSnapshot::decode_versioned(&mut dec, version)?;
        dec.finish()?;
        Ok(snap)
    }

    /// Writes the snapshot to `path` atomically (write-rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        dejavuzz_persist::save_atomic(path, &self.to_bytes())
    }

    /// Loads and validates a snapshot file.
    pub fn load(path: &Path) -> Result<Self, LoadError> {
        Ok(Self::from_bytes(&dejavuzz_persist::load_bytes(path)?)?)
    }
}

/// Why [`crate::builder::CampaignBuilder::resume`] refused a snapshot
/// (surfaced as [`crate::builder::BuildError::Resume`] at build time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshot was taken against a different DUT/backend.
    BackendMismatch {
        /// Backend label recorded in the snapshot.
        snapshot: String,
        /// Backend label of the resuming orchestrator.
        current: String,
    },
    /// The snapshot was taken with different campaign options (variant,
    /// IFT mode, mutation budget, …) — continuing would silently mix two
    /// different experiments.
    OptionsMismatch,
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::BackendMismatch { snapshot, current } => write!(
                f,
                "snapshot was taken on backend {snapshot:?} but this campaign runs {current:?}"
            ),
            ResumeError::OptionsMismatch => {
                write!(f, "snapshot was taken with different campaign options")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

/// The result of merging shard snapshots: exact coverage union plus
/// summed/deduplicated stats.
#[derive(Clone, Debug)]
pub struct MergeReport {
    /// Shard ids in input order.
    pub shards: Vec<u32>,
    /// Merged stats: counters summed, bugs deduplicated by
    /// [`BugReport::dedup_key`], curve merged by pointwise max (the
    /// tightest after-the-fact lower bound — see
    /// [`CampaignStats::merge`]).
    pub stats: CampaignStats,
    /// The **exact union** of per-shard coverage (`SharedCoverage`
    /// semantics): distinct points, never a pointwise sum.
    pub coverage: CoverageMatrix,
    /// Sum of per-shard point counts — the figure a naive merge would
    /// have (over-)reported; kept so reports can show the delta.
    pub summed_points: usize,
}

/// Merges shard snapshots into one report. Shards are typically runs
/// with disjoint seeds on different machines; the union is exact because
/// coverage points are value-equal across processes (module name +
/// count), not pointer- or process-local.
pub fn merge_snapshots(snaps: &[CampaignSnapshot]) -> MergeReport {
    let mut stats = CampaignStats::default();
    let mut coverage = CoverageMatrix::new();
    let mut summed_points = 0;
    let mut shards = Vec::with_capacity(snaps.len());
    for s in snaps {
        shards.push(s.shard_id);
        stats.merge(&s.stats);
        summed_points += s.coverage.points();
        coverage.merge(&s.coverage);
    }
    MergeReport {
        shards,
        stats,
        coverage,
        summed_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WindowType;

    fn sample_stats() -> CampaignStats {
        let mut stats = CampaignStats {
            iterations: 5,
            coverage_curve: vec![1, 2, 2, 4, 6],
            sim_runs: 17,
            sim_cycles: 12_345,
            failed_runs: 1,
            first_bug_iteration: Some(3),
            ..CampaignStats::default()
        };
        stats.windows.insert(
            WindowType::BranchMispredict,
            WindowStats {
                triggered: 3,
                attempted: 5,
                to_sum: 40,
                eto_sum: 9,
            },
        );
        stats.bugs.push(BugReport {
            core: "BOOM",
            attack: AttackType::Spectre,
            window_type: WindowType::BranchMispredict,
            channel: LeakChannel::Encoded { module: "dcache" },
            iteration: 3,
        });
        stats
    }

    #[test]
    fn stats_round_trip_including_bugs_and_windows() {
        let stats = sample_stats();
        let bytes = dejavuzz_persist::to_bytes(&stats);
        let back: CampaignStats = dejavuzz_persist::from_bytes(&bytes).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.bugs[0].dedup_key(), stats.bugs[0].dedup_key());
    }

    #[test]
    fn all_window_types_and_modes_round_trip() {
        for wt in WindowType::ALL {
            let bytes = dejavuzz_persist::to_bytes(&wt);
            assert_eq!(
                dejavuzz_persist::from_bytes::<WindowType>(&bytes).unwrap(),
                wt
            );
        }
        for mode in [IftMode::Base, IftMode::CellIft, IftMode::DiffIft] {
            let bytes = dejavuzz_persist::to_bytes(&mode);
            assert_eq!(
                dejavuzz_persist::from_bytes::<IftMode>(&bytes).unwrap(),
                mode
            );
        }
    }

    #[test]
    fn unknown_window_tag_is_invalid() {
        let bytes = dejavuzz_persist::to_bytes(&99u32);
        assert_eq!(
            dejavuzz_persist::from_bytes::<WindowType>(&bytes),
            Err(DecodeError::InvalidTag {
                what: "WindowType",
                tag: 99
            })
        );
    }

    #[test]
    fn corpus_round_trip_preserves_order_and_counters() {
        let mut c = Corpus::new(4).with_exploit_probability(0.25);
        for e in [9u64, 4, 7] {
            c.record(&Seed::new(WindowType::MemPageFault, e), (e + 1) as usize);
        }
        let bytes = dejavuzz_persist::to_bytes(&c);
        let back: Corpus = dejavuzz_persist::from_bytes(&bytes).unwrap();
        assert_eq!(back, c, "entries, order, counters and config all equal");
    }

    #[test]
    fn corpus_with_invalid_probability_fails_decode_not_panic() {
        let mut c = Corpus::new(4);
        c.record(&Seed::new(WindowType::IllegalInstr, 1), 3);
        let mut bytes = dejavuzz_persist::to_bytes(&c);
        // The exploit probability is the f64 right after the capacity u64.
        bytes[8..16].copy_from_slice(&7.5f64.to_bits().to_le_bytes());
        assert!(matches!(
            dejavuzz_persist::from_bytes::<Corpus>(&bytes),
            Err(DecodeError::InvalidValue {
                what: "Corpus::exploit_probability",
                ..
            })
        ));
    }

    fn sample_snapshot() -> CampaignSnapshot {
        CampaignSnapshot {
            shard_id: 2,
            backend: "behavioural:BOOM".into(),
            workers: 2,
            seed: 42,
            batch: 4,
            scheduler: SchedulerSpec::WorkStealing,
            scheduler_state: vec![0xA5, 0x5A],
            policy: PolicySpec::FavouredQuota,
            policy_state: PolicyState::Favoured {
                favours: vec![(
                    dejavuzz_ift::CoveragePoint {
                        module: "rob",
                        index: 3,
                    },
                    Favour {
                        window_type: WindowType::BranchMispredict,
                        entropy: 7,
                        cost: 12,
                    },
                )],
                picks: vec![(WindowType::BranchMispredict, 4)],
            },
            opts: FuzzerOptions::default(),
            completed: 5,
            gain_avg: 1.75,
            gain_samples: 11,
            sched_rng: [1, 2, 3, 4],
            corpus: Corpus::new(8),
            coverage: CoverageMatrix::new(),
            stats: sample_stats(),
            worker_states: vec![
                WorkerState {
                    rng: [5, 6, 7, 8],
                    iterations: 3,
                    observed: CoverageMatrix::new(),
                },
                WorkerState {
                    rng: [9, 10, 11, 12],
                    iterations: 2,
                    observed: CoverageMatrix::new(),
                },
            ],
            pipeline_lag: 0,
            pending: None,
            scenarios: Vec::new(),
        }
    }

    /// Version skew: a v1 file (no scheduling tail) must decode with the
    /// defaults every v1 campaign actually ran with, and versions below
    /// the supported floor must still fail structurally.
    #[test]
    fn v1_snapshots_decode_with_scheduling_defaults() {
        let mut snap = sample_snapshot();
        // Exactly what the v1 writer produced: the shared prefix, no tail.
        let mut enc = Encoder::new();
        enc.u32(snap.shard_id);
        enc.str(&snap.backend);
        enc.usize(snap.workers);
        enc.u64(snap.seed);
        enc.usize(snap.batch);
        snap.opts.encode(&mut enc);
        enc.usize(snap.completed);
        enc.f64(snap.gain_avg);
        enc.usize(snap.gain_samples);
        snap.sched_rng.encode(&mut enc);
        snap.corpus.encode(&mut enc);
        snap.coverage.encode(&mut enc);
        snap.stats.encode(&mut enc);
        snap.worker_states.encode(&mut enc);
        let bytes = frame::seal(SNAPSHOT_MAGIC, 1, &enc.into_bytes());

        let decoded = CampaignSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.scheduler, SchedulerSpec::RoundRobin);
        assert_eq!(decoded.policy, PolicySpec::EnergyDecay);
        assert_eq!(decoded.policy_state, PolicyState::Stateless);
        assert!(decoded.scheduler_state.is_empty());
        snap.scheduler = SchedulerSpec::RoundRobin;
        snap.scheduler_state = Vec::new();
        snap.policy = PolicySpec::EnergyDecay;
        snap.policy_state = PolicyState::Stateless;
        assert_eq!(decoded, snap, "every v1 prefix field survives");

        let too_old = frame::seal(SNAPSHOT_MAGIC, 0, &[]);
        assert!(matches!(
            CampaignSnapshot::from_bytes(&too_old),
            Err(DecodeError::UnsupportedVersion { found: 0, .. })
        ));
    }

    /// Version skew one step back: a v2 file (scheduling tail, no
    /// scheduler-state blob) decodes with an empty blob and everything
    /// else intact — the backward-load guarantee the extension registry
    /// upgrade must not break.
    #[test]
    fn v2_snapshots_decode_with_an_empty_scheduler_state() {
        let mut snap = sample_snapshot();
        // Exactly what the v2 writer produced: prefix + v2 tail.
        let mut enc = Encoder::new();
        enc.u32(snap.shard_id);
        enc.str(&snap.backend);
        enc.usize(snap.workers);
        enc.u64(snap.seed);
        enc.usize(snap.batch);
        snap.opts.encode(&mut enc);
        enc.usize(snap.completed);
        enc.f64(snap.gain_avg);
        enc.usize(snap.gain_samples);
        snap.sched_rng.encode(&mut enc);
        snap.corpus.encode(&mut enc);
        snap.coverage.encode(&mut enc);
        snap.stats.encode(&mut enc);
        snap.worker_states.encode(&mut enc);
        snap.scheduler.encode(&mut enc);
        snap.policy.encode(&mut enc);
        snap.policy_state.encode(&mut enc);
        enc.f64(snap.corpus.energy_cache());
        let bytes = frame::seal(SNAPSHOT_MAGIC, 2, &enc.into_bytes());

        let decoded = CampaignSnapshot::from_bytes(&bytes).unwrap();
        assert!(decoded.scheduler_state.is_empty());
        snap.scheduler_state = Vec::new();
        assert_eq!(decoded, snap, "every v2 field survives");
    }

    /// Version skew one more step back: a v3 file (full scheduling tail,
    /// no pipelining tail) decodes with pipelining off and no pending
    /// round — no pre-v4 campaign ever pipelined.
    #[test]
    fn v3_snapshots_decode_with_pipelining_off() {
        let snap = sample_snapshot();
        // Exactly what the v3 writer produced: prefix + v2 tail +
        // scheduler-state blob, and nothing after.
        let mut enc = Encoder::new();
        enc.u32(snap.shard_id);
        enc.str(&snap.backend);
        enc.usize(snap.workers);
        enc.u64(snap.seed);
        enc.usize(snap.batch);
        snap.opts.encode(&mut enc);
        enc.usize(snap.completed);
        enc.f64(snap.gain_avg);
        enc.usize(snap.gain_samples);
        snap.sched_rng.encode(&mut enc);
        snap.corpus.encode(&mut enc);
        snap.coverage.encode(&mut enc);
        snap.stats.encode(&mut enc);
        snap.worker_states.encode(&mut enc);
        snap.scheduler.encode(&mut enc);
        snap.policy.encode(&mut enc);
        snap.policy_state.encode(&mut enc);
        enc.f64(snap.corpus.energy_cache());
        enc.bytes(&snap.scheduler_state);
        let bytes = frame::seal(SNAPSHOT_MAGIC, 3, &enc.into_bytes());

        let decoded = CampaignSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.pipeline_lag, 0);
        assert_eq!(decoded.pending, None);
        assert_eq!(decoded, snap, "every v3 field survives");
    }

    /// Version skew one more step back: a v4 file (pipelining tail, no
    /// scenario tail) decodes with an empty scenario list — no pre-v5
    /// campaign ever enabled scenarios.
    #[test]
    fn v4_snapshots_decode_with_no_scenarios() {
        let snap = sample_snapshot();
        // Exactly what the v4 writer produced: everything through the
        // pipelining tail, and nothing after.
        let mut enc = Encoder::new();
        enc.u32(snap.shard_id);
        enc.str(&snap.backend);
        enc.usize(snap.workers);
        enc.u64(snap.seed);
        enc.usize(snap.batch);
        snap.opts.encode(&mut enc);
        enc.usize(snap.completed);
        enc.f64(snap.gain_avg);
        enc.usize(snap.gain_samples);
        snap.sched_rng.encode(&mut enc);
        snap.corpus.encode(&mut enc);
        snap.coverage.encode(&mut enc);
        snap.stats.encode(&mut enc);
        snap.worker_states.encode(&mut enc);
        snap.scheduler.encode(&mut enc);
        snap.policy.encode(&mut enc);
        snap.policy_state.encode(&mut enc);
        enc.f64(snap.corpus.energy_cache());
        enc.bytes(&snap.scheduler_state);
        enc.usize(snap.pipeline_lag);
        snap.pending.encode(&mut enc);
        let bytes = frame::seal(SNAPSHOT_MAGIC, 4, &enc.into_bytes());

        let decoded = CampaignSnapshot::from_bytes(&bytes).unwrap();
        assert!(decoded.scenarios.is_empty());
        assert_eq!(decoded, snap, "every v4 field survives");
    }

    /// Scenario windows round-trip by canonical spec string: the decoded
    /// variant compares equal (same interned instance) even though the
    /// index itself is process-local, and the same family spelled with
    /// explicit default parameters lands on the same instance.
    #[test]
    fn scenario_window_types_round_trip_by_spec() {
        let idx = dejavuzz_scenarios::intern_spec("nested-spec:depth=4").unwrap();
        let wt = WindowType::Scenario(idx);
        let bytes = dejavuzz_persist::to_bytes(&wt);
        assert_eq!(
            dejavuzz_persist::from_bytes::<WindowType>(&bytes).unwrap(),
            wt
        );
        // A Seed carrying a scenario window survives too (the corpus and
        // planned-slot paths both go through Seed).
        let seed = Seed::new(wt, 77);
        let bytes = dejavuzz_persist::to_bytes(&seed);
        assert_eq!(dejavuzz_persist::from_bytes::<Seed>(&bytes).unwrap(), seed);
    }

    /// A snapshot naming a scenario family this build has never heard of
    /// must fail structurally with the registry's diagnosis — resuming
    /// it would draw windows no template can generate.
    #[test]
    fn unknown_scenario_family_fails_decode_structurally() {
        let mut enc = Encoder::new();
        enc.u32(WindowType::ALL.len() as u32);
        enc.str("ghost-fam");
        let bytes = enc.into_bytes();
        let err = {
            let mut dec = Decoder::new(&bytes);
            WindowType::decode(&mut dec).unwrap_err()
        };
        match err {
            DecodeError::InvalidValue { what, detail } => {
                assert_eq!(what, "WindowType::scenario");
                assert_eq!(detail, "unknown scenario family \"ghost-fam\"");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
    }

    /// The v5 tail round-trips: enabled scenario specs survive the wire
    /// format, and a snapshot whose corpus carries scenario seeds
    /// round-trips value-equal.
    #[test]
    fn v5_scenarios_survive_a_round_trip() {
        let mut snap = sample_snapshot();
        snap.scenarios = vec![
            "double-fetch:gap=2".to_string(),
            "nested-spec:depth=3".to_string(),
        ];
        let idx = dejavuzz_scenarios::intern_spec("double-fetch:gap=2").unwrap();
        snap.corpus
            .record(&Seed::new(WindowType::Scenario(idx), 21), 4);
        let decoded = CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap, "scenario specs and seeds survive");
    }

    fn sample_pending(first_slot: usize) -> PendingRound {
        PendingRound {
            first_slot,
            slots: vec![
                PlannedSlot {
                    slot: first_slot,
                    stream: 0,
                    seed: Seed::new(WindowType::BranchMispredict, 77),
                },
                PlannedSlot {
                    slot: first_slot + 1,
                    stream: 1,
                    seed: Seed::new(WindowType::MemPageFault, 78),
                },
            ],
            avg: 2.5,
            samples: 9,
            view_behind: vec![dejavuzz_ift::CoveragePoint {
                module: "lsu",
                index: 3,
            }],
        }
    }

    /// The v4 tail round-trips: an in-flight pipelined round (its
    /// pre-drawn plan, dispatch-time gain state and the points committed
    /// behind it) survives the wire format exactly.
    #[test]
    fn v4_pending_round_survives_a_round_trip() {
        let mut snap = sample_snapshot();
        snap.pipeline_lag = 2;
        snap.pending = Some(sample_pending(snap.completed));
        let decoded = CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap, "lag and pending round survive");
    }

    /// A pending round in a barriered (`lag == 0`) snapshot is
    /// self-contradictory and must fail decode structurally.
    #[test]
    fn pending_round_without_pipelining_fails_decode() {
        let mut snap = sample_snapshot();
        snap.pending = Some(sample_pending(snap.completed));
        assert!(matches!(
            CampaignSnapshot::from_bytes(&snap.to_bytes()),
            Err(DecodeError::InvalidValue {
                what: "CampaignSnapshot::pending",
                ..
            })
        ));
    }

    /// A pending round must sit exactly at the committed frontier; any
    /// other first slot means the file is internally inconsistent.
    #[test]
    fn pending_round_off_the_committed_frontier_fails_decode() {
        let mut snap = sample_snapshot();
        snap.pipeline_lag = 1;
        snap.pending = Some(sample_pending(snap.completed + 2));
        assert!(matches!(
            CampaignSnapshot::from_bytes(&snap.to_bytes()),
            Err(DecodeError::InvalidValue {
                what: "CampaignSnapshot::pending",
                ..
            })
        ));
    }

    /// A checksum-valid v2 file whose persisted energy disagrees with
    /// its own corpus entries must fail decode structurally — not panic
    /// the debug cross-check or silently skew release-build scheduling.
    #[test]
    fn inconsistent_corpus_energy_fails_decode_not_panic() {
        let mut snap = sample_snapshot();
        snap.corpus
            .record(&Seed::new(WindowType::BranchMispredict, 3), 5);
        let honest = snap.to_bytes();
        assert_eq!(CampaignSnapshot::from_bytes(&honest).unwrap(), snap);

        // Re-encode with a bogus energy (the f64 sits right before the
        // length-prefixed v3 scheduler-state blob, which is followed only
        // by the v4 tail — the lag u64 plus the pending-round Option tag,
        // a lone byte here since the sample has no pending round — and
        // the v5 tail, an empty scenario-spec list).
        let payload_start = 8 + 4 + 8 + 8; // magic + version + len + checksum
        let mut payload = honest[payload_start..].to_vec();
        let v4_tail = 8 + 1; // usize lag + None tag
        let v5_tail = 8; // empty Vec<String> length prefix
        let energy_at = payload.len() - v5_tail - v4_tail - 8 - (8 + snap.scheduler_state.len());
        payload[energy_at..energy_at + 8].copy_from_slice(&1e9f64.to_bits().to_le_bytes());
        let forged = frame::seal(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &payload);
        assert!(matches!(
            CampaignSnapshot::from_bytes(&forged),
            Err(DecodeError::InvalidValue {
                what: "CampaignSnapshot::corpus_energy",
                ..
            })
        ));
    }

    #[test]
    fn scheduling_specs_and_state_round_trip() {
        for spec in [
            SchedulerSpec::RoundRobin,
            SchedulerSpec::WorkStealing,
            SchedulerSpec::Extension("my-sched".into()),
        ] {
            let bytes = dejavuzz_persist::to_bytes(&spec);
            assert_eq!(
                dejavuzz_persist::from_bytes::<SchedulerSpec>(&bytes).unwrap(),
                spec
            );
        }
        for spec in [
            PolicySpec::EnergyDecay,
            PolicySpec::FavouredQuota,
            PolicySpec::Extension("my-pol".into()),
        ] {
            let bytes = dejavuzz_persist::to_bytes(&spec);
            assert_eq!(
                dejavuzz_persist::from_bytes::<PolicySpec>(&bytes).unwrap(),
                spec
            );
        }
        for state in [
            sample_snapshot().policy_state,
            PolicyState::Opaque(vec![7, 0, 7]),
            PolicyState::Opaque(Vec::new()),
        ] {
            let bytes = dejavuzz_persist::to_bytes(&state);
            assert_eq!(
                dejavuzz_persist::from_bytes::<PolicyState>(&bytes).unwrap(),
                state
            );
        }
        // Unknown tags fail structurally, never panic.
        let bad = dejavuzz_persist::to_bytes(&9u32);
        assert!(dejavuzz_persist::from_bytes::<SchedulerSpec>(&bad).is_err());
        assert!(dejavuzz_persist::from_bytes::<PolicySpec>(&bad).is_err());
        assert!(dejavuzz_persist::from_bytes::<PolicyState>(&bad).is_err());
    }

    #[test]
    fn framed_snapshot_round_trips() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(CampaignSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn every_truncation_of_a_real_snapshot_fails_structurally() {
        let bytes = sample_snapshot().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CampaignSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn wrong_version_and_magic_fail_before_payload_decode() {
        let bytes = sample_snapshot().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            CampaignSnapshot::from_bytes(&wrong_magic),
            Err(DecodeError::BadMagic { .. })
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert!(matches!(
            CampaignSnapshot::from_bytes(&wrong_version),
            Err(DecodeError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn payload_corruption_is_caught_by_the_checksum() {
        let mut bytes = sample_snapshot().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert!(matches!(
            CampaignSnapshot::from_bytes(&bytes),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn inconsistent_worker_states_fail_decode() {
        let mut snap = sample_snapshot();
        snap.worker_states.pop();
        // Re-frame the inconsistent payload with a valid checksum so the
        // *semantic* validation is what trips.
        let bytes = frame::seal(
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            &dejavuzz_persist::to_bytes(&snap),
        );
        assert!(matches!(
            CampaignSnapshot::from_bytes(&bytes),
            Err(DecodeError::InvalidValue {
                what: "CampaignSnapshot::worker_states",
                ..
            })
        ));
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let snap = sample_snapshot();
        let path = std::env::temp_dir().join(format!(
            "dejavuzz-snapshot-test-{}.snap",
            std::process::id()
        ));
        snap.save(&path).unwrap();
        assert_eq!(CampaignSnapshot::load(&path).unwrap(), snap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_unions_coverage_and_dedups_bugs() {
        let mut a = sample_snapshot();
        let mut b = sample_snapshot();
        b.shard_id = 3;
        use dejavuzz_ift::CoveragePoint;
        for (m, i) in [("rob", 1), ("rob", 2), ("lsu", 1)] {
            a.coverage.insert(CoveragePoint {
                module: m,
                index: i,
            });
        }
        for (m, i) in [("rob", 2), ("dcache", 4)] {
            b.coverage.insert(CoveragePoint {
                module: m,
                index: i,
            });
        }
        let merged = merge_snapshots(&[a.clone(), b.clone()]);
        assert_eq!(merged.shards, vec![2, 3]);
        assert_eq!(merged.coverage.points(), 4, "exact union, rob/2 once");
        assert_eq!(merged.summed_points, 5, "the naive sum inflates");
        assert_eq!(merged.stats.iterations, 10);
        assert_eq!(
            merged.stats.bugs.len(),
            1,
            "identical dedup keys collapse across shards"
        );
    }
}
