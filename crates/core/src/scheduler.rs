//! Pluggable campaign scheduling: how iteration slots are partitioned
//! and claimed across pipeline workers ([`Scheduler`]), and which corpus
//! entry each slot mutates ([`SeedPolicy`]).
//!
//! # Why a scheduling layer
//!
//! The executor's round protocol used to hardwire both decisions: fixed
//! per-worker batches (a slow seed — e.g. a long mispredict
//! training-reduction loop — idles every sibling at the round barrier)
//! and bare energy-decay corpus picks. This module extracts them behind
//! two traits so the load-balancing strategy and the corpus
//! cross-pollination policy evolve independently of the executor's
//! transport.
//!
//! # Schedulers
//!
//! * [`RoundRobin`] — the classic protocol, bit-identical to the
//!   pre-refactor executor: each worker receives a contiguous batch of
//!   slots per round and runs them with *chained* state (its own RNG
//!   stream for fresh seeds, its long-lived coverage view, its in-round
//!   gain samples). Deterministic for fixed `(seed, workers)`.
//! * [`WorkStealing`] — every slot of the round is fully pre-drawn at
//!   planning time (corpus picks and fresh seeds alike), so slots are
//!   mutually independent; idle workers claim the next unclaimed slot
//!   from a shared queue instead of idling behind a slow sibling.
//!   Results are committed in slot order, so the final coverage, corpus,
//!   bug list and coverage curve are deterministic for fixed `(seed,
//!   workers)` **regardless of steal interleaving** — which physical
//!   thread ran a slot can never change what the slot computed.
//!
//! # Work-stealing determinism, precisely
//!
//! A stolen slot's computation reads only state frozen at round start:
//!
//! 1. its seed, pre-drawn by [`WorkStealing::plan_round`] in global slot
//!    order — corpus picks from the scheduler RNG via the
//!    [`SeedPolicy`], fresh seeds from the owning *logical stream*'s RNG
//!    (the same per-worker streams, consumed in the same order, as
//!    [`RoundRobin`] workers would draw themselves);
//! 2. the round-start coverage view (every worker's view equals the
//!    committed global union at a round boundary) — each slot runs
//!    against a private copy, so no slot sees a concurrent slot's
//!    observations;
//! 3. the round-start gain threshold — each slot folds only its own
//!    mutation-attempt gains.
//!
//! The orchestrator then replays outcomes in slot order exactly as it
//! does for [`RoundRobin`], so the campaign state evolution is a pure
//! function of `(seed, workers, batch)`.
//!
//! # Equivalence with [`RoundRobin`]
//!
//! The two schedulers differ *only* in intra-batch state chaining: a
//! [`RoundRobin`] worker threads its view and gain samples through the
//! slots of its batch, while [`WorkStealing`] freezes both at round
//! start. With `batch == 1` there is nothing to chain — each worker runs
//! exactly one slot per round — and the two schedulers are **provably
//! bit-identical**: same seeds, same gains, same coverage, same bugs,
//! same snapshots (asserted by `tests/scheduler.rs` across worker counts
//! and across halt/resume boundaries). At larger batch sizes the
//! schedulers are each deterministic but may explore different seeds
//! once a worker's earlier in-batch observation would have changed a
//! later slot's measured gain.
//!
//! # Cross-round pipelining
//!
//! [`WorkStealing`]'s pre-drawn rounds admit a stronger schedule: since
//! every slot of a round reads only round-start state, the orchestrator
//! can plan and dispatch round k+2 the moment round k's last slot
//! *commits* — while round k+1's stragglers are still running — instead
//! of idling every worker at a barrier. The price is an explicit,
//! deterministic **feedback lag**: a pipelined round is planned from (and
//! its view broadcasts carry) the committed coverage/corpus/threshold
//! state as of one round behind the frontier, rather than the immediately
//! preceding round. `--pipeline-lag 0` (the default) keeps the barriered
//! protocol byte-identically; any `lag >= 1` selects the depth-one
//! pipeline (the minimum that removes the barrier — deeper requested lags
//! are satisfied a fortiori and all behave identically). Results remain a
//! pure function of `(seed, workers, lag)`; [`Scheduler::supports_pipelining`]
//! gates which schedulers may opt in, and [`PlanCtx::lag`] tells a plan
//! how stale its feedback may be.
//!
//! # Seed policies
//!
//! * [`EnergyDecay`] — the extracted legacy behaviour: energy-weighted
//!   roulette over retained entries, energy decaying per reschedule
//!   ([`Corpus::schedule`]).
//! * [`FavouredQuota`] — AFL-style favoured-entry culling: the
//!   cheapest seed (smallest post-reduction training overhead) covering
//!   each coverage point is *favoured*; non-favoured entries keep only
//!   [`FAVOURED_CULL`] of their scheduling weight. Picks are additionally
//!   subject to per-[`WindowType`] quotas — the represented window type
//!   with the fewest picks so far is served first — so cheap
//!   branch-mispredict lineages cannot starve exception windows.
//!
//! Policy state that influences scheduling (the favours map, the quota
//! counters) is captured by [`SeedPolicy::state`] and persisted inside
//! campaign snapshots, so resumed campaigns replay policy decisions
//! bit-identically.

use std::collections::BTreeMap;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use dejavuzz_ift::CoveragePoint;

use crate::builder::BuildError;
use crate::corpus::Corpus;
use crate::gen::{Seed, WindowType};

/// Weight multiplier for non-favoured corpus entries under
/// [`FavouredQuota`]: favoured entries keep their full energy,
/// non-favoured entries are culled to a quarter of theirs.
pub const FAVOURED_CULL: f64 = 0.25;

/// One iteration slot of a round, as assigned to a specific worker by a
/// batch-shaped plan ([`RoundPlan::Batches`]).
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Global iteration index.
    pub slot: usize,
    /// A corpus pick to mutate, or `None` for fresh exploration (the
    /// worker draws the fresh seed from its own RNG stream).
    pub scheduled: Option<Seed>,
}

/// One fully pre-drawn iteration slot of a queue-shaped plan
/// ([`RoundPlan::Queue`]): any worker may claim it, and the outcome is
/// attributed to its logical `stream` for deterministic accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedSlot {
    /// Global iteration index.
    pub slot: usize,
    /// Logical worker stream this slot's fresh entropy was drawn from
    /// (the same contiguous-chunk mapping [`RoundRobin`] uses), and the
    /// stream its observations are attributed to.
    pub stream: usize,
    /// The concrete seed to run: a policy pick's mutation or a
    /// pre-drawn fresh seed.
    pub seed: Seed,
}

/// A planned round: how its slots are distributed over the worker pool.
#[derive(Clone, Debug)]
pub enum RoundPlan {
    /// Fixed per-worker batches (`batches[w]` runs on worker `w`, with
    /// chained worker state). Empty batches are skipped.
    Batches(Vec<Vec<WorkItem>>),
    /// Mutually independent pre-drawn slots, claimed dynamically from a
    /// shared queue by whichever worker is idle.
    Queue(Vec<PlannedSlot>),
}

/// Everything a scheduler consults while planning a round. All
/// randomness flows through the scheduler RNG and the per-worker stream
/// mirrors, so planning is deterministic and snapshot-restorable.
pub struct PlanCtx<'a> {
    /// The shared seed corpus.
    pub corpus: &'a mut Corpus,
    /// The seed policy deciding corpus picks.
    pub policy: &'a mut dyn SeedPolicy,
    /// The central scheduling RNG stream.
    pub sched_rng: &'a mut StdRng,
    /// Raw per-worker RNG stream positions (the orchestrator's mirrors;
    /// queue-shaped plans draw fresh seeds from these and advance them).
    pub worker_rngs: &'a mut [[u64; 4]],
    /// Pool size.
    pub workers: usize,
    /// Per-worker batch size.
    pub batch: usize,
    /// The feedback lag this plan may rely on, in slots: `0` means the
    /// plan observes state committed through the immediately preceding
    /// round (barriered rounds); a positive lag means the orchestrator is
    /// pipelining and the plan observes coverage/corpus/threshold state
    /// that trails the frontier by up to one round (see the module docs'
    /// pipelining section). Informational for the built-ins — they draw
    /// from whatever committed state the context holds — but lag-aware
    /// extensions may use it to, e.g., widen exploration under stale
    /// feedback.
    pub lag: usize,
    /// Active scenario-instance indices (sorted by canonical spec,
    /// deduped). Fresh-seed draws sample uniformly over
    /// `WindowType::ALL` plus these; empty keeps the historical
    /// base-only draw byte-identical.
    pub scenarios: &'a [u16],
}

/// How iteration slots are partitioned and claimed across workers, round
/// by round. Implementations must be deterministic: a plan may depend
/// only on the [`PlanCtx`] state, never on wall-clock or thread timing.
///
/// Custom implementations plug in through the extension registry
/// ([`crate::registry::register_scheduler`] or
/// [`crate::builder::CampaignBuilder::scheduler_ctor`]) and are selected
/// by [`SchedulerSpec::Extension`]. A stateful custom scheduler persists
/// whatever influences future plans through [`Scheduler::state`]; the
/// blob is stored in campaign snapshots (format v3) and handed back to
/// the registered constructor on resume, so custom scheduling replays
/// bit-identically across a halt/resume boundary.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Human-readable scheduler name.
    fn name(&self) -> &'static str;

    /// Number of slots the next round spans, given the pool geometry and
    /// the remaining iteration budget.
    fn round_span(&self, workers: usize, batch: usize, remaining: usize) -> usize {
        remaining.min(workers * batch)
    }

    /// Plans one round over `slots`, drawing per-slot scheduling
    /// decisions in global slot order.
    fn plan_round(&mut self, slots: Range<usize>, ctx: &mut PlanCtx<'_>) -> RoundPlan;

    /// The scheduler's persistable state: an opaque blob the snapshot
    /// stores and the extension constructor restores on resume. Stateless
    /// schedulers (both built-ins) return an empty blob.
    fn state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Whether this scheduler's plans tolerate the cross-round pipeline
    /// (`--pipeline-lag >= 1`): the orchestrator pre-draws round k+2 the
    /// moment round k commits, so a plan must consist of mutually
    /// independent pre-drawn slots ([`RoundPlan::Queue`]) whose outcomes
    /// commit in slot order regardless of claim timing. Returning `true`
    /// is a promise that `plan_round` always produces queue-shaped plans;
    /// batch-shaped schedulers (chained worker state assumes a barrier)
    /// must keep the default `false`, which makes the builder reject the
    /// lag with a structured error.
    fn supports_pipelining(&self) -> bool {
        false
    }
}

/// The classic fixed-batch protocol (see the module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn plan_round(&mut self, slots: Range<usize>, ctx: &mut PlanCtx<'_>) -> RoundPlan {
        let mut batches = vec![Vec::new(); ctx.workers];
        let mut slot = slots.start;
        for batch in batches.iter_mut() {
            for _ in 0..ctx.batch {
                if slot == slots.end {
                    break;
                }
                batch.push(WorkItem {
                    slot,
                    scheduled: ctx.policy.schedule(ctx.corpus, ctx.sched_rng),
                });
                slot += 1;
            }
        }
        RoundPlan::Batches(batches)
    }
}

/// The deterministic work-stealing scheduler (see the module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkStealing;

impl Scheduler for WorkStealing {
    fn name(&self) -> &'static str {
        "work-stealing"
    }

    fn supports_pipelining(&self) -> bool {
        true // every plan is a queue of mutually independent slots
    }

    fn plan_round(&mut self, slots: Range<usize>, ctx: &mut PlanCtx<'_>) -> RoundPlan {
        let mut queue = Vec::with_capacity(slots.len());
        for (pos, slot) in slots.enumerate() {
            // Contiguous-chunk stream mapping — the same slot→worker map
            // RoundRobin uses, so fresh entropy comes from the same
            // stream positions either way.
            let stream = pos / ctx.batch;
            let seed = match ctx.policy.schedule(ctx.corpus, ctx.sched_rng) {
                Some(seed) => seed,
                None => {
                    // Pre-draw the fresh seed exactly as the worker
                    // itself would (`executor::run_iteration`'s fresh
                    // path), from the stream's mirrored position.
                    let mut rng = StdRng::from_raw_state(ctx.worker_rngs[stream]);
                    let window_type = crate::gen::draw_window_type(&mut rng, ctx.scenarios);
                    let seed = Seed::new(window_type, rng.gen());
                    ctx.worker_rngs[stream] = rng.state();
                    seed
                }
            };
            queue.push(PlannedSlot { slot, stream, seed });
        }
        RoundPlan::Queue(queue)
    }
}

/// Cloneable scheduler selector — the configuration-level handle the
/// [`crate::executor::Orchestrator`] stores and campaign snapshots
/// persist (resume adopts the snapshot's scheduler: it is part of the
/// campaign's replay identity, like its seed and worker count).
///
/// [`SchedulerSpec::Extension`] names a custom implementation registered
/// with [`crate::registry::register_scheduler`] (or supplied directly via
/// [`crate::builder::CampaignBuilder::scheduler_ctor`]); snapshots
/// persist the id, so a resumed campaign rebuilds the same custom
/// scheduler — provided the resuming process registered it too.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// [`RoundRobin`] (the default).
    #[default]
    RoundRobin,
    /// [`WorkStealing`].
    WorkStealing,
    /// A registered extension, by id (labelled `ext:<id>`).
    Extension(String),
}

impl SchedulerSpec {
    /// Parses a CLI-style scheduler name (`round`, `steal`, or
    /// `ext:<id>` for a registered extension). Extension ids are
    /// validated here against the registry's id rules, so a structurally
    /// unregistrable id (empty, whitespace, embedded `:`) is diagnosed
    /// as invalid rather than later as "not registered".
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "round" | "round-robin" => Ok(SchedulerSpec::RoundRobin),
            "steal" | "work-stealing" => Ok(SchedulerSpec::WorkStealing),
            other => match other.strip_prefix("ext:") {
                Some(id) => match crate::registry::validate_id(id) {
                    Ok(()) => Ok(SchedulerSpec::Extension(id.to_string())),
                    Err(e) => Err(e.to_string()),
                },
                None => Err(format!(
                    "unknown scheduler {other:?} (expected round|steal|ext:<id>)"
                )),
            },
        }
    }

    /// Short CLI-facing label (`round`, `steal`, `ext:<id>`).
    pub fn label(&self) -> String {
        match self {
            SchedulerSpec::RoundRobin => "round".into(),
            SchedulerSpec::WorkStealing => "steal".into(),
            SchedulerSpec::Extension(id) => format!("ext:{id}"),
        }
    }

    /// Builds the scheduler instance, restoring the opaque extension
    /// state blob when resuming. Extensions resolve through the global
    /// [`crate::registry`]; an unregistered id is a
    /// [`BuildError::UnknownScheduler`] (the
    /// [`crate::builder::CampaignBuilder`] reports this at build time,
    /// before any campaign work starts).
    pub fn build(&self, state: Option<&[u8]>) -> Result<Box<dyn Scheduler>, BuildError> {
        match self {
            SchedulerSpec::RoundRobin => Ok(Box::new(RoundRobin)),
            SchedulerSpec::WorkStealing => Ok(Box::new(WorkStealing)),
            SchedulerSpec::Extension(id) => match crate::registry::scheduler_ctor(id) {
                Some(ctor) => Ok(ctor(state)),
                None => Err(BuildError::UnknownScheduler { id: id.clone() }),
            },
        }
    }
}

/// What one committed slot fed back to the corpus: the executed seed,
/// its selected-attempt coverage gain, the points it contributed to the
/// *global* union (deduplicated, in commit order), and a cost proxy for
/// favoured-entry selection.
pub struct SlotFeedback<'a> {
    /// The executed seed (post-mutation).
    pub seed: &'a Seed,
    /// Its window category.
    pub window_type: WindowType,
    /// Coverage gain of the selected phase-2 attempt (retention energy).
    pub gain: usize,
    /// Points this slot newly contributed to the global coverage union.
    pub global_fresh: &'a [CoveragePoint],
    /// Cost proxy: post-reduction training overhead (smaller = cheaper
    /// seed — the "smallest seed covering each point" of AFL-style
    /// favoured culling).
    pub cost: u64,
}

/// Opaque-but-persistable scheduling state of a [`SeedPolicy`]: whatever
/// beyond the corpus itself influences future picks. Stored in
/// [`crate::snapshot::CampaignSnapshot`] so resumed campaigns replay
/// policy decisions bit-identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum PolicyState {
    /// The policy keeps no state outside the corpus.
    #[default]
    Stateless,
    /// [`FavouredQuota`] state: the favours map (canonically sorted by
    /// coverage point) and the per-window-type pick counters.
    Favoured {
        /// `(point, favoured lineage)` pairs, sorted by point.
        favours: Vec<(CoveragePoint, Favour)>,
        /// `(window type, picks so far)` pairs, sorted by type.
        picks: Vec<(WindowType, usize)>,
    },
    /// A custom policy's state: an opaque blob only the registered
    /// extension constructor can interpret. Persisted verbatim in
    /// snapshots and handed back on resume.
    Opaque(Vec<u8>),
}

/// The favoured lineage for one coverage point: the cheapest seed that
/// covered it, identified by its corpus lineage key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Favour {
    /// Lineage window type.
    pub window_type: WindowType,
    /// Lineage entropy (trigger configuration identity).
    pub entropy: u64,
    /// The cost ([`SlotFeedback::cost`]) at which the point was covered.
    pub cost: u64,
}

/// Which corpus entry each slot mutates. Implementations draw all
/// randomness from the caller-supplied RNG and must be deterministic for
/// a fixed `(corpus, state, RNG)` triple.
pub trait SeedPolicy: std::fmt::Debug + Send {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Draws the next slot's seed, or `None` for fresh exploration.
    fn schedule(&mut self, corpus: &mut Corpus, rng: &mut StdRng) -> Option<Seed>;

    /// Folds one committed slot's feedback into the corpus (retention)
    /// and the policy's own state.
    fn record(&mut self, corpus: &mut Corpus, feedback: &SlotFeedback<'_>);

    /// Captures the policy's persistable state for a campaign snapshot.
    fn state(&self) -> PolicyState;
}

/// The extracted legacy policy: energy-weighted roulette with
/// per-reschedule decay, gain-keyed retention (see [`Corpus`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyDecay;

impl SeedPolicy for EnergyDecay {
    fn name(&self) -> &'static str {
        "energy-decay"
    }

    fn schedule(&mut self, corpus: &mut Corpus, rng: &mut StdRng) -> Option<Seed> {
        corpus.schedule(rng)
    }

    fn record(&mut self, corpus: &mut Corpus, feedback: &SlotFeedback<'_>) {
        corpus.record(feedback.seed, feedback.gain);
    }

    fn state(&self) -> PolicyState {
        PolicyState::Stateless
    }
}

/// AFL-style favoured-entry culling with per-window-type quotas (see the
/// module docs).
#[derive(Clone, Debug, Default)]
pub struct FavouredQuota {
    /// Per coverage point: the cheapest lineage that covered it.
    favours: BTreeMap<CoveragePoint, Favour>,
    /// How many points favour each lineage — the incrementally
    /// maintained index behind [`FavouredQuota::is_favoured`], so the
    /// per-slot roulette never scans the whole favours map. Derived
    /// state: rebuilt from `favours` on restore, not persisted.
    favoured_lineages: BTreeMap<(WindowType, u64), usize>,
    /// Per window type: exploit picks served so far.
    picks: BTreeMap<WindowType, usize>,
}

impl FavouredQuota {
    /// Rebuilds the policy from persisted state ([`PolicyState::Favoured`];
    /// any other state restores an empty policy).
    pub fn from_state(state: &PolicyState) -> Self {
        match state {
            PolicyState::Favoured { favours, picks } => {
                let mut lineages: BTreeMap<(WindowType, u64), usize> = BTreeMap::new();
                for (_, f) in favours {
                    *lineages.entry((f.window_type, f.entropy)).or_insert(0) += 1;
                }
                FavouredQuota {
                    favours: favours.iter().map(|(p, f)| (*p, *f)).collect(),
                    favoured_lineages: lineages,
                    picks: picks.iter().copied().collect(),
                }
            }
            PolicyState::Stateless | PolicyState::Opaque(_) => FavouredQuota::default(),
        }
    }

    /// True if the corpus entry's lineage is favoured for some point.
    fn is_favoured(&self, window_type: WindowType, entropy: u64) -> bool {
        self.favoured_lineages.contains_key(&(window_type, entropy))
    }

    /// Adjusts the lineage refcount index when a favour is granted or
    /// taken away.
    fn count_lineage(&mut self, favour: &Favour, delta: isize) {
        let key = (favour.window_type, favour.entropy);
        match self.favoured_lineages.get_mut(&key) {
            Some(n) if delta < 0 => {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.favoured_lineages.remove(&key);
                }
            }
            Some(n) => *n += 1,
            None if delta > 0 => {
                self.favoured_lineages.insert(key, 1);
            }
            None => {}
        }
    }
}

impl SeedPolicy for FavouredQuota {
    fn name(&self) -> &'static str {
        "favoured-quota"
    }

    fn schedule(&mut self, corpus: &mut Corpus, rng: &mut StdRng) -> Option<Seed> {
        let p = corpus.exploit_probability();
        if corpus.is_empty() || p <= 0.0 || !rng.gen_bool(p) {
            return None;
        }
        // Quota: serve the represented window type with the fewest
        // exploit picks so far (ties resolve in `WindowType` order: base
        // families first, then scenario families by canonical spec), so
        // cheap mispredict lineages cannot starve exception windows —
        // and scenario families get the same fairness guarantee.
        let mut represented: Vec<WindowType> = corpus
            .entries()
            .iter()
            .map(|e| e.seed.window_type)
            .collect();
        represented.sort_unstable();
        represented.dedup();
        let target = represented
            .into_iter()
            .min_by_key(|wt| self.picks.get(wt).copied().unwrap_or(0))?;
        // Energy-weighted roulette over the target type's entries, with
        // non-favoured entries culled to a fraction of their weight.
        // Weights are computed once per candidate (the favoured probe is
        // an O(log n) index lookup) — this runs on the orchestrator's
        // planning path ahead of every worker, so it must stay cheap as
        // the corpus and favours map grow.
        let candidates: Vec<(usize, f64)> = corpus
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.seed.window_type == target)
            .map(|(i, e)| {
                let w = e.energy();
                if self.is_favoured(e.seed.window_type, e.seed.entropy) {
                    (i, w)
                } else {
                    (i, w * FAVOURED_CULL)
                }
            })
            .collect();
        let total: f64 = candidates.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut roll = (rng.gen::<u64>() as f64 / u64::MAX as f64) * total;
        let mut pick = candidates.last().expect("candidates nonempty").0;
        for (i, w) in &candidates {
            roll -= w;
            if roll <= 0.0 {
                pick = *i;
                break;
            }
        }
        *self.picks.entry(target).or_insert(0) += 1;
        Some(corpus.schedule_entry(pick))
    }

    fn record(&mut self, corpus: &mut Corpus, feedback: &SlotFeedback<'_>) {
        corpus.record(feedback.seed, feedback.gain);
        for point in feedback.global_fresh {
            let challenger = Favour {
                window_type: feedback.window_type,
                entropy: feedback.seed.entropy,
                cost: feedback.cost,
            };
            match self.favours.get(point).copied() {
                // First cover, or a strictly cheaper one, takes the
                // favour; ties keep the incumbent (earliest in commit
                // order — deterministic).
                Some(incumbent) if incumbent.cost <= challenger.cost => {}
                incumbent => {
                    if let Some(loser) = incumbent {
                        self.count_lineage(&loser, -1);
                    }
                    self.count_lineage(&challenger, 1);
                    self.favours.insert(*point, challenger);
                }
            }
        }
    }

    fn state(&self) -> PolicyState {
        PolicyState::Favoured {
            favours: self.favours.iter().map(|(p, f)| (*p, *f)).collect(),
            picks: self.picks.iter().map(|(w, n)| (*w, *n)).collect(),
        }
    }
}

/// Cloneable seed-policy selector, mirroring [`SchedulerSpec`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum PolicySpec {
    /// [`EnergyDecay`] (the default).
    #[default]
    EnergyDecay,
    /// [`FavouredQuota`].
    FavouredQuota,
    /// A registered extension, by id (labelled `ext:<id>`); see
    /// [`crate::registry::register_seed_policy`].
    Extension(String),
}

impl PolicySpec {
    /// Parses a CLI-style policy name (`energy`, `favoured`, or
    /// `ext:<id>` for a registered extension; ids are validated against
    /// the registry's id rules, as in [`SchedulerSpec::parse`]).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "energy" | "energy-decay" => Ok(PolicySpec::EnergyDecay),
            "favoured" | "favored" | "favoured-quota" => Ok(PolicySpec::FavouredQuota),
            other => match other.strip_prefix("ext:") {
                Some(id) => match crate::registry::validate_id(id) {
                    Ok(()) => Ok(PolicySpec::Extension(id.to_string())),
                    Err(e) => Err(e.to_string()),
                },
                None => Err(format!(
                    "unknown seed policy {other:?} (expected energy|favoured|ext:<id>)"
                )),
            },
        }
    }

    /// Short CLI-facing label (`energy`, `favoured`, `ext:<id>`).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::EnergyDecay => "energy".into(),
            PolicySpec::FavouredQuota => "favoured".into(),
            PolicySpec::Extension(id) => format!("ext:{id}"),
        }
    }

    /// Builds the policy, restoring persisted state when given.
    /// Extensions resolve through the global [`crate::registry`] and
    /// receive the raw blob of a [`PolicyState::Opaque`]; an unregistered
    /// id is a [`BuildError::UnknownSeedPolicy`].
    pub fn build(&self, state: Option<&PolicyState>) -> Result<Box<dyn SeedPolicy>, BuildError> {
        match self {
            PolicySpec::EnergyDecay => Ok(Box::new(EnergyDecay)),
            PolicySpec::FavouredQuota => Ok(Box::new(match state {
                Some(s) => FavouredQuota::from_state(s),
                None => FavouredQuota::default(),
            })),
            PolicySpec::Extension(id) => match crate::registry::seed_policy_ctor(id) {
                Some(ctor) => {
                    let blob = match state {
                        Some(PolicyState::Opaque(b)) => Some(b.as_slice()),
                        _ => None,
                    };
                    Ok(ctor(blob))
                }
                None => Err(BuildError::UnknownSeedPolicy { id: id.clone() }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seeded_corpus(entries: &[(WindowType, u64, usize)]) -> Corpus {
        let mut c = Corpus::new(32);
        for &(wt, entropy, gain) in entries {
            c.record(&Seed::new(wt, entropy), gain);
        }
        c
    }

    #[test]
    fn specs_parse_and_label() {
        assert_eq!(
            SchedulerSpec::parse("round").unwrap(),
            SchedulerSpec::RoundRobin
        );
        assert_eq!(
            SchedulerSpec::parse("steal").unwrap(),
            SchedulerSpec::WorkStealing
        );
        assert!(SchedulerSpec::parse("fifo").is_err());
        assert_eq!(
            SchedulerSpec::parse("ext:my-sched").unwrap(),
            SchedulerSpec::Extension("my-sched".into())
        );
        assert!(SchedulerSpec::parse("ext:").is_err(), "empty id rejected");
        assert!(
            SchedulerSpec::parse("ext:a:b")
                .unwrap_err()
                .contains("invalid extension id"),
            "unregistrable ids are diagnosed at parse time"
        );
        assert_eq!(
            SchedulerSpec::Extension("my-sched".into()).label(),
            "ext:my-sched"
        );
        assert_eq!(
            PolicySpec::parse("ext:my-pol").unwrap(),
            PolicySpec::Extension("my-pol".into())
        );
        assert!(PolicySpec::parse("ext:").is_err());
        assert_eq!(PolicySpec::Extension("my-pol".into()).label(), "ext:my-pol");
        assert_eq!(SchedulerSpec::WorkStealing.label(), "steal");
        assert_eq!(
            PolicySpec::parse("energy").unwrap(),
            PolicySpec::EnergyDecay
        );
        assert_eq!(
            PolicySpec::parse("favoured").unwrap(),
            PolicySpec::FavouredQuota
        );
        assert!(PolicySpec::parse("rarest").is_err());
        assert_eq!(PolicySpec::FavouredQuota.label(), "favoured");
        assert_eq!(SchedulerSpec::default(), SchedulerSpec::RoundRobin);
        assert_eq!(PolicySpec::default(), PolicySpec::EnergyDecay);
    }

    #[test]
    fn energy_decay_matches_legacy_corpus_scheduling() {
        let mut policy_corpus = seeded_corpus(&[
            (WindowType::BranchMispredict, 1, 5),
            (WindowType::MemPageFault, 2, 9),
        ]);
        let mut legacy_corpus = policy_corpus.clone();
        let mut policy = EnergyDecay;
        let mut ra = StdRng::seed_from_u64(11);
        let mut rb = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            assert_eq!(
                policy.schedule(&mut policy_corpus, &mut ra),
                legacy_corpus.schedule(&mut rb),
                "the extracted policy is the legacy behaviour, draw for draw"
            );
        }
        assert_eq!(ra, rb, "identical entropy consumption");
    }

    #[test]
    fn round_robin_plans_contiguous_batches_in_slot_order() {
        let mut corpus = Corpus::new(8);
        let mut policy = EnergyDecay;
        let mut sched_rng = StdRng::seed_from_u64(3);
        let mut worker_rngs = [[1, 2, 3, 4], [5, 6, 7, 8]];
        let mut ctx = PlanCtx {
            corpus: &mut corpus,
            policy: &mut policy,
            sched_rng: &mut sched_rng,
            worker_rngs: &mut worker_rngs,
            workers: 2,
            batch: 3,
            lag: 0,
            scenarios: &[],
        };
        let RoundPlan::Batches(batches) = RoundRobin.plan_round(10..15, &mut ctx) else {
            panic!("round robin plans batches");
        };
        assert_eq!(batches.len(), 2);
        let slots: Vec<Vec<usize>> = batches
            .iter()
            .map(|b| b.iter().map(|i| i.slot).collect())
            .collect();
        assert_eq!(slots, vec![vec![10, 11, 12], vec![13, 14]]);
        assert_eq!(
            worker_rngs,
            [[1, 2, 3, 4], [5, 6, 7, 8]],
            "streams untouched"
        );
    }

    #[test]
    fn work_stealing_predraws_fresh_seeds_from_the_owning_stream() {
        let mut corpus = Corpus::new(8); // empty: every slot is fresh
        let mut policy = EnergyDecay;
        let mut sched_rng = StdRng::seed_from_u64(3);
        let stream0 = StdRng::seed_from_u64(100).state();
        let stream1 = StdRng::seed_from_u64(200).state();
        let mut worker_rngs = [stream0, stream1];
        let mut ctx = PlanCtx {
            corpus: &mut corpus,
            policy: &mut policy,
            sched_rng: &mut sched_rng,
            worker_rngs: &mut worker_rngs,
            workers: 2,
            batch: 2,
            lag: 0,
            scenarios: &[],
        };
        let RoundPlan::Queue(queue) = WorkStealing.plan_round(0..4, &mut ctx) else {
            panic!("work stealing plans a queue");
        };
        assert_eq!(queue.len(), 4);
        assert_eq!(
            queue.iter().map(|s| s.stream).collect::<Vec<_>>(),
            vec![0, 0, 1, 1],
            "contiguous-chunk stream map, as round robin partitions"
        );
        // The pre-drawn seeds must be exactly what a worker drawing from
        // the same stream would have generated.
        let mut expect = StdRng::seed_from_u64(100);
        for planned in &queue[..2] {
            let wt = WindowType::ALL[expect.gen_range(0..WindowType::ALL.len())];
            let entropy: u64 = expect.gen();
            assert_eq!(planned.seed, Seed::new(wt, entropy));
        }
        assert_eq!(worker_rngs[0], expect.state(), "stream mirror advanced");
        assert_ne!(worker_rngs[1], stream1, "second stream advanced too");
    }

    #[test]
    fn only_queue_planning_schedulers_support_pipelining() {
        assert!(WorkStealing.supports_pipelining());
        assert!(
            !RoundRobin.supports_pipelining(),
            "chained batch state assumes a barrier"
        );
    }

    #[test]
    fn favoured_quota_serves_the_starved_window_type() {
        // A corpus dominated by high-energy mispredict lineages plus one
        // weak exception lineage: bare energy roulette would almost never
        // pick the exception entry; the quota must alternate.
        let mut corpus = seeded_corpus(&[
            (WindowType::BranchMispredict, 1, 50),
            (WindowType::BranchMispredict, 2, 40),
            (WindowType::MemPageFault, 3, 1),
        ]);
        let mut policy = FavouredQuota::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut by_type: BTreeMap<WindowType, usize> = BTreeMap::new();
        for _ in 0..400 {
            if let Some(s) = policy.schedule(&mut corpus, &mut rng) {
                *by_type.entry(s.window_type).or_insert(0) += 1;
            }
        }
        let mispredict = by_type
            .get(&WindowType::BranchMispredict)
            .copied()
            .unwrap_or(0);
        let exception = by_type.get(&WindowType::MemPageFault).copied().unwrap_or(0);
        assert!(exception > 0, "the weak exception lineage must be served");
        assert!(
            exception.abs_diff(mispredict) <= 1,
            "quotas equalise picks across represented types: {by_type:?}"
        );
    }

    #[test]
    fn favoured_quota_favours_the_cheapest_cover() {
        let mut corpus = Corpus::new(8);
        let mut policy = FavouredQuota::default();
        let point = CoveragePoint {
            module: "rob",
            index: 3,
        };
        let expensive = Seed::new(WindowType::BranchMispredict, 1);
        let cheap = Seed::new(WindowType::BranchMispredict, 2);
        policy.record(
            &mut corpus,
            &SlotFeedback {
                seed: &expensive,
                window_type: expensive.window_type,
                gain: 4,
                global_fresh: &[point],
                cost: 9,
            },
        );
        assert!(policy.is_favoured(WindowType::BranchMispredict, 1));
        policy.record(
            &mut corpus,
            &SlotFeedback {
                seed: &cheap,
                window_type: cheap.window_type,
                gain: 4,
                global_fresh: &[point],
                cost: 2,
            },
        );
        assert!(
            policy.is_favoured(WindowType::BranchMispredict, 2),
            "the cheaper cover takes the favour"
        );
        assert!(
            !policy.is_favoured(WindowType::BranchMispredict, 1),
            "the expensive cover loses it"
        );
        // Equal cost keeps the incumbent.
        let rival = Seed::new(WindowType::BranchMispredict, 7);
        policy.record(
            &mut corpus,
            &SlotFeedback {
                seed: &rival,
                window_type: rival.window_type,
                gain: 4,
                global_fresh: &[point],
                cost: 2,
            },
        );
        assert!(policy.is_favoured(WindowType::BranchMispredict, 2));
        assert!(!policy.is_favoured(WindowType::BranchMispredict, 7));
    }

    #[test]
    fn favoured_quota_state_round_trips() {
        let mut corpus = Corpus::new(8);
        let mut policy = FavouredQuota::default();
        let seed = Seed::new(WindowType::IllegalInstr, 9);
        policy.record(
            &mut corpus,
            &SlotFeedback {
                seed: &seed,
                window_type: seed.window_type,
                gain: 3,
                global_fresh: &[CoveragePoint {
                    module: "lsu",
                    index: 2,
                }],
                cost: 0,
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let _ = policy.schedule(&mut corpus, &mut rng);
        let state = policy.state();
        let restored = FavouredQuota::from_state(&state);
        assert_eq!(restored.state(), state, "state survives the round trip");
        assert_eq!(
            EnergyDecay.state(),
            PolicyState::Stateless,
            "the stateless policy stays stateless"
        );
    }

    #[test]
    fn favoured_quota_is_deterministic() {
        let run = || {
            let mut corpus = seeded_corpus(&[
                (WindowType::BranchMispredict, 1, 5),
                (WindowType::MemMisalign, 2, 3),
                (WindowType::IllegalInstr, 3, 8),
            ]);
            let mut policy = FavouredQuota::default();
            let mut rng = StdRng::seed_from_u64(0xFA40);
            (0..300)
                .filter_map(|_| policy.schedule(&mut corpus, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
