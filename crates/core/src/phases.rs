//! The three fuzzing phases of Figure 5, generic over the simulation
//! backend ([`crate::backend::SimBackend`]).
//!
//! Every phase drives the backend through [`simulate`] and analyses the
//! backend-neutral [`RunOutcome`]; backend failures propagate as
//! [`BackendError`] so a misconfigured backend fails the *run* (the
//! executor records it and keeps fuzzing), never the campaign.

use dejavuzz_ift::{IftMode, TaintCoverage};
use dejavuzz_swapmem::{SwapMem, SwapPacket, DEFAULT_LAYOUT};

use crate::backend::{BackendError, RunOutcome, SimBackend};
use crate::gen::{self, Seed, TransientPlan, WindowBody, WindowFill};
use crate::report::{AttackType, BugReport, LeakChannel};

/// Tunables shared by the phases (a subset of
/// [`crate::campaign::FuzzerOptions`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseOptions {
    /// IFT mode for Phase 2/3 simulations (Phase 1 always runs without
    /// taint tracking — triggering is a value-domain question).
    pub mode: IftMode,
    /// Derive targeted trainings (false = the DejaVuzz* variant).
    pub training_derivation: bool,
    /// Run the training-reduction pass.
    pub training_reduction: bool,
    /// Apply the taint-liveness filter in Phase 3 (false = the §6.3
    /// ablation that misclassifies RoB/regfile residue).
    pub liveness_filter: bool,
    /// Decoy (random) training packets generated per seed.
    pub decoy_trainings: usize,
    /// Simulation cycle budget per run.
    pub max_cycles: u64,
}

impl Default for PhaseOptions {
    fn default() -> Self {
        PhaseOptions {
            mode: IftMode::DiffIft,
            training_derivation: true,
            training_reduction: true,
            liveness_filter: true,
            decoy_trainings: 2,
            max_cycles: 20_000,
        }
    }
}

/// The secret pair planted in every generated stimulus (variant 2 is the
/// bit-flip). 0x5A has bits in both halves, exercising bit-dependent
/// gadgets in both planes.
pub const DEFAULT_SECRET: [u8; 8] = [0x5A, 0xC3, 0x01, 0xFE, 0x77, 0x88, 0x10, 0xEF];

/// Builds a ready-to-run [`SwapMem`] for a plan + schedule.
pub fn build_mem(plan: &TransientPlan, schedule: &[SwapPacket], secret: &[u8]) -> SwapMem {
    let mut mem = SwapMem::new(DEFAULT_LAYOUT);
    for (addr, bytes) in gen::data_init() {
        mem.write_bytes(addr, &bytes);
    }
    mem.plant_secret(secret);
    mem.set_secret_policy(plan.secret_policy);
    mem.set_schedule(schedule.to_vec());
    mem
}

/// Runs one simulation of a schedule on the given backend.
pub fn simulate<B: SimBackend + ?Sized>(
    backend: &mut B,
    plan: &TransientPlan,
    schedule: &[SwapPacket],
    mode: IftMode,
    max_cycles: u64,
) -> Result<RunOutcome, BackendError> {
    backend.run(plan, schedule, mode, max_cycles)
}

/// Phase 1 output.
#[derive(Clone, Debug)]
pub struct Phase1Result {
    /// The transient plan.
    pub plan: TransientPlan,
    /// The reduced schedule: surviving trigger trainings + the dummy
    /// transient packet (last).
    pub schedule: Vec<SwapPacket>,
    /// Whether the transient window triggered.
    pub triggered: bool,
    /// Training overhead after reduction (Table 3 TO).
    pub to: usize,
    /// Effective training overhead (Table 3 ETO, excludes alignment nops).
    pub eto: usize,
    /// RTL simulations spent (trigger evaluation + reduction passes).
    pub sim_runs: usize,
}

/// Phase 1: transient window triggering (§4.1).
pub fn phase1<B: SimBackend + ?Sized>(
    backend: &mut B,
    seed: &Seed,
    opts: &PhaseOptions,
) -> Result<Phase1Result, BackendError> {
    let plan = gen::plan(seed);
    let trainings = if opts.training_derivation {
        gen::derive_trainings(seed, &plan, opts.decoy_trainings)
    } else {
        gen::random_trainings(seed, opts.decoy_trainings + 2)
    };
    let transient = gen::build_transient(&plan, &WindowFill::Dummy);
    let mut schedule: Vec<SwapPacket> = trainings;
    schedule.push(transient);
    let mut sim_runs = 0;

    let expected = plan.window_type.expected_cause();
    let mut triggers =
        |schedule: &[SwapPacket], sim_runs: &mut usize| -> Result<bool, BackendError> {
            *sim_runs += 1;
            let r = simulate(backend, &plan, schedule, IftMode::Base, opts.max_cycles)?;
            Ok(r.trace
                .window_in_packet_caused(schedule.len() - 1, Some(expected))
                .is_some_and(|w| w.triggered()))
        };

    let triggered = triggers(&schedule, &mut sim_runs)?;
    if triggered && opts.training_reduction {
        // Step 1.2 training reduction: remove one packet at a time and
        // re-simulate; discard packets whose removal keeps the window.
        let mut i = 0;
        while i + 1 < schedule.len() {
            let mut trial = schedule.clone();
            trial.remove(i);
            if triggers(&trial, &mut sim_runs)? {
                schedule = trial;
            } else {
                i += 1;
            }
        }
    }
    let (to, eto) = gen::training_overhead(&schedule[..schedule.len() - 1]);
    Ok(Phase1Result {
        plan,
        schedule,
        triggered,
        to,
        eto,
        sim_runs,
    })
}

/// Phase 2 output.
#[derive(Clone, Debug)]
pub struct Phase2Result {
    /// The completed window body.
    pub body: WindowBody,
    /// Full schedule (window training + trigger trainings + transient).
    pub schedule: Vec<SwapPacket>,
    /// The diffIFT simulation.
    pub run: RunOutcome,
    /// New coverage points this run contributed.
    pub coverage_gain: usize,
    /// Whether taints increased inside the transient window (Phase 2's
    /// propagation check).
    pub taints_increased: bool,
}

/// Phase 2: transient execution exploration (§4.2) for one window body.
///
/// Generic over the coverage sink so the same code path serves a private
/// [`dejavuzz_ift::CoverageMatrix`], the concurrent
/// [`dejavuzz_ift::SharedCoverage`] union, or the executor's
/// [`dejavuzz_ift::RecordingCoverage`] fan-out — and over the simulation
/// backend, so the behavioural cores and the netlist simulator share one
/// exploration path.
pub fn phase2<B: SimBackend + ?Sized, C: TaintCoverage + ?Sized>(
    backend: &mut B,
    seed: &Seed,
    p1: &Phase1Result,
    coverage: &mut C,
    opts: &PhaseOptions,
) -> Result<Phase2Result, BackendError> {
    let body = gen::complete_window(seed, &p1.plan);
    let transient = gen::build_transient(&p1.plan, &WindowFill::Body(body.full()));
    // Window training packets are scheduled *before* the trigger trainings
    // "to avoid invalidating the transient window" (§4.2.1).
    let mut schedule = Vec::new();
    if let Some(warm) = gen::derive_window_training(&p1.plan) {
        schedule.push(warm);
    }
    schedule.extend_from_slice(&p1.schedule[..p1.schedule.len() - 1]);
    schedule.push(transient);

    let run = simulate(backend, &p1.plan, &schedule, opts.mode, opts.max_cycles)?;
    let window = run.window_in_packet(schedule.len() - 1);
    let taints_increased = window
        .map(|w| {
            run.taint_log
                .taint_increased_in(w.start_cycle as usize, w.end_cycle as usize + 1)
        })
        .unwrap_or(false);
    let coverage_gain = if backend.supports_taint() {
        // The DIFT census: folding the run's taint log into the coverage
        // matrix. Timed off the commit path — the gain value itself never
        // depends on the instrument.
        let _census_span =
            dejavuzz_telemetry::Timer::start(&crate::metrics::handles().census_nanos);
        coverage.observe_log(&run.taint_log)
    } else {
        // A backend without taint tracking produces an empty log; folding
        // it would silently report zero gain forever, so say why once.
        if opts.mode != IftMode::Base {
            warn_taintless(backend.name());
        }
        0
    };
    Ok(Phase2Result {
        body,
        schedule,
        run,
        coverage_gain,
        taints_increased,
    })
}

/// The structured warning [`phase2`] emits when a DIFT-capable mode runs
/// on a backend whose [`SimBackend::supports_taint`] is false: the
/// campaign proceeds, but coverage feedback is inert. Exposed so tests
/// (and log scrapers) can pin the exact text.
pub fn taintless_warning(backend: &'static str) -> String {
    format!(
        "warning: backend {backend:?} does not support taint tracking; \
         skipping the DIFT census (coverage feedback is inert for this campaign)"
    )
}

/// Emits [`taintless_warning`] on stderr, once per process — every slot
/// of every worker hits this path, and one line says it all.
fn warn_taintless(backend: &'static str) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| eprintln!("{}", taintless_warning(backend)));
}

/// Phase 3 output.
#[derive(Clone, Debug)]
pub struct Phase3Result {
    /// Constant-time violation of the transient window (Phase 3.1).
    pub timing_violation: bool,
    /// Reported leaks (after sanitization + liveness filtering).
    pub leaks: Vec<BugReport>,
    /// Sinks rejected by the liveness filter (tainted but dead).
    pub rejected_residue: usize,
    /// Sinks rejected by encode sanitization (taints not attributable to
    /// the encoding block, e.g. the warm-up's secret line).
    pub rejected_sanitized: usize,
}

/// Phase 3: transient leakage analysis (§4.3).
pub fn phase3<B: SimBackend + ?Sized>(
    backend: &mut B,
    p1: &Phase1Result,
    p2: &Phase2Result,
    iteration: usize,
    opts: &PhaseOptions,
) -> Result<Phase3Result, BackendError> {
    let attack = match p1.plan.secret_policy {
        dejavuzz_swapmem::SecretPolicy::ProtectBeforeTransient => AttackType::Meltdown,
        dejavuzz_swapmem::SecretPolicy::AlwaysReadable => AttackType::Spectre,
    };
    let core = backend.dut_name();
    let mut leaks = Vec::new();

    // Step 3.1: constant-time execution analysis — window timing first,
    // then whole-run divergence (post-window effects like B4's refetch).
    let window = p2.run.window_in_packet(p2.schedule.len() - 1);
    let window_diverged = window.is_some_and(|w| w.timing_diverged());
    let timing_violation = window_diverged || p2.run.timing_diverged();
    if timing_violation {
        // Attribute to the contended resource with the largest divergence.
        let resource = p2
            .run
            .timing_events
            .iter()
            .max_by_key(|t| t.wait_a.abs_diff(t.wait_b))
            .map(|t| t.resource)
            .unwrap_or("pipeline");
        leaks.push(BugReport {
            core,
            attack,
            window_type: p1.plan.window_type,
            channel: LeakChannel::Timing { resource },
            iteration,
        });
    }

    // Step 3.1 encode sanitization: nop the encode block, re-run, and keep
    // only taints the encoding block caused.
    let sanitized_pkt = gen::build_transient(&p1.plan, &WindowFill::Sanitized(p2.body.sanitized()));
    let mut schedule = p2.schedule.clone();
    let last = schedule.len() - 1;
    schedule[last] = sanitized_pkt;
    let sanitized = simulate(backend, &p1.plan, &schedule, opts.mode, opts.max_cycles)?;
    let sanitized_tainted: std::collections::HashSet<(&'static str, String, usize)> = sanitized
        .sinks
        .iter()
        .map(|s| (s.module, s.array.clone(), s.index))
        .collect();

    // Step 3.2 tainted sink liveness analysis.
    let mut rejected_residue = 0;
    let mut rejected_sanitized = 0;
    for sink in &p2.run.sinks {
        if sanitized_tainted.contains(&(sink.module, sink.array.clone(), sink.index)) {
            rejected_sanitized += 1;
            continue;
        }
        if opts.liveness_filter && !sink.live {
            rejected_residue += 1;
            continue;
        }
        // Scenario windows may refine the raw sink module into a
        // family-specific channel label (e.g. `regfile` under the
        // Zenbleed template is stale-register readout, not a generic
        // regfile taint) — the template's classification hook decides.
        let mut module = sink.module;
        if let gen::WindowType::Scenario(i) = p1.plan.window_type {
            if let Some(label) = dejavuzz_scenarios::instance_classify_sink(i, module) {
                module = label;
            }
        }
        leaks.push(BugReport {
            core,
            attack,
            window_type: p1.plan.window_type,
            channel: LeakChannel::Encoded { module },
            iteration,
        });
    }
    // Deduplicate per Table 5 aggregation key.
    leaks.sort_by_key(|l| l.dedup_key());
    leaks.dedup_by_key(|l| l.dedup_key());
    Ok(Phase3Result {
        timing_violation,
        leaks,
        rejected_residue,
        rejected_sanitized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BehaviouralBackend;
    use crate::gen::WindowType;
    use dejavuzz_ift::CoverageMatrix;
    use dejavuzz_uarch::boom_small;

    fn first_triggering_seed(
        backend: &mut BehaviouralBackend,
        wt: WindowType,
        opts: &PhaseOptions,
    ) -> (Seed, Phase1Result) {
        for e in 0..50 {
            let seed = Seed::new(wt, e);
            let p1 = phase1(backend, &seed, opts).unwrap();
            if p1.triggered {
                return (seed, p1);
            }
        }
        panic!("no {wt:?} window triggered in 50 seeds");
    }

    #[test]
    fn phase1_triggers_every_window_type() {
        let mut backend = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions::default();
        for wt in WindowType::ALL {
            let (_, p1) = first_triggering_seed(&mut backend, wt, &opts);
            assert!(p1.triggered, "{wt:?}");
        }
    }

    #[test]
    fn training_reduction_eliminates_decoys() {
        let mut backend = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions::default();
        let (_, p1) = first_triggering_seed(&mut backend, WindowType::BranchMispredict, &opts);
        // Decoy arithmetic packets never survive reduction; at least one
        // targeted branch-training packet must remain.
        assert!(p1.schedule.len() >= 2, "training + transient");
        assert!(
            p1.schedule[..p1.schedule.len() - 1]
                .iter()
                .all(|p| p.name.starts_with("trigger_train")),
            "only trigger trainings precede the transient packet"
        );
        assert!(p1.eto > 0, "mispredict windows need effective training");
        assert!(p1.sim_runs > 1, "reduction re-simulates");
    }

    #[test]
    fn exception_windows_need_zero_training() {
        let mut backend = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions::default();
        for wt in [
            WindowType::MemMisalign,
            WindowType::IllegalInstr,
            WindowType::MemPageFault,
        ] {
            let (_, p1) = first_triggering_seed(&mut backend, wt, &opts);
            assert_eq!(p1.eto, 0, "{wt:?}: reduction removes all training");
        }
    }

    #[test]
    fn phase2_propagates_taints_and_gains_coverage() {
        let mut backend = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions::default();
        let (seed, p1) = first_triggering_seed(&mut backend, WindowType::BranchMispredict, &opts);
        let mut cov = CoverageMatrix::new();
        let p2 = phase2(&mut backend, &seed, &p1, &mut cov, &opts).unwrap();
        assert!(p2.coverage_gain > 0, "fresh coverage from the first run");
        assert!(p2.taints_increased, "the window must propagate the secret");
        assert!(cov.points() > 0);
    }

    /// A backend that simulates normally but reports no taint support —
    /// the external trace-replay shape `SimBackend::supports_taint`
    /// exists for.
    #[derive(Debug)]
    struct Taintless(BehaviouralBackend);

    impl SimBackend for Taintless {
        fn name(&self) -> &'static str {
            "taintless-test"
        }
        fn dut_name(&self) -> &'static str {
            self.0.dut_name()
        }
        fn supports_taint(&self) -> bool {
            false
        }
        fn run(
            &mut self,
            plan: &TransientPlan,
            schedule: &[SwapPacket],
            mode: IftMode,
            max_cycles: u64,
        ) -> Result<RunOutcome, BackendError> {
            self.0.run(plan, schedule, mode, max_cycles)
        }
    }

    #[test]
    fn phase2_skips_the_census_for_taintless_backends() {
        let mut probe = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions::default();
        let (seed, p1) = first_triggering_seed(&mut probe, WindowType::BranchMispredict, &opts);
        let mut backend = Taintless(BehaviouralBackend::new(boom_small()));
        let mut cov = CoverageMatrix::new();
        let p2 = phase2(&mut backend, &seed, &p1, &mut cov, &opts).unwrap();
        // The census is skipped wholesale: no gain, nothing folded into
        // the matrix, and downstream phase 3 is therefore never entered
        // (the campaign loop gates it on taints having increased).
        assert_eq!(p2.coverage_gain, 0);
        assert_eq!(cov.points(), 0);
        // The structured warning has pinned text.
        assert_eq!(
            taintless_warning("taintless-test"),
            "warning: backend \"taintless-test\" does not support taint tracking; \
             skipping the DIFT census (coverage feedback is inert for this campaign)"
        );
    }

    #[test]
    fn phase3_reports_leak_for_meltdown_window() {
        // Not every window body contains a persistent-sink encode gadget
        // (an arithmetic-only body leaks nothing) — scan a few seeds, as
        // the fuzzer would, and require a Meltdown-classified leak.
        let mut backend = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions::default();
        let mut cov = CoverageMatrix::new();
        let mut found = None;
        for e in 0..30 {
            let seed = Seed::new(WindowType::MemPageFault, e);
            let p1 = phase1(&mut backend, &seed, &opts).unwrap();
            if !p1.triggered {
                continue;
            }
            let p2 = phase2(&mut backend, &seed, &p1, &mut cov, &opts).unwrap();
            let p3 = phase3(&mut backend, &p1, &p2, 0, &opts).unwrap();
            if let Some(l) = p3.leaks.first() {
                found = Some(l.clone());
                break;
            }
        }
        let leak = found.expect("some Meltdown window on vulnerable BOOM must leak");
        assert_eq!(leak.attack, AttackType::Meltdown);
    }

    #[test]
    fn phase3_liveness_filter_rejects_residue() {
        let mut backend = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions::default();
        let (seed, p1) = first_triggering_seed(&mut backend, WindowType::BranchMispredict, &opts);
        let mut cov = CoverageMatrix::new();
        let p2 = phase2(&mut backend, &seed, &p1, &mut cov, &opts).unwrap();
        let with = phase3(&mut backend, &p1, &p2, 0, &opts).unwrap();
        let without = phase3(
            &mut backend,
            &p1,
            &p2,
            0,
            &PhaseOptions {
                liveness_filter: false,
                ..opts
            },
        )
        .unwrap();
        assert!(
            without.leaks.len() >= with.leaks.len(),
            "disabling liveness can only add (mis)classifications"
        );
        // Residue rejected by the filter reappears as leaks without it.
        assert_eq!(without.rejected_residue, 0);
    }

    #[test]
    fn phase1_no_derivation_struggles_with_mispredicts() {
        // DejaVuzz*: random trainings rarely align with the trigger.
        let mut backend = BehaviouralBackend::new(boom_small());
        let opts = PhaseOptions {
            training_derivation: false,
            ..PhaseOptions::default()
        };
        let derived = PhaseOptions::default();
        let mut star_hits = 0;
        let mut full_hits = 0;
        for e in 0..30 {
            let seed = Seed::new(WindowType::IndirectMispredict, e);
            if phase1(&mut backend, &seed, &opts).unwrap().triggered {
                star_hits += 1;
            }
            if phase1(&mut backend, &seed, &derived).unwrap().triggered {
                full_hits += 1;
            }
        }
        assert!(
            full_hits > star_hits,
            "derivation must out-trigger random training: {full_hits} vs {star_hits}"
        );
        assert!(full_hits >= 25, "derived training triggers almost always");
    }
}
