//! Stimulus generation: seeds, transient-packet plans, training derivation
//! and window completion (§4.1.1 and §4.2.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejavuzz_isa::asm::ProgramBuilder;
use dejavuzz_isa::instr::{AluOp, BranchOp, Instr, LoadOp, Reg, StoreOp};
use dejavuzz_swapmem::{PacketKind, SecretPolicy, SwapPacket, DEFAULT_LAYOUT};

/// The transient-window categories of Table 3, plus scenario-template
/// instances from `dejavuzz-scenarios`.
///
/// `expected_cause` names the squash mechanism Phase 1 demands from the
/// RoB IO trace before declaring the window triggered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WindowType {
    /// Load/store access fault.
    MemAccessFault,
    /// Load/store page fault.
    MemPageFault,
    /// Load/store misalign.
    MemMisalign,
    /// Illegal instruction.
    IllegalInstr,
    /// Memory disambiguation.
    MemDisambiguation,
    /// Branch misprediction.
    BranchMispredict,
    /// Indirect jump misprediction.
    IndirectMispredict,
    /// Return address misprediction.
    ReturnMispredict,
    /// A scenario-template instance, by process-local intern index
    /// ([`dejavuzz_scenarios::intern_spec`]). Its trigger mechanism is a
    /// base window type ([`WindowType::base`]); its window body comes
    /// from the template. Cross-process identity is the canonical spec
    /// string, never this index.
    Scenario(u16),
}

// Ordering is deliberately manual: base types order by `ALL` position
// (before every scenario), scenario instances by canonical *spec string*.
// Intern indices are process-local — a resumed process interns in
// snapshot-encounter order, a fresh build in sorted order — so ordering
// by raw index would make `BTreeMap` iteration (stats tables, reports)
// process-dependent and break byte-identical halt→resume.
impl Ord for WindowType {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(wt: WindowType) -> usize {
            WindowType::ALL
                .iter()
                .position(|w| *w == wt)
                .unwrap_or(usize::MAX)
        }
        match (self, other) {
            (WindowType::Scenario(a), WindowType::Scenario(b)) => {
                dejavuzz_scenarios::instance_spec(*a).cmp(dejavuzz_scenarios::instance_spec(*b))
            }
            _ => rank(*self).cmp(&rank(*other)),
        }
    }
}

impl PartialOrd for WindowType {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl WindowType {
    /// All categories in Table 3's column order.
    pub const ALL: [WindowType; 8] = [
        WindowType::MemAccessFault,
        WindowType::MemPageFault,
        WindowType::MemMisalign,
        WindowType::IllegalInstr,
        WindowType::MemDisambiguation,
        WindowType::BranchMispredict,
        WindowType::IndirectMispredict,
        WindowType::ReturnMispredict,
    ];

    /// The base (Table 3) window type carrying this window's trigger
    /// mechanism: scenario instances map to the mechanism their template
    /// declares; base types map to themselves. Never returns
    /// [`WindowType::Scenario`].
    pub fn base(self) -> WindowType {
        match self {
            WindowType::Scenario(i) => {
                WindowType::ALL[dejavuzz_scenarios::instance_mechanism(i) as usize]
            }
            other => other,
        }
    }

    /// Table-3 column header; scenario instances display as
    /// `scenario:` + their canonical spec.
    pub fn name(self) -> &'static str {
        match self {
            WindowType::MemAccessFault => "Load/Store Access Fault",
            WindowType::MemPageFault => "Load/Store Page Fault",
            WindowType::MemMisalign => "Load/Store Misalign",
            WindowType::IllegalInstr => "Illegal Instruction",
            WindowType::MemDisambiguation => "Memory Disambiguation",
            WindowType::BranchMispredict => "Branch Misprediction",
            WindowType::IndirectMispredict => "Indirect Jump Misprediction",
            WindowType::ReturnMispredict => "Return Address Misprediction",
            WindowType::Scenario(i) => dejavuzz_scenarios::instance_label(i),
        }
    }

    /// True for the misprediction family (requires predictor training).
    pub fn is_mispredict(self) -> bool {
        matches!(
            self.base(),
            WindowType::BranchMispredict
                | WindowType::IndirectMispredict
                | WindowType::ReturnMispredict
        )
    }

    /// The squash cause Phase 1 requires in the trace for this category.
    pub fn expected_cause(self) -> &'static str {
        match self.base() {
            WindowType::MemAccessFault => "load-access-fault",
            WindowType::MemPageFault => "load-page-fault",
            WindowType::MemMisalign => "load-misalign",
            WindowType::IllegalInstr => "illegal-instruction",
            WindowType::MemDisambiguation => "mem-disambiguation",
            WindowType::BranchMispredict => "branch-mispredict",
            WindowType::IndirectMispredict => "jump-mispredict",
            WindowType::ReturnMispredict => "return-mispredict",
            WindowType::Scenario(_) => unreachable!("base() never returns Scenario"),
        }
    }

    /// Mnemonic matching Table 5's window classes; scenario instances
    /// class by family id so bug dedup is per-family.
    pub fn table5_class(self) -> &'static str {
        match self {
            WindowType::MemAccessFault | WindowType::MemPageFault | WindowType::MemMisalign => {
                "mem-excp"
            }
            WindowType::IllegalInstr => "illegal",
            WindowType::MemDisambiguation => "mem-disamb",
            WindowType::Scenario(i) => dejavuzz_scenarios::instance_family(i),
            _ => "mispred",
        }
    }
}

/// Draws a fresh-seed window type uniformly over the base families plus
/// the active scenario instances. Both fresh-seed sites (the worker's
/// in-iteration draw and the work-stealing pre-draw) use this, so the
/// two stay in lockstep; with no scenarios active the draw is exactly
/// the historical `gen_range(0..WindowType::ALL.len())`.
pub fn draw_window_type(rng: &mut StdRng, scenarios: &[u16]) -> WindowType {
    let k = rng.gen_range(0..WindowType::ALL.len() + scenarios.len());
    match WindowType::ALL.get(k) {
        Some(wt) => *wt,
        None => WindowType::Scenario(scenarios[k - WindowType::ALL.len()]),
    }
}

/// A fuzzing seed: the window type plus the entropy that drives the random
/// instruction generator ("seeds … contain configurations for trigger
/// instructions and transient windows, as well as entropy for the random
/// instruction generator", §5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Seed {
    /// The transient-window category to trigger.
    pub window_type: WindowType,
    /// RNG entropy.
    pub entropy: u64,
    /// Mutation counter (bumped by each window-regeneration mutation).
    pub mutation: u64,
}

impl Seed {
    /// A fresh seed.
    pub fn new(window_type: WindowType, entropy: u64) -> Self {
        Seed {
            window_type,
            entropy,
            mutation: 0,
        }
    }

    /// A mutated copy: same trigger configuration, different window
    /// entropy (Phase 2's "mutate the seed to regenerate the window
    /// section").
    pub fn mutate(&self) -> Seed {
        Seed {
            window_type: self.window_type,
            entropy: self.entropy,
            mutation: self.mutation + 1,
        }
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.entropy ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn window_rng(&self) -> StdRng {
        StdRng::seed_from_u64(
            self.entropy
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(self.mutation.wrapping_mul(0xDEAD_BEEF_CAFE_F00D)),
        )
    }
}

/// The plan of a transient packet: all addresses Phase 1/2/3 need to build
/// and rebuild it (with a dummy, real, or sanitized window).
#[derive(Clone, Debug)]
pub struct TransientPlan {
    /// Window category.
    pub window_type: WindowType,
    /// Address of the trigger instruction.
    pub trigger_addr: u64,
    /// Address where the transient window body starts.
    pub window_addr: u64,
    /// Number of 4-byte window slots.
    pub window_slots: usize,
    /// Architectural exit (`ecall`) address.
    pub exit_addr: u64,
    /// Whether the secret-access block masks high address bits (the
    /// MDS/B1 attempt of §4.2.1).
    pub uses_mask: bool,
    /// Secret permission policy this plan needs.
    pub secret_policy: SecretPolicy,
}

/// What fills the transient window when the packet is built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowFill {
    /// Phase 1: `nop`s only.
    Dummy,
    /// Phase 2: the full secret-access + secret-encode body.
    Body(Vec<Instr>),
    /// Phase 3 sanitization: the body with the encode block nop'ed out.
    Sanitized(Vec<Instr>),
}

/// The generated window body, split into its two blocks so sanitization can
/// replace exactly the encode block (§4.3.1).
#[derive(Clone, Debug)]
pub struct WindowBody {
    /// The secret access block (fixed access + optional masking).
    pub access: Vec<Instr>,
    /// The secret encoding block (random secret-dependent gadgets).
    pub encode: Vec<Instr>,
}

impl WindowBody {
    /// Full body.
    pub fn full(&self) -> Vec<Instr> {
        let mut v = self.access.clone();
        v.extend(self.encode.iter().copied());
        v
    }

    /// Sanitized body: access block kept, encode block replaced by `nop`s
    /// ("DejaVuzz replaces the secret encoding block in the transient
    /// packet with nop instructions and re-runs the simulation").
    pub fn sanitized(&self) -> Vec<Instr> {
        let mut v = self.access.clone();
        v.extend(std::iter::repeat_n(Instr::NOP, self.encode.len()));
        v
    }
}

/// Generates the transient plan for a seed (Phase 1.1 trigger generation).
pub fn plan(seed: &Seed) -> TransientPlan {
    let mut rng = seed.rng();
    let l = DEFAULT_LAYOUT;
    let s = l.swappable;
    // Random trigger placement: the alignment nops this costs are exactly
    // the TO-vs-ETO gap of Table 3.
    let trigger_addr = s + 0x60 + 4 * rng.gen_range(0..32) as u64;
    let mut window_slots = rng.gen_range(8..16);
    // Scenario windows widen to the template's minimum *after* the draw,
    // so the RNG sequence matches the base families exactly.
    if let WindowType::Scenario(i) = seed.window_type {
        window_slots = window_slots.max(dejavuzz_scenarios::instance_min_slots(i));
    }
    let (window_addr, exit_addr) = match seed.window_type.base() {
        // Exception/disambiguation windows follow the trigger directly.
        WindowType::MemAccessFault
        | WindowType::MemPageFault
        | WindowType::MemMisalign
        | WindowType::IllegalInstr => {
            let w = trigger_addr + 4;
            (w, w + 4 * window_slots as u64)
        }
        WindowType::MemDisambiguation => {
            // The "trigger" is the bypassing load; the window follows it.
            let w = trigger_addr + 4;
            (w, w + 4 * window_slots as u64)
        }
        // Misprediction windows live at a separate (arbitrary!) address —
        // the capability swapMem buys (Figure 4).
        _ => {
            let w = trigger_addr + 8 + 4 * rng.gen_range(2..16) as u64;
            (
                w,
                w + 4 * (window_slots as u64 + 2) + 4 * rng.gen_range(0..8) as u64,
            )
        }
    };
    // Masking high address bits turns the access into an *access* fault
    // (the MDS/B1 bait), so only access-fault seeds roll for it.
    let uses_mask = seed.window_type == WindowType::MemAccessFault && rng.gen_bool(0.5);
    let secret_policy = match seed.window_type.base() {
        WindowType::MemPageFault => SecretPolicy::ProtectBeforeTransient,
        _ => SecretPolicy::AlwaysReadable,
    };
    TransientPlan {
        window_type: seed.window_type,
        trigger_addr,
        window_addr,
        window_slots,
        exit_addr,
        uses_mask,
        secret_policy,
    }
}

/// Builds the transient packet for a plan with the requested window fill.
pub fn build_transient(plan: &TransientPlan, fill: &WindowFill) -> SwapPacket {
    let l = DEFAULT_LAYOUT;
    let mut b = ProgramBuilder::new(l.swappable);
    b.label_at("secret", l.secret);
    b.label_at("leak", crate::gen::LEAK_BASE);
    b.label_at("slot", crate::gen::DISAMB_SLOT);
    b.label_at("dummy", crate::gen::DISAMB_DUMMY);
    b.la(Reg::T0, "secret");
    b.la(Reg::T2, "leak");
    if plan.uses_mask {
        // The secret-access mask: t0 |= 1 << 63 (illegal high bits; B1 bait).
        b.push(Instr::addi(Reg::T4, Reg::ZERO, 1));
        b.push(Instr::OpImm {
            op: AluOp::Sll,
            rd: Reg::T4,
            rs1: Reg::T4,
            imm: 63,
        });
        b.push(Instr::Op {
            op: AluOp::Or,
            rd: Reg::T0,
            rs1: Reg::T0,
            rs2: Reg::T4,
        });
    }
    match plan.window_type.base() {
        WindowType::MemAccessFault => {
            if !plan.uses_mask {
                // A plainly unmapped address.
                b.push(Instr::Lui {
                    rd: Reg::T0,
                    imm: 0x40000 << 12,
                });
            }
            b.pad_to(plan.trigger_addr);
            // The faulting access *is* the secret access when masked.
            b.push(Instr::Load {
                op: LoadOp::Lb,
                rd: Reg::S0,
                rs1: Reg::T0,
                offset: 0,
            });
        }
        WindowType::MemPageFault => {
            b.pad_to(plan.trigger_addr);
            b.push(Instr::Load {
                op: LoadOp::Lb,
                rd: Reg::S0,
                rs1: Reg::T0,
                offset: 0,
            });
        }
        WindowType::MemMisalign => {
            b.pad_to(plan.trigger_addr);
            b.push(Instr::Load {
                op: LoadOp::Lw,
                rd: Reg::T4,
                rs1: Reg::T0,
                offset: 1,
            });
        }
        WindowType::IllegalInstr => {
            b.pad_to(plan.trigger_addr);
            b.push(Instr::Illegal(0xFFFF_FFFF));
        }
        WindowType::MemDisambiguation => {
            b.la(Reg::A1, "slot");
            b.la(Reg::A2, "dummy");
            b.la(Reg::A3, "slot");
            // The store sits directly before the bypassing load so the
            // load issues while the (chained-div-delayed) store address is
            // still unresolved.
            b.pad_to(plan.trigger_addr - 24);
            b.push(Instr::addi(Reg::T5, Reg::ZERO, 0));
            b.push(Instr::addi(Reg::T6, Reg::ZERO, 1));
            b.push(Instr::Op {
                op: AluOp::Div,
                rd: Reg::T4,
                rs1: Reg::T5,
                rs2: Reg::T6,
            });
            b.push(Instr::Op {
                op: AluOp::Div,
                rd: Reg::T4,
                rs1: Reg::T4,
                rs2: Reg::T6,
            });
            b.push(Instr::Op {
                op: AluOp::Add,
                rd: Reg::A1,
                rs1: Reg::A1,
                rs2: Reg::T4,
            });
            b.push(Instr::sd(Reg::A2, Reg::A1, 0)); // late-resolving store
                                                    // The bypassing load reads the stale secret pointer.
            b.push(Instr::ld(Reg::T0, Reg::A3, 0));
        }
        WindowType::BranchMispredict => {
            // The chase sits directly before the branch so its latency is
            // not absorbed by the alignment pads.
            b.pad_to(plan.trigger_addr - 24);
            emit_slow_zero(&mut b);
            let off = plan.window_addr as i64 - plan.trigger_addr as i64;
            // Never-taken branch (a6 == 0), trained taken; the slow operand
            // keeps it unresolved while the window executes.
            b.push(Instr::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A6,
                rs2: Reg::ZERO,
                offset: off,
            });
            b.push(Instr::Ecall); // architectural exit (fall-through)
        }
        WindowType::IndirectMispredict => {
            b.label_at("exit", plan.exit_addr);
            b.la(Reg::A0, "exit");
            b.pad_to(plan.trigger_addr - 28);
            emit_slow_zero(&mut b);
            // a0 += a6 (= 0): the target is exit, but its readiness waits
            // on the pointer chase.
            b.push(Instr::Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A6,
            });
            b.push(Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::A0,
                offset: 0,
            });
        }
        WindowType::ReturnMispredict => {
            b.label_at("exit", plan.exit_addr);
            b.la(Reg::RA, "exit");
            b.pad_to(plan.trigger_addr - 28);
            emit_slow_zero(&mut b);
            b.push(Instr::Op {
                op: AluOp::Add,
                rd: Reg::RA,
                rs1: Reg::RA,
                rs2: Reg::A6,
            });
            b.push(Instr::ret());
        }
        WindowType::Scenario(_) => unreachable!("base() never returns Scenario"),
    }
    // Window body.
    b.pad_to(plan.window_addr);
    match fill {
        WindowFill::Dummy => {
            b.nops(plan.window_slots);
        }
        WindowFill::Body(body) | WindowFill::Sanitized(body) => {
            for &i in body.iter().take(plan.window_slots) {
                b.push(i);
            }
            if body.len() < plan.window_slots {
                b.nops(plan.window_slots - body.len());
            }
        }
    }
    b.push(Instr::Ecall);
    if plan.exit_addr >= b.here() {
        b.pad_to(plan.exit_addr);
        b.push(Instr::Ecall);
    }
    SwapPacket::new("transient", PacketKind::Transient, b.assemble())
}

/// Address of the leak array used by encode gadgets.
pub const LEAK_BASE: u64 = 0x8000;
/// Disambiguation pointer slot (initialised to `&secret`).
pub const DISAMB_SLOT: u64 = 0xE000;
/// Disambiguation replacement target.
pub const DISAMB_DUMMY: u64 = 0xE800;
/// Cold slot holding zero: the slow trigger operand (see
/// [`COND_PTR`]).
pub const COND_SLOT: u64 = 0xE100;
/// Pointer to [`COND_SLOT`]: mispredict triggers chase this pointer so
/// their resolution waits ~two cache misses, keeping the transient window
/// open across cold icache lines (the generator's ISA-simulator-computed
/// operand setup, §4.1.1).
pub const COND_PTR: u64 = 0xE200;

/// Data-region initialisation every generated stimulus needs.
pub fn data_init() -> Vec<(u64, Vec<u8>)> {
    vec![
        (DISAMB_SLOT, DEFAULT_LAYOUT.secret.to_le_bytes().to_vec()),
        (DISAMB_DUMMY, vec![0u8; 8]),
        (COND_SLOT, vec![0u8; 8]),
        (COND_PTR, COND_SLOT.to_le_bytes().to_vec()),
    ]
}

/// Emits the slow-zero prologue: `a6 = 0`, ready only after a cold
/// two-hop pointer chase plus a divide — ~50+ cycles, comfortably past any
/// single icache-miss stall of the window's first fetch.
fn emit_slow_zero(b: &mut ProgramBuilder) {
    b.label_at("cond_ptr", COND_PTR);
    b.la(Reg::A5, "cond_ptr");
    b.push(Instr::ld(Reg::A5, Reg::A5, 0));
    b.push(Instr::ld(Reg::A6, Reg::A5, 0));
    b.push(Instr::addi(Reg::A7, Reg::ZERO, 1));
    b.push(Instr::Op {
        op: AluOp::Div,
        rd: Reg::A6,
        rs1: Reg::A6,
        rs2: Reg::A7,
    });
}

/// Phase 1.1 training derivation: targeted trigger-training packets built
/// from the transient-execution information in the plan (§4.1.1), plus
/// `decoys` random (ineffective) training packets for the reduction pass to
/// discard.
pub fn derive_trainings(seed: &Seed, plan: &TransientPlan, decoys: usize) -> Vec<SwapPacket> {
    let mut rng = seed.rng();
    let l = DEFAULT_LAYOUT;
    let mut out = Vec::new();
    match plan.window_type.base() {
        WindowType::BranchMispredict => {
            // Train the shared-address branch in the *opposite* direction
            // of the transient outcome, with the control flow adjusted to
            // the window (always-taken beq to the window address).
            for _ in 0..2 {
                let mut b = ProgramBuilder::new(l.swappable);
                b.pad_to(plan.trigger_addr);
                let off = plan.window_addr as i64 - plan.trigger_addr as i64;
                b.push(Instr::Branch {
                    op: BranchOp::Beq,
                    rs1: Reg::A0,
                    rs2: Reg::A0,
                    offset: off,
                });
                b.pad_to(plan.window_addr);
                b.push(Instr::Ecall);
                out.push(SwapPacket::new(
                    format!("trigger_train_{}", out.len()),
                    PacketKind::TriggerTraining,
                    b.assemble(),
                ));
            }
        }
        WindowType::IndirectMispredict => {
            // Train the BTB entry of the trigger address to the window.
            let mut b = ProgramBuilder::new(l.swappable);
            b.label_at("window", plan.window_addr);
            b.la(Reg::A0, "window");
            b.pad_to(plan.trigger_addr);
            b.push(Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::A0,
                offset: 0,
            });
            b.pad_to(plan.window_addr);
            b.push(Instr::Ecall);
            out.push(SwapPacket::new(
                "trigger_train_0",
                PacketKind::TriggerTraining,
                b.assemble(),
            ));
        }
        WindowType::ReturnMispredict => {
            // "DejaVuzz adjusts the caller address … to ensure that the
            // return address matches the start address of the transient
            // window", then exits without returning.
            let mut b = ProgramBuilder::new(l.swappable);
            b.pad_to(plan.window_addr - 4);
            b.push(Instr::call(8));
            b.pad_to(plan.window_addr + 4);
            b.push(Instr::Ecall);
            out.push(SwapPacket::new(
                "trigger_train_0",
                PacketKind::TriggerTraining,
                b.assemble(),
            ));
        }
        _ => {}
    }
    for _ in 0..decoys {
        out.push(random_training_packet(
            &mut rng,
            out.len(),
            plan.trigger_addr,
        ));
    }
    out
}

/// DejaVuzz* training: purely random packets, unaligned and without
/// control-flow matching (§6.2's ablation variant).
pub fn random_trainings(seed: &Seed, count: usize) -> Vec<SwapPacket> {
    let mut rng = StdRng::seed_from_u64(seed.entropy.wrapping_add(0x5EED));
    (0..count)
        .map(|i| {
            let addr = DEFAULT_LAYOUT.swappable + 4 * rng.gen_range(0..64) as u64;
            random_training_packet(&mut rng, i, addr)
        })
        .collect()
}

fn random_training_packet(rng: &mut StdRng, index: usize, align_addr: u64) -> SwapPacket {
    let l = DEFAULT_LAYOUT;
    let mut b = ProgramBuilder::new(l.swappable);
    b.pad_to(align_addr);
    // One random (data-flow) training instruction, aligned to the trigger.
    let rd = Reg::from_index(rng.gen_range(5..32));
    let rs1 = Reg::from_index(rng.gen_range(0..32));
    let rs2 = Reg::from_index(rng.gen_range(0..32));
    let instr = match rng.gen_range(0..6) {
        0 => Instr::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        },
        1 => Instr::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        },
        2 => Instr::Op {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        },
        3 => Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm: rng.gen_range(-512..512),
        },
        // Random control transfers: occasionally they land at the right
        // address with the right shape and train something (the only way
        // DejaVuzz* ever opens a misprediction window).
        4 => Instr::Branch {
            op: if rng.gen_bool(0.5) {
                BranchOp::Beq
            } else {
                BranchOp::Bne
            },
            rs1: Reg::A0,
            rs2: Reg::A0,
            offset: 4 * rng.gen_range(1..24),
        },
        _ => Instr::call(4 * rng.gen_range(1..8)),
    };
    b.push(instr);
    b.push(Instr::Ecall);
    SwapPacket::new(
        format!("trigger_train_{index}"),
        PacketKind::TriggerTraining,
        b.assemble(),
    )
}

/// Phase 2.1 window completion: generates the secret access block and a
/// random secret-encoding block (§4.2.1).
pub fn complete_window(seed: &Seed, plan: &TransientPlan) -> WindowBody {
    let mut rng = seed.window_rng();
    let mut access = Vec::new();
    // The secret access: for fault-trigger windows the trigger *is* the
    // access (s0 already holds the secret); for the others, load it here.
    match plan.window_type {
        // Scenario instances supply their whole access block, drawn from
        // the trigger-configuration stream (stable across mutations, like
        // the base families' access op).
        WindowType::Scenario(i) => {
            let mut access_rng = seed.rng();
            access = dejavuzz_scenarios::instance_access_block(i, &mut access_rng);
        }
        WindowType::MemAccessFault | WindowType::MemPageFault => {}
        WindowType::MemDisambiguation => {
            // t0 was speculatively loaded with &secret by the trigger.
            access.push(Instr::Load {
                op: LoadOp::Lb,
                rd: Reg::S0,
                rs1: Reg::T0,
                offset: 0,
            });
        }
        _ => {
            // The access op is part of the trigger configuration (stable
            // across window mutations); only the encode block re-rolls.
            let mut access_rng = seed.rng();
            let op = [LoadOp::Lb, LoadOp::Lbu, LoadOp::Lh, LoadOp::Lw][access_rng.gen_range(0..4)];
            access.push(Instr::Load {
                op,
                rd: Reg::S0,
                rs1: Reg::T0,
                offset: 0,
            });
        }
    }
    // The secret encoding block: 2–4 random gadgets that propagate the
    // secret into distinct microarchitectural components.
    let mut encode = Vec::new();
    let gadgets = rng.gen_range(2..6);
    for _ in 0..gadgets {
        match rng.gen_range(0..6) {
            // Cache encode: touch a secret-indexed leak line.
            0 => {
                let sh = rng.gen_range(4..8);
                encode.push(Instr::OpImm {
                    op: AluOp::Sll,
                    rd: Reg::S1,
                    rs1: Reg::S0,
                    imm: sh,
                });
                encode.push(Instr::Op {
                    op: AluOp::Add,
                    rd: Reg::T1,
                    rs1: Reg::T2,
                    rs2: Reg::S1,
                });
                encode.push(Instr::ld(Reg::T3, Reg::T1, 0));
            }
            // Store encode: write to a secret-indexed slot.
            1 => {
                let sh = rng.gen_range(4..7);
                encode.push(Instr::OpImm {
                    op: AluOp::Sll,
                    rd: Reg::S1,
                    rs1: Reg::S0,
                    imm: sh,
                });
                encode.push(Instr::Op {
                    op: AluOp::Add,
                    rd: Reg::T1,
                    rs1: Reg::T2,
                    rs2: Reg::S1,
                });
                encode.push(Instr::Store {
                    op: StoreOp::Sb,
                    rs2: Reg::S0,
                    rs1: Reg::T1,
                    offset: 0,
                });
            }
            // Control encode: a secret-dependent branch (timing/refetch).
            2 => {
                let bit = 1 << rng.gen_range(0..3);
                encode.push(Instr::OpImm {
                    op: AluOp::And,
                    rd: Reg::S1,
                    rs1: Reg::S0,
                    imm: bit,
                });
                encode.push(Instr::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::S1,
                    rs2: Reg::ZERO,
                    offset: 8,
                });
                encode.push(Instr::NOP);
            }
            // FPU encode: secret-gated long divide (port contention).
            3 => {
                encode.push(Instr::FmvDX {
                    rd: Reg(1),
                    rs1: Reg::S0,
                });
                encode.push(Instr::Fp {
                    op: dejavuzz_isa::FpOp::FdivD,
                    rd: Reg(2),
                    rs1: Reg(1),
                    rs2: Reg(1),
                });
            }
            // Arithmetic propagation chain.
            4 => {
                encode.push(Instr::Op {
                    op: AluOp::Xor,
                    rd: Reg::S2,
                    rs1: Reg::S0,
                    rs2: Reg::T2,
                });
                encode.push(Instr::Op {
                    op: AluOp::Mul,
                    rd: Reg::S3,
                    rs1: Reg::S2,
                    rs2: Reg::S0,
                });
            }
            // TLB encode: touch a secret-indexed page.
            _ => {
                encode.push(Instr::OpImm {
                    op: AluOp::Sll,
                    rd: Reg::S1,
                    rs1: Reg::S0,
                    imm: 9,
                });
                encode.push(Instr::Op {
                    op: AluOp::Add,
                    rd: Reg::T1,
                    rs1: Reg::T2,
                    rs2: Reg::S1,
                });
                encode.push(Instr::Load {
                    op: LoadOp::Lb,
                    rd: Reg::T3,
                    rs1: Reg::T1,
                    offset: 0,
                });
            }
        }
    }
    // Scenario mutation bias: template-chosen encode-side instructions,
    // redrawn per mutation like the gadgets above.
    if let WindowType::Scenario(i) = plan.window_type {
        encode.extend(dejavuzz_scenarios::instance_encode_bias(i, &mut rng));
    }
    WindowBody { access, encode }
}

/// Phase 2.1 window training derivation: a warm-up packet that loads the
/// (still readable) secret so the window's access block hits warm state
/// ("DejaVuzz attempts to warm up sensitive data into the processor's
/// internal buffers in advance, such as data cache and load buffer").
pub fn derive_window_training(plan: &TransientPlan) -> Option<SwapPacket> {
    let l = DEFAULT_LAYOUT;
    match plan.window_type {
        // Faults on masked/unmapped addresses warm nothing useful.
        WindowType::MemAccessFault if plan.uses_mask => None,
        _ => {
            let mut b = ProgramBuilder::new(l.swappable);
            b.label_at("secret", l.secret);
            b.la(Reg::T0, "secret");
            b.push(Instr::ld(Reg::S1, Reg::T0, 0));
            b.push(Instr::Ecall);
            Some(SwapPacket::new(
                "window_train_warm",
                PacketKind::WindowTraining,
                b.assemble(),
            ))
        }
    }
}

/// Training-overhead accounting for a set of training packets: `(TO, ETO)`
/// — TO counts every emitted slot, ETO excludes the alignment `nop`s
/// (Table 3).
pub fn training_overhead(packets: &[SwapPacket]) -> (usize, usize) {
    let mut to = 0;
    let mut eto = 0;
    for p in packets {
        if p.kind != PacketKind::TriggerTraining {
            continue;
        }
        for &w in &p.program.words {
            to += 1;
            if dejavuzz_isa::decode(w) != Instr::NOP {
                eto += 1;
            }
        }
    }
    (to, eto)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(w: WindowType, e: u64) -> Seed {
        Seed::new(w, e)
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let s = seed(WindowType::BranchMispredict, 7);
        let p1 = plan(&s);
        let p2 = plan(&s);
        assert_eq!(p1.trigger_addr, p2.trigger_addr);
        assert_eq!(p1.window_addr, p2.window_addr);
    }

    #[test]
    fn mispredict_windows_are_disjoint_from_trigger() {
        for e in 0..20 {
            let p = plan(&seed(WindowType::BranchMispredict, e));
            assert!(p.window_addr > p.trigger_addr + 4);
            assert!(p.exit_addr > p.window_addr + 4 * p.window_slots as u64);
        }
    }

    #[test]
    fn exception_windows_follow_trigger() {
        let p = plan(&seed(WindowType::IllegalInstr, 3));
        assert_eq!(p.window_addr, p.trigger_addr + 4);
    }

    #[test]
    fn page_fault_plans_protect_the_secret() {
        let p = plan(&seed(WindowType::MemPageFault, 3));
        assert_eq!(p.secret_policy, SecretPolicy::ProtectBeforeTransient);
        let p2 = plan(&seed(WindowType::BranchMispredict, 3));
        assert_eq!(p2.secret_policy, SecretPolicy::AlwaysReadable);
    }

    #[test]
    fn build_transient_with_all_fills() {
        for wt in WindowType::ALL {
            let s = seed(wt, 11);
            let p = plan(&s);
            let body = complete_window(&s, &p);
            for fill in [
                WindowFill::Dummy,
                WindowFill::Body(body.full()),
                WindowFill::Sanitized(body.sanitized()),
            ] {
                let pkt = build_transient(&p, &fill);
                assert!(!pkt.program.words.is_empty(), "{wt:?} builds");
                assert!(pkt.program.base >= DEFAULT_LAYOUT.swappable);
            }
        }
    }

    #[test]
    fn sanitized_body_keeps_access_nops_encode() {
        let s = seed(WindowType::BranchMispredict, 5);
        let p = plan(&s);
        let body = complete_window(&s, &p);
        let sanitized = body.sanitized();
        assert_eq!(sanitized.len(), body.full().len());
        assert_eq!(&sanitized[..body.access.len()], &body.access[..]);
        assert!(sanitized[body.access.len()..]
            .iter()
            .all(|&i| i == Instr::NOP));
    }

    #[test]
    fn derived_branch_training_aligns_with_trigger() {
        let s = seed(WindowType::BranchMispredict, 9);
        let p = plan(&s);
        let trainings = derive_trainings(&s, &p, 2);
        assert!(trainings.len() >= 3, "2 targeted + 2 decoys");
        // The first targeted packet has its branch exactly at trigger_addr.
        let words = &trainings[0].program.words;
        let idx = ((p.trigger_addr - trainings[0].program.base) / 4) as usize;
        match dejavuzz_isa::decode(words[idx]) {
            Instr::Branch {
                op: BranchOp::Beq,
                offset,
                ..
            } => {
                assert_eq!(
                    offset,
                    p.window_addr as i64 - p.trigger_addr as i64,
                    "control flow adjusted to the window"
                );
            }
            other => panic!("expected aligned beq, got {other}"),
        }
    }

    #[test]
    fn derived_return_training_pushes_window_address() {
        let s = seed(WindowType::ReturnMispredict, 13);
        let p = plan(&s);
        let trainings = derive_trainings(&s, &p, 0);
        assert_eq!(trainings.len(), 1);
        let words = &trainings[0].program.words;
        let call_idx = ((p.window_addr - 4 - trainings[0].program.base) / 4) as usize;
        assert!(
            matches!(
                dejavuzz_isa::decode(words[call_idx]),
                Instr::Jal { rd: Reg::RA, .. }
            ),
            "caller adjusted so ra == window start"
        );
    }

    #[test]
    fn random_trainings_do_not_align() {
        let s = seed(WindowType::IndirectMispredict, 21);
        let ts = random_trainings(&s, 5);
        assert_eq!(ts.len(), 5);
    }

    #[test]
    fn training_overhead_counts_nops_in_to_only() {
        let s = seed(WindowType::BranchMispredict, 9);
        let p = plan(&s);
        let trainings = derive_trainings(&s, &p, 0);
        let (to, eto) = training_overhead(&trainings);
        assert!(to > eto, "alignment nops count toward TO only");
        assert!(eto >= 2, "the branch + ecall are effective instructions");
    }

    #[test]
    fn window_body_variety_across_mutations() {
        let s = seed(WindowType::BranchMispredict, 2);
        let p = plan(&s);
        let b0 = complete_window(&s, &p);
        let b1 = complete_window(&s.mutate(), &p);
        // Mutation regenerates the window section.
        assert_ne!(b0.encode, b1.encode);
        assert_eq!(b0.access, b1.access, "the access block is fixed per plan");
    }

    #[test]
    fn warm_training_skipped_for_masked_faults() {
        let mut found_none = false;
        let mut found_some = false;
        for e in 0..40 {
            let s = seed(WindowType::MemAccessFault, e);
            let p = plan(&s);
            match derive_window_training(&p) {
                None => found_none = true,
                Some(pkt) => {
                    assert_eq!(pkt.kind, PacketKind::WindowTraining);
                    found_some = true;
                }
            }
        }
        assert!(found_none && found_some, "mask flag varies across seeds");
    }
}
