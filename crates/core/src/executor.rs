//! The shared-corpus pipeline executor: a channel-based worker pool
//! replacing the old thread-per-campaign manager (§5's "multiple RTL
//! simulation instances in parallel").
//!
//! # Architecture
//!
//! An [`Orchestrator`] owns the [`Corpus`], the scheduling RNG, the
//! running-average mutation-gain threshold and the exact global coverage;
//! `Worker` threads own the simulators. Work flows in *rounds*, and how
//! a round's slots are partitioned and claimed is pluggable — see the
//! [`crate::scheduler`] module for the [`crate::scheduler::Scheduler`]
//! trait (fixed round-robin batches vs. deterministic work stealing) and
//! the [`crate::scheduler::SeedPolicy`] trait (energy decay vs.
//! favoured-quota corpus picks). Under the default round-robin scheduler:
//!
//! 1. The orchestrator plans a batch of iteration slots per worker,
//!    consulting the seed policy (energy-weighted retained seeds vs.
//!    fresh exploration) for each slot, and ships each worker its batch
//!    together with the current gain threshold and the coverage points
//!    discovered globally since the worker's last batch. (Under the
//!    work-stealing scheduler the whole round is instead pre-drawn into
//!    one shared claim queue — slots become mutually independent, idle
//!    workers claim the next slot instead of waiting behind a slow
//!    sibling, and commit order still makes the campaign deterministic.)
//! 2. Each worker folds the broadcast delta into its local *view* of the
//!    global coverage, then runs the three-phase pipeline for its slots.
//!    Every observation fans out through [`RecordingCoverage`]: into the
//!    worker's private `observed` matrix (for the exactness invariant)
//!    and — when fresh against the view — into the outcome's recorded
//!    delta and the live [`SharedCoverage`] union (concurrent,
//!    lock-striped, exact). Mutation-gain feedback reads only the view,
//!    so worker decisions never race on shared state. The *canonical*
//!    union is the orchestrator's deterministic replay below; the shared
//!    union is the live, lock-free-readable view of the same set (progress
//!    monitoring, future work-stealing donors) and a runtime cross-check
//!    that the two accounting paths agree.
//! 3. Workers flush one batched result message per round — outcomes plus
//!    their post-round RNG stream position and observed-matrix delta, so
//!    the orchestrator mirrors every worker's full stream state. The
//!    orchestrator folds outcomes back in global slot order: stats, the
//!    per-iteration exact coverage curve, bug dedup, gain-threshold
//!    samples and corpus retention all replay deterministically.
//!
//! The consequence is the property the old end-of-run merge could not
//! offer: a campaign is **deterministic for a fixed worker count**
//! (thread timing only changes who commits a shared point first, which
//! nothing reads back), and its final coverage is the **exact union** of
//! what the workers observed — never the pointwise sum the old
//! `CampaignStats::merge` approximated.
//!
//! # Configuration
//!
//! An [`Orchestrator`] is built exclusively by
//! [`crate::builder::CampaignBuilder`], which validates the whole
//! configuration up front (one structured
//! [`crate::builder::BuildError`], no scattered panics) and resolves any
//! extension-registry ids into captured constructors. The orchestrator
//! itself only *runs* campaigns: [`Orchestrator::run`],
//! [`Orchestrator::run_snapshotting`], and
//! [`Orchestrator::run_observed`] — the latter streaming the typed
//! [`crate::observer::CampaignObserver`] events from the deterministic
//! commit points described above.
//!
//! # Checkpointing and resume
//!
//! Because the orchestrator mirrors every piece of worker state, the
//! campaign serialises at any round boundary into a
//! [`CampaignSnapshot`]: corpus, global coverage, gain threshold,
//! scheduler RNG position and per-worker `(RNG position, iteration
//! count, observed matrix)`. At a round boundary each worker's coverage
//! view coincides with the global union (the round-start delta broadcast
//! converges them), so restoring `view = global` is exact, and a run
//! resumed via [`crate::builder::CampaignBuilder::resume`] replays the
//! remaining rounds **bit-identically** to one that never stopped — same
//! curve, same bugs, same corpus, same per-worker accounting (asserted
//! by `tests/persist.rs` and the CI resume smoke).
//! [`crate::builder::CampaignBuilder::snapshot_every`] +
//! [`crate::builder::CampaignBuilder::snapshot_path`] write periodic
//! atomic checkpoints;
//! [`crate::builder::CampaignBuilder::halt_after`] stops gracefully at
//! the next round boundary, emulating a planned interruption.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejavuzz_ift::{
    CoverageLog, CoverageMatrix, CoveragePoint, CoverageView, IftMode, OverlayCoverage,
    RecordingCoverage, SharedCoverage,
};

use crate::backend::{BackendSpec, SimBackend};
use crate::builder::CampaignBuilder;
use crate::campaign::{CampaignStats, FuzzerOptions};
use crate::corpus::{Corpus, CorpusEntry};
use crate::gen::{Seed, WindowType};
use crate::gossip::{GossipFrame, SharedGossipLink, FAVOURED_PER_FRAME};
use crate::observer::{
    BugFound, CampaignFinished, CampaignObserver, CoverageGained, PeerDeltaImported, RoundStarted,
    SeedImported, SlotCommitted, SnapshotWritten,
};
use crate::phases::{phase1, phase2, phase3};
use crate::registry::{BackendCtor, PolicyCtor, SchedulerCtor};
use crate::scheduler::{
    PlanCtx, PlannedSlot, PolicySpec, PolicyState, RoundPlan, Scheduler, SchedulerSpec, SeedPolicy,
    SlotFeedback,
};
use crate::snapshot::{CampaignSnapshot, PendingRound, WorkerState};

/// Iteration slots shipped to a worker per round. Large enough to
/// amortise the channel round-trip, small enough that corpus feedback and
/// the gain threshold stay fresh.
pub const DEFAULT_BATCH: usize = 4;

/// The running-average mutation-gain threshold of §4.2.2, shared across
/// all workers of a pool.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct GainAverage {
    pub avg: f64,
    pub samples: usize,
}

impl GainAverage {
    /// Folds one sample into the running average.
    pub fn push(&mut self, gain: f64) {
        self.samples += 1;
        self.avg += (gain - self.avg) / self.samples as f64;
    }
}

/// Everything one pipeline iteration produced, flushed to the
/// orchestrator in per-round batches.
#[derive(Clone, Debug)]
pub(crate) struct IterationOutcome {
    /// Global iteration index.
    pub slot: usize,
    /// Logical worker stream this slot is accounted to (the physical
    /// worker under [`crate::scheduler::RoundRobin`]; the planned stream
    /// under [`crate::scheduler::WorkStealing`], independent of which
    /// thread claimed the slot).
    pub stream: usize,
    /// Wall-clock the iteration took, for scheduling models and
    /// throughput reporting only — never fed back into decisions.
    pub elapsed_nanos: u64,
    /// Wall-clock spent building this slot's coverage view (the overlay
    /// construction in steal mode; zero for batch rounds, whose workers
    /// reuse their long-lived view). Reporting only, like `elapsed_nanos`.
    pub view_setup_nanos: u64,
    /// The executed seed (after fresh generation and window mutations).
    pub seed: Seed,
    pub window_type: WindowType,
    pub triggered: bool,
    pub to: usize,
    pub eto: usize,
    pub sim_runs: usize,
    pub sim_cycles: u64,
    /// Per-mutation-attempt coverage gains, in execution order (the
    /// orchestrator replays these into the global threshold).
    pub gains: Vec<f64>,
    /// Coverage gain of the selected attempt (corpus retention energy).
    pub final_gain: usize,
    /// Points fresh against the worker's view, in observation order.
    pub fresh_points: Vec<CoveragePoint>,
    /// Points fresh against the worker's lifetime `observed` matrix: the
    /// delta the orchestrator replays into its per-worker mirror (which
    /// is what snapshots persist).
    pub observed_fresh: Vec<CoveragePoint>,
    pub bugs: Vec<crate::report::BugReport>,
    /// A backend failure that aborted this iteration
    /// ([`crate::backend::BackendError`], stringified for the channel).
    /// The iteration still counts; the campaign keeps running.
    pub error: Option<String>,
}

/// Models one round's wall-clock on `workers` dedicated cores from the
/// measured per-slot costs: fixed per-stream chunks for round robin (the
/// round ends when the slowest chunk does), greedy claim-order list
/// scheduling for work stealing (each slot goes to the earliest-free
/// core). Purely a reporting model — scheduling decisions never read it.
fn round_makespan(outcomes: &[IterationOutcome], workers: usize, stealing: bool) -> u64 {
    let mut clocks = vec![0u64; workers];
    for o in outcomes {
        let core = if stealing {
            // Greedy: the earliest-free core claims the next slot.
            (0..workers)
                .min_by_key(|&w| clocks[w])
                .expect("workers >= 1")
        } else {
            o.stream
        };
        clocks[core] += o.elapsed_nanos;
    }
    clocks.into_iter().max().unwrap_or(0)
}

/// Models the pipelined run's wall-clock on `workers` dedicated cores:
/// per-core clocks persist across rounds (no barrier), and a round's slots
/// are gated only on the modelled finish of the round two behind it (when
/// its dispatch happened). Compare [`round_makespan`], which resets the
/// clocks — i.e. barriers — every round.
///
/// Two invariants the scheduling-model tests rely on carry over: every
/// greedy start time is bounded by the current maximum clock (the gate is
/// itself an earlier clock value), so the makespan never exceeds the
/// serial sum of costs; and `workers x makespan >= busy` since each core's
/// clock bounds its own work.
fn pipelined_makespan(round_costs: &[Vec<u64>], workers: usize) -> u64 {
    let mut clocks = vec![0u64; workers];
    let mut finishes: Vec<u64> = Vec::with_capacity(round_costs.len());
    for (k, costs) in round_costs.iter().enumerate() {
        // Round k was dispatched the moment round k-2 fully committed
        // (the first two rounds are dispatched at start of run).
        let gate = if k >= 2 { finishes[k - 2] } else { 0 };
        let mut round_finish = 0u64;
        for &cost in costs {
            let core = (0..workers)
                .min_by_key(|&w| clocks[w])
                .expect("workers >= 1");
            clocks[core] = clocks[core].max(gate) + cost;
            round_finish = round_finish.max(clocks[core]);
        }
        finishes.push(round_finish);
    }
    clocks.into_iter().max().unwrap_or(0)
}

/// One three-phase pipeline iteration. Shared by [`Worker`] and the
/// single-worker [`crate::Campaign`] façade. Dyn-dispatched on the
/// backend: one virtual call per *simulation*, noise against the
/// simulation itself (measured by the `backends` Criterion group).
#[allow(clippy::too_many_arguments)] // the iteration's full context, spelled out
pub(crate) fn run_iteration<V: CoverageView>(
    backend: &mut dyn SimBackend,
    opts: &FuzzerOptions,
    slot: usize,
    scheduled: Option<&Seed>,
    scenarios: &[u16],
    rng: &mut StdRng,
    view: &mut V,
    mut observed: Option<&mut CoverageMatrix>,
    shared: Option<&SharedCoverage>,
    gain: &mut GainAverage,
) -> IterationOutcome {
    // A scheduled seed is borrowed for as long as it stays unmutated, so
    // the per-slot clone that used to sit in this hot path is gone: the
    // outcome takes ownership exactly once, at whichever return point it
    // leaves through.
    let mut seed: Cow<'_, Seed> = match scheduled {
        Some(s) => Cow::Borrowed(s),
        None => {
            let window_type = crate::gen::draw_window_type(rng, scenarios);
            Cow::Owned(Seed::new(window_type, rng.gen()))
        }
    };
    let mut out = IterationOutcome {
        slot,
        stream: 0,
        elapsed_nanos: 0,
        view_setup_nanos: 0,
        // Placeholder until a return point takes ownership of the real
        // seed (the corpus policy reads it back from every outcome).
        seed: Seed::new(seed.window_type, 0),
        window_type: seed.window_type,
        triggered: false,
        to: 0,
        eto: 0,
        sim_runs: 0,
        sim_cycles: 0,
        gains: Vec::new(),
        final_gain: 0,
        fresh_points: Vec::new(),
        observed_fresh: Vec::new(),
        bugs: Vec::new(),
        error: None,
    };

    let p1 = match phase1(backend, &seed, &opts.phases) {
        Ok(p1) => p1,
        Err(e) => {
            out.error = Some(e.to_string());
            out.seed = seed.into_owned();
            return out;
        }
    };
    out.sim_runs += p1.sim_runs;
    if !p1.triggered {
        out.seed = seed.into_owned();
        return out;
    }
    out.triggered = true;
    out.to = p1.to;
    out.eto = p1.eto;

    // Phase 2 with coverage feedback: mutate the window section while the
    // gain stays below the shared running average.
    let track_observed = observed.is_some();
    let mut best = None;
    for attempt in 0..=opts.mutation_attempts {
        let mut sink = RecordingCoverage {
            view: &mut *view,
            recorded: &mut out.fresh_points,
            observed: observed.as_deref_mut(),
            observed_recorded: track_observed.then_some(&mut out.observed_fresh),
            shared,
        };
        let p2 = match phase2(backend, &seed, &p1, &mut sink, &opts.phases) {
            Ok(p2) => p2,
            Err(e) => {
                out.error = Some(e.to_string());
                out.seed = seed.into_owned();
                return out;
            }
        };
        out.sim_runs += 1;
        out.sim_cycles += p2.run.total_cycles.0;
        let g = p2.coverage_gain as f64;
        let below_avg = g < gain.avg;
        let propagated = p2.taints_increased;
        gain.push(g);
        out.gains.push(g);
        out.final_gain = p2.coverage_gain;
        best = Some(p2);
        if !opts.coverage_feedback {
            break; // DejaVuzz⁻ takes whatever the first roll produced
        }
        if propagated && !below_avg {
            break;
        }
        if attempt < opts.mutation_attempts {
            seed = Cow::Owned(seed.mutate());
        }
    }
    let p2 = best.expect("at least one phase-2 attempt ran");
    out.seed = seed.into_owned();

    // Phase 3 only for cases that accessed and propagated the secret.
    if p2.taints_increased || opts.phases.mode == IftMode::Base {
        match phase3(backend, &p1, &p2, slot, &opts.phases) {
            Ok(p3) => {
                out.sim_runs += 1;
                out.bugs = p3.leaks;
            }
            Err(e) => out.error = Some(e.to_string()),
        }
    }
    out
}

/// Folds an outcome's counters into campaign stats (curve, bugs, gain and
/// corpus handling stay with the caller, which knows the global ordering).
pub(crate) fn fold_outcome(stats: &mut CampaignStats, o: &IterationOutcome) {
    stats.iterations += 1;
    stats.sim_runs += o.sim_runs;
    stats.sim_cycles += o.sim_cycles;
    if o.error.is_some() {
        stats.failed_runs += 1;
    }
    let e = stats.windows.entry(o.window_type).or_default();
    e.attempted += 1;
    if o.triggered {
        e.triggered += 1;
        e.to_sum += o.to;
        e.eto_sum += o.eto;
    }
    for b in &o.bugs {
        if stats.first_bug_iteration.is_none() {
            stats.first_bug_iteration = Some(o.slot);
        }
        if !stats.bugs.iter().any(|x| x.dedup_key() == b.dedup_key()) {
            stats.bugs.push(b.clone());
        }
    }
}

/// Commits one outcome into the session, in global slot order: threshold,
/// corpus, curve, worker mirrors and observer events all update
/// deterministically regardless of arrival or claim order. Shared by the
/// barriered and pipelined orchestrator loops — the commit semantics are
/// identical, only the moment of commit differs.
#[allow(clippy::too_many_arguments)] // the commit's full context, spelled out
fn commit_outcome(
    s: &mut Session,
    busy_nanos: &mut u64,
    view_setup_nanos: &mut u64,
    feedback: bool,
    o: IterationOutcome,
    observers: &mut [Box<dyn CampaignObserver>],
) {
    *busy_nanos += o.elapsed_nanos;
    *view_setup_nanos += o.view_setup_nanos;
    // Telemetry re-uses the durations the report already measured — no
    // clock reads on the commit path, and the instruments are write-only
    // from the campaign's perspective (the off-commit-path contract).
    let metrics = crate::metrics::handles();
    metrics.slot_run_nanos.observe(o.elapsed_nanos);
    if o.view_setup_nanos > 0 {
        metrics.view_setup_nanos.observe(o.view_setup_nanos);
    }
    metrics.iterations_total.inc();
    metrics.sim_runs_total.add(o.sim_runs as u64);
    if matches!(o.window_type, WindowType::Scenario(_)) {
        metrics.scenario_slots_total.inc();
    }
    s.worker_iterations[o.stream] += 1;
    for p in &o.observed_fresh {
        s.worker_observed[o.stream].insert(*p);
    }
    let bugs_before = s.stats.bugs.len();
    fold_outcome(&mut s.stats, &o);
    for g in &o.gains {
        s.gain.push(*g);
    }
    let mut global_fresh = Vec::new();
    for p in &o.fresh_points {
        // The log behind `global` doubles as the broadcast/gossip delta
        // source: every globally fresh point lands there in commit order.
        if s.global.insert(*p) {
            global_fresh.push(*p);
        }
    }
    s.stats.coverage_curve.push(s.global.points());
    metrics.coverage_points.set(s.global.points() as u64);
    if feedback {
        s.policy.record(
            &mut s.corpus,
            &SlotFeedback {
                seed: &o.seed,
                window_type: o.window_type,
                gain: o.final_gain,
                global_fresh: &global_fresh,
                cost: o.to as u64,
            },
        );
    }
    if !observers.is_empty() {
        let total_points = s.global.points();
        let slot_ev = SlotCommitted {
            slot: o.slot,
            stream: o.stream,
            window_type: o.window_type,
            triggered: o.triggered,
            to: o.to,
            eto: o.eto,
            sim_runs: o.sim_runs,
            final_gain: o.final_gain,
            fresh_points: global_fresh.len(),
            total_points,
            error: o.error.clone(),
        };
        for obs in observers.iter_mut() {
            obs.slot_committed(&slot_ev);
        }
        if !global_fresh.is_empty() {
            let cov_ev = CoverageGained {
                slot: o.slot,
                points: &global_fresh,
                total_points,
            };
            for obs in observers.iter_mut() {
                obs.coverage_gained(&cov_ev);
            }
        }
        for bug in &s.stats.bugs[bugs_before..] {
            let bug_ev = BugFound {
                slot: o.slot,
                bug: bug.clone(),
            };
            for obs in observers.iter_mut() {
                obs.bug_found(&bug_ev);
            }
        }
    }
}

/// A round's worth of fixed-batch work for one worker
/// ([`crate::scheduler::RoundPlan::Batches`]).
struct WorkBatch {
    items: Vec<crate::scheduler::WorkItem>,
    /// Round-start global gain threshold.
    avg: f64,
    samples: usize,
    /// Globally fresh points discovered since this worker's last batch.
    delta: Vec<CoveragePoint>,
}

/// The shared claim queue of a work-stealing round: pre-drawn slots,
/// claimed in index order by whichever worker is idle.
struct StealQueue {
    slots: Vec<PlannedSlot>,
    next: AtomicUsize,
}

/// A work-stealing round as shipped to every worker
/// ([`crate::scheduler::RoundPlan::Queue`]).
struct StealRound {
    queue: Arc<StealQueue>,
    /// Round-start global gain threshold (per-slot frozen).
    avg: f64,
    samples: usize,
    /// Globally fresh points discovered since this worker's last round.
    delta: Vec<CoveragePoint>,
    /// Pipelined dispatch: ship each outcome the moment it finishes (one
    /// [`RoundReply`] per slot) instead of batching the round's results,
    /// so the orchestrator can commit a contiguous prefix and pre-draw
    /// the next round while stragglers are still running.
    streamed: bool,
}

enum ToWorker {
    Batch(WorkBatch),
    Steal(StealRound),
    Stop,
}

/// One round's results from one worker: the outcomes plus the stream
/// state the orchestrator mirrors for snapshots.
struct RoundReply {
    worker: usize,
    outcomes: Vec<IterationOutcome>,
    /// The worker's RNG position after finishing the round. `None` for
    /// work-stealing rounds, where workers never draw (the orchestrator's
    /// plan-time mirrors are authoritative).
    rng: Option<[u64; 4]>,
}

/// A worker's end-of-run accounting.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Worker index within the pool.
    pub worker: usize,
    /// Iterations this worker executed (including, on resumed runs, the
    /// iterations it executed before the snapshot).
    pub iterations: usize,
    /// Every coverage point this worker itself observed (the union of
    /// these matrices across workers is exactly the pool's final
    /// coverage — asserted by the pipeline tests).
    pub observed: CoverageMatrix,
}

/// A pipeline worker: owns its simulator backend, its RNG stream and its
/// deterministic view of the global coverage.
struct Worker {
    id: usize,
    backend: Box<dyn SimBackend>,
    opts: FuzzerOptions,
    rng: StdRng,
    view: CoverageMatrix,
    observed: CoverageMatrix,
    shared: Arc<SharedCoverage>,
    /// Active scenario-instance indices for fresh-seed draws (sorted by
    /// canonical spec; empty without `--scenarios`).
    scenarios: Vec<u16>,
}

impl Worker {
    fn run(mut self, rx: mpsc::Receiver<ToWorker>, tx: mpsc::Sender<RoundReply>) {
        while let Ok(msg) = rx.recv() {
            let reply = match msg {
                ToWorker::Stop => return,
                ToWorker::Batch(b) => Some(self.run_batch(b)),
                // Streamed steal rounds send per-slot replies themselves.
                ToWorker::Steal(r) => self.run_steal(r, &tx),
            };
            if let Some(reply) = reply {
                if tx.send(reply).is_err() {
                    return; // orchestrator went away
                }
            }
        }
    }

    /// One fixed-batch round: the classic chained protocol — this
    /// worker's RNG stream, its long-lived coverage view and its in-round
    /// gain samples thread through the batch's slots in order.
    fn run_batch(&mut self, batch: WorkBatch) -> RoundReply {
        for p in &batch.delta {
            self.view.insert(*p);
        }
        // The worker's threshold starts from the global round-start
        // average and folds in its own in-round samples; the
        // orchestrator recomputes the exact global sequence afterwards.
        let mut gain = GainAverage {
            avg: batch.avg,
            samples: batch.samples,
        };
        let mut outcomes = Vec::with_capacity(batch.items.len());
        for item in batch.items {
            let start = Instant::now();
            let mut out = run_iteration(
                self.backend.as_mut(),
                &self.opts,
                item.slot,
                item.scheduled.as_ref(),
                &self.scenarios,
                &mut self.rng,
                &mut self.view,
                Some(&mut self.observed),
                Some(&self.shared),
                &mut gain,
            );
            out.stream = self.id;
            out.elapsed_nanos = start.elapsed().as_nanos() as u64;
            outcomes.push(out);
        }
        RoundReply {
            worker: self.id,
            outcomes,
            rng: Some(self.rng.state()),
        }
    }

    /// One work-stealing round: claim pre-drawn slots from the shared
    /// queue until it drains. Every slot runs against a private view of
    /// the round-start state and a per-slot gain threshold, so its
    /// outcome is independent of what any concurrent slot — on this
    /// worker or another — is doing (see the `scheduler` module docs for
    /// the determinism argument).
    ///
    /// The per-slot view used to be a full `CoverageMatrix` clone — an
    /// O(coverage-space) setup cost per slot. The round-start view is now
    /// frozen once into an `Arc` base and each slot gets an
    /// [`OverlayCoverage`] over it, costing O(points that slot finds).
    /// The freeze is free: `mem::take` out, `Arc::try_unwrap` back in
    /// (no slot view outlives the loop).
    ///
    /// When `round.streamed` each outcome is sent on `tx` as its own
    /// single-slot [`RoundReply`] and the return is `None`; otherwise the
    /// classic one-reply-per-round barrier protocol applies.
    fn run_steal(
        &mut self,
        round: StealRound,
        tx: &mpsc::Sender<RoundReply>,
    ) -> Option<RoundReply> {
        for p in &round.delta {
            self.view.insert(*p);
        }
        let base = Arc::new(std::mem::take(&mut self.view));
        let mut outcomes = Vec::new();
        loop {
            let claim = round.queue.next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = round.queue.slots.get(claim) else {
                break;
            };
            let setup = Instant::now();
            let mut slot_view = OverlayCoverage::new(Arc::clone(&base));
            let view_setup_nanos = setup.elapsed().as_nanos() as u64;
            // A fresh per-slot observed matrix: `observed_fresh` then
            // carries the slot's full distinct point set, which the
            // orchestrator replays into the *logical* stream's mirror
            // (physical claim attribution is timing-dependent and must
            // not leak into any persisted or reported state).
            let mut slot_observed = CoverageMatrix::new();
            let mut gain = GainAverage {
                avg: round.avg,
                samples: round.samples,
            };
            let start = Instant::now();
            let mut out = run_iteration(
                self.backend.as_mut(),
                &self.opts,
                item.slot,
                Some(&item.seed),
                &self.scenarios,
                &mut self.rng, // never drawn from: the seed is pre-drawn
                &mut slot_view,
                Some(&mut slot_observed),
                Some(&self.shared),
                &mut gain,
            );
            out.stream = item.stream;
            out.elapsed_nanos = start.elapsed().as_nanos() as u64;
            out.view_setup_nanos = view_setup_nanos;
            if round.streamed {
                if tx
                    .send(RoundReply {
                        worker: self.id,
                        outcomes: vec![out],
                        rng: None,
                    })
                    .is_err()
                {
                    break; // orchestrator went away; stop claiming
                }
            } else {
                outcomes.push(out);
            }
        }
        self.view = Arc::try_unwrap(base).unwrap_or_else(|a| (*a).clone());
        if round.streamed {
            return None;
        }
        Some(RoundReply {
            worker: self.id,
            outcomes,
            rng: None,
        })
    }
}

/// Results of a pool run.
#[derive(Clone, Debug)]
pub struct ExecutorReport {
    /// Merged campaign stats with the *exact* global coverage curve.
    pub stats: CampaignStats,
    /// The final global coverage (union of all observations).
    pub coverage: CoverageMatrix,
    /// Final point count of the concurrent [`SharedCoverage`] — always
    /// equal to `coverage.points()`; reported separately so tests can
    /// assert the two accounting paths agree.
    pub shared_points: usize,
    /// Per-worker accounting.
    pub workers: Vec<WorkerSummary>,
    /// Seeds the corpus retained over the run.
    pub corpus_retained: usize,
    /// Seeds the corpus evicted for capacity.
    pub corpus_evicted: usize,
    /// Sum of per-iteration wall-clock across all workers (the run's
    /// total simulation work).
    pub busy_nanos: u64,
    /// Modelled wall-clock of the run on `workers` dedicated cores: per
    /// round, the makespan of the scheduler's slot distribution over the
    /// measured per-slot costs (fixed chunks for round robin, greedy
    /// claim order for work stealing; with pipelining, rounds overlap —
    /// round k's slots are gated only on round k-2's modelled finish).
    /// Machine-load-independent — this is the number the scheduler
    /// comparison benches report, since on an oversubscribed host the
    /// wall clock cannot show barrier idling.
    pub modelled_makespan_nanos: u64,
    /// Modelled core-idle time: `workers x modelled_makespan - busy`.
    /// Under barriered rounds this is dominated by workers waiting at the
    /// round barrier for the straggler slot; the cross-round pipeline
    /// exists to drive it towards zero.
    pub barrier_idle_nanos: u64,
    /// Total wall-clock spent constructing per-slot coverage views (the
    /// steal-mode overlay setup). With the two-level view this stays
    /// O(points found), independent of total coverage-space size.
    pub view_setup_nanos: u64,
}

/// The orchestrator's mutable mid-run state: everything a
/// [`CampaignSnapshot`] captures and a resume restores.
struct Session {
    corpus: Corpus,
    scheduler: Box<dyn Scheduler>,
    policy: Box<dyn SeedPolicy>,
    sched_rng: StdRng,
    gain: GainAverage,
    global: CoverageLog,
    stats: CampaignStats,
    worker_rngs: Vec<[u64; 4]>,
    worker_iterations: Vec<usize>,
    worker_observed: Vec<CoverageMatrix>,
}

/// Per-run gossip bookkeeping: the cursor into the global discovery log
/// up to which this shard has already published, plus the set of points
/// that arrived *from* peers — exported deltas filter those out, so a
/// point never echoes back to the mesh that delivered it.
#[derive(Default)]
struct GossipState {
    published: usize,
    imported: HashSet<CoveragePoint>,
}

/// The pool coordinator: a fully validated campaign, ready to run. Built
/// exclusively by [`CampaignBuilder`] (which owns all configuration and
/// validation); see the module docs for the round protocol and the
/// determinism/resume contracts.
///
/// Cloneable: the persistence tests re-run one configuration with
/// different halt points by cloning the orchestrator (captured extension
/// constructors are shared, not re-resolved).
#[derive(Clone)]
pub struct Orchestrator {
    pub(crate) backend: BackendSpec,
    pub(crate) backend_ctor: Option<BackendCtor>,
    /// The worker-process pool a `proc:<inner>:<M>` backend's threads
    /// share, spawned (and handshaked) once by the builder. `None` for
    /// in-process backends.
    pub(crate) proc: Option<crate::procbackend::ProcShared>,
    pub(crate) opts: FuzzerOptions,
    pub(crate) workers: usize,
    pub(crate) seed: u64,
    pub(crate) batch: usize,
    pub(crate) pipeline_lag: usize,
    pub(crate) scheduler: SchedulerSpec,
    pub(crate) scheduler_ctor: Option<SchedulerCtor>,
    pub(crate) policy: PolicySpec,
    pub(crate) policy_ctor: Option<PolicyCtor>,
    pub(crate) corpus_capacity: usize,
    pub(crate) corpus_exploit: f64,
    pub(crate) shard_id: u32,
    pub(crate) snapshot_every: usize,
    /// Active scenario specs, canonical and sorted (the cross-process
    /// identity persisted in snapshots), and their process-local intern
    /// indices in the same order (what the hot paths carry).
    pub(crate) scenario_specs: Vec<String>,
    pub(crate) scenarios: Vec<u16>,
    pub(crate) snapshot_path: Option<PathBuf>,
    pub(crate) snapshot_keep: usize,
    pub(crate) halt_after: Option<usize>,
    pub(crate) resume: Option<Box<CampaignSnapshot>>,
    /// Gossip exchange cadence in rounds (0 = no gossip). Set together
    /// with `gossip` by the builder, never independently.
    pub(crate) gossip_every: usize,
    /// The link this shard publishes frames on and drains peer frames
    /// from at gossip boundaries. `None` runs byte-identically to a
    /// build without the fleet layer.
    pub(crate) gossip: Option<SharedGossipLink>,
}

impl fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Orchestrator")
            .field("backend", &self.backend.label())
            .field("workers", &self.workers)
            .field("seed", &self.seed)
            .field("batch", &self.batch)
            .field("pipeline_lag", &self.pipeline_lag)
            .field("scheduler", &self.scheduler)
            .field("policy", &self.policy)
            .field("shard_id", &self.shard_id)
            .finish_non_exhaustive()
    }
}

impl Orchestrator {
    /// SplitMix64: decorrelates the per-worker and scheduler RNG streams
    /// from the user seed.
    fn stream_seed(&self, stream: u64) -> u64 {
        let mut z = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One simulator instance (one per worker thread), through the
    /// captured extension constructor when the spec names one. For proc
    /// backends every instance is a cheap handle onto the one shared
    /// worker-process pool — `BackendSpec::build` would spawn a fresh
    /// pool per thread.
    fn build_backend(&self) -> Box<dyn SimBackend> {
        if let Some(shared) = &self.proc {
            return Box::new(crate::procbackend::ProcBackend::from_shared(shared.clone()));
        }
        match &self.backend_ctor {
            Some(ctor) => ctor(),
            None => self.backend.build(),
        }
    }

    /// How many executor threads to spawn: at least the logical worker
    /// count, and for a proc backend at least the pool size, so `M`
    /// worker processes all get a claiming thread even when the campaign
    /// geometry says fewer logical workers. The extra threads never draw
    /// from a logical RNG stream and never commit under their own id —
    /// under steal scheduling they only claim pre-drawn slots, so
    /// results stay those of the *logical* geometry.
    fn physical_workers(&self) -> usize {
        match &self.backend {
            BackendSpec::Proc(spec) => self.workers.max(spec.pool),
            _ => self.workers,
        }
    }

    /// A fresh scheduler instance, rehydrating extension state on resume.
    fn build_scheduler(&self, state: Option<&[u8]>) -> Box<dyn Scheduler> {
        match &self.scheduler_ctor {
            Some(ctor) => ctor(state),
            None => self
                .scheduler
                .build(state)
                .expect("built-in scheduler specs build infallibly"),
        }
    }

    /// A fresh policy instance, rehydrating persisted state on resume.
    fn build_policy(&self, state: Option<&PolicyState>) -> Box<dyn SeedPolicy> {
        match &self.policy_ctor {
            Some(ctor) => {
                let blob = match state {
                    Some(PolicyState::Opaque(b)) => Some(b.as_slice()),
                    _ => None,
                };
                ctor(blob)
            }
            None => self
                .policy
                .build(state)
                .expect("built-in policy specs build infallibly"),
        }
    }

    /// Fresh session state, or the snapshot's if this is a resume.
    fn session(&self) -> (Session, usize) {
        if let Some(snap) = &self.resume {
            let s = Session {
                corpus: snap.corpus.clone(),
                scheduler: self.build_scheduler(Some(&snap.scheduler_state)),
                policy: self.build_policy(Some(&snap.policy_state)),
                sched_rng: StdRng::from_raw_state(snap.sched_rng),
                gain: GainAverage {
                    avg: snap.gain_avg,
                    samples: snap.gain_samples,
                },
                global: CoverageLog::seeded(snap.coverage.clone()),
                stats: snap.stats.clone(),
                worker_rngs: snap.worker_states.iter().map(|w| w.rng).collect(),
                worker_iterations: snap.worker_states.iter().map(|w| w.iterations).collect(),
                worker_observed: snap
                    .worker_states
                    .iter()
                    .map(|w| w.observed.clone())
                    .collect(),
            };
            (s, snap.completed)
        } else {
            // Corpus retention/scheduling IS coverage feedback: the
            // DejaVuzz⁻ ablation (coverage_feedback = false) must run
            // without any coverage-driven state, so its corpus explores
            // unconditionally and retains nothing.
            let exploit = if self.opts.coverage_feedback {
                self.corpus_exploit
            } else {
                0.0
            };
            let s = Session {
                corpus: Corpus::new(self.corpus_capacity).with_exploit_probability(exploit),
                scheduler: self.build_scheduler(None),
                policy: self.build_policy(None),
                sched_rng: StdRng::seed_from_u64(self.stream_seed(0)),
                gain: GainAverage::default(),
                global: CoverageLog::new(),
                stats: CampaignStats::default(),
                worker_rngs: (0..self.workers)
                    .map(|id| StdRng::seed_from_u64(self.stream_seed(1 + id as u64)).state())
                    .collect(),
                worker_iterations: vec![0; self.workers],
                worker_observed: vec![CoverageMatrix::new(); self.workers],
            };
            (s, 0)
        }
    }

    /// Captures the session at a commit boundary. `pending` is the
    /// pipelined round already dispatched but not yet committed (if any):
    /// it ships with the snapshot so a resume re-dispatches exactly the
    /// same pre-drawn plan instead of re-planning (which would double-draw
    /// the scheduler RNG and double-decay the corpus).
    fn snapshot_of(&self, s: &Session, pending: Option<PendingRound>) -> CampaignSnapshot {
        CampaignSnapshot {
            shard_id: self.shard_id,
            backend: self.backend.label(),
            workers: self.workers,
            seed: self.seed,
            batch: self.batch,
            pipeline_lag: self.pipeline_lag,
            pending,
            scenarios: self.scenario_specs.clone(),
            scheduler: self.scheduler.clone(),
            scheduler_state: s.scheduler.state(),
            policy: self.policy.clone(),
            policy_state: s.policy.state(),
            opts: self.opts,
            completed: s.stats.iterations,
            gain_avg: s.gain.avg,
            gain_samples: s.gain.samples,
            sched_rng: s.sched_rng.state(),
            corpus: s.corpus.clone(),
            coverage: s.global.matrix().clone(),
            stats: s.stats.clone(),
            worker_states: (0..self.workers)
                .map(|i| WorkerState {
                    rng: s.worker_rngs[i],
                    iterations: s.worker_iterations[i],
                    observed: s.worker_observed[i].clone(),
                })
                .collect(),
        }
    }

    /// Writes a checkpoint. Periodic checkpoints rotate into
    /// `<path>.<iterations>` siblings when [`Orchestrator::snapshot_keep`]
    /// is set, pruning older rounds only after the new file landed
    /// (atomically), so a multi-day campaign keeps a bounded trail of
    /// resumable round checkpoints instead of one overwritten file or an
    /// unbounded pile.
    fn write_checkpoint(
        &self,
        s: &Session,
        pending: Option<PendingRound>,
        periodic: bool,
        observers: &mut [Box<dyn CampaignObserver>],
    ) {
        let Some(path) = &self.snapshot_path else {
            return;
        };
        let snap = self.snapshot_of(s, pending);
        let rotate = periodic && self.snapshot_keep > 0;
        let target = if rotate {
            dejavuzz_persist::rotated_path(path, snap.completed as u64)
        } else {
            path.clone()
        };
        let write_span =
            dejavuzz_telemetry::Timer::start(&crate::metrics::handles().snapshot_write_nanos);
        if let Err(e) = snap.save(&target) {
            write_span.finish();
            // A failed checkpoint must not kill a running campaign:
            // warn and fuzz on; the next interval retries.
            eprintln!(
                "dejavuzz: checkpoint write to {} failed: {e}",
                target.display()
            );
            return;
        }
        write_span.finish();
        crate::metrics::handles().snapshots_total.inc();
        if rotate {
            if let Err(e) = dejavuzz_persist::prune_rotated(path, self.snapshot_keep) {
                eprintln!(
                    "dejavuzz: pruning rotated checkpoints of {} failed: {e}",
                    path.display()
                );
            }
        }
        let ev = SnapshotWritten {
            path: &target,
            iterations: snap.completed,
            periodic,
        };
        for obs in observers.iter_mut() {
            obs.snapshot_written(&ev);
        }
    }

    /// One gossip exchange at a round boundary: publish this shard's
    /// coverage delta (filtered of points that themselves arrived from
    /// peers) plus its top-energy corpus entries, then import every
    /// queued peer frame — points into the global union (and the live
    /// shared union, so the cross-check invariant holds), seeds into the
    /// corpus — firing one [`PeerDeltaImported`] per frame and one
    /// [`SeedImported`] per accepted seed. Every cross-shard import is
    /// therefore an explicit, logged observer event at a deterministic
    /// commit point; with no link configured this is never called and
    /// the campaign is byte-identical to a build without gossip.
    fn gossip_exchange(
        &self,
        s: &mut Session,
        shared: &SharedCoverage,
        gst: &mut GossipState,
        feedback: bool,
        observers: &mut [Box<dyn CampaignObserver>],
    ) {
        let Some(link) = &self.gossip else {
            return;
        };
        let metrics = crate::metrics::handles();
        let _exchange_span = dejavuzz_telemetry::Timer::start(&metrics.gossip_exchange_nanos);
        // Export first: the frame carries exactly what this shard itself
        // discovered since the last exchange, in discovery order.
        let delta: Vec<CoveragePoint> = s
            .global
            .delta_since(gst.published)
            .iter()
            .filter(|p| !gst.imported.contains(p))
            .copied()
            .collect();
        gst.published = s.global.watermark();
        // The favoured corpus slice: highest current energy wins; the
        // sort is stable over the corpus's deterministic retention order,
        // so ties break identically run over run.
        let mut ranked: Vec<&CorpusEntry> = s.corpus.entries().iter().collect();
        ranked.sort_by(|a, b| {
            b.energy()
                .partial_cmp(&a.energy())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let favoured: Vec<CorpusEntry> = ranked
            .into_iter()
            .take(FAVOURED_PER_FRAME)
            .cloned()
            .collect();
        metrics.gossip_points_out_total.add(delta.len() as u64);
        let frame = GossipFrame {
            shard: self.shard_id,
            iterations: s.stats.iterations,
            delta,
            favoured,
        };
        let frames = {
            let mut link = link.lock().expect("gossip link poisoned");
            link.publish(&frame);
            link.drain()
        };
        // Import at the boundary: the next round's view broadcasts pick
        // the fresh points up through the discovery log, so worker views
        // still equal the global union at every round boundary.
        for f in frames {
            if f.shard == self.shard_id {
                continue; // self-echo from a loopback topology
            }
            let mut fresh = 0usize;
            for p in &f.delta {
                if s.global.insert(*p) {
                    fresh += 1;
                    shared.observe_point(*p);
                    gst.imported.insert(*p);
                }
            }
            metrics.gossip_frames_in_total.inc();
            metrics.gossip_points_in_total.add(fresh as u64);
            let ev = PeerDeltaImported {
                from_shard: f.shard,
                peer_iterations: f.iterations,
                boundary: s.stats.iterations,
                points: f.delta.len(),
                fresh_points: fresh,
                total_points: s.global.points(),
            };
            for obs in observers.iter_mut() {
                obs.peer_delta_imported(&ev);
            }
            // Seeds are coverage feedback: the DejaVuzz⁻ ablation must
            // not smuggle peer guidance in through the side door.
            if feedback {
                for e in &f.favoured {
                    s.corpus.record(&e.seed, e.gain);
                    let sev = SeedImported {
                        from_shard: f.shard,
                        boundary: s.stats.iterations,
                        window_type: e.seed.window_type,
                        entropy: e.seed.entropy,
                        gain: e.gain,
                    };
                    for obs in observers.iter_mut() {
                        obs.seed_imported(&sev);
                    }
                }
            }
        }
    }

    /// Runs the pool until `iterations` total campaign iterations have
    /// completed (on resumed runs that *includes* the snapshot's
    /// iterations), returning the report. See the module docs for the
    /// determinism and resume-equivalence contracts.
    pub fn run(&self, iterations: usize) -> ExecutorReport {
        self.run_observed(iterations, &mut []).0
    }

    /// [`Orchestrator::run`], also returning the end-of-run
    /// [`CampaignSnapshot`] (the state a later
    /// [`crate::builder::CampaignBuilder::resume`] continues from). This
    /// is the in-memory checkpointing path; file-based checkpointing
    /// goes through [`crate::builder::CampaignBuilder::snapshot_path`].
    pub fn run_snapshotting(&self, iterations: usize) -> (ExecutorReport, CampaignSnapshot) {
        self.run_observed(iterations, &mut [])
    }

    /// [`Orchestrator::run_snapshotting`] with a
    /// [`CampaignObserver`] event stream: every observer is invoked at
    /// the orchestrator's deterministic commit points (never from worker
    /// threads), so for a fixed configuration the full event sequence —
    /// kinds and payloads — is reproducible run over run and
    /// concatenates seamlessly across a halt/resume boundary (asserted
    /// by `tests/observer.rs`). Wall-clock appears only in
    /// [`CampaignFinished::elapsed`].
    pub fn run_observed(
        &self,
        iterations: usize,
        observers: &mut [Box<dyn CampaignObserver>],
    ) -> (ExecutorReport, CampaignSnapshot) {
        if self.pipeline_lag > 0 {
            // Pipelining on: the cross-round steal pipeline. The builder
            // guarantees the scheduler supports it.
            return self.run_pipelined(iterations, observers);
        }
        let run_start = Instant::now();
        let (mut s, start) = self.session();

        // The live concurrent union starts from the restored global so
        // the cross-check invariant (shared == canonical) spans resumes.
        let shared = Arc::new(SharedCoverage::default());
        for p in s.global.iter() {
            shared.observe_point(*p);
        }

        let (from_tx, from_rx) = mpsc::channel();
        let physical = self.physical_workers();
        let mut to_workers = Vec::with_capacity(physical);
        let mut handles = Vec::with_capacity(physical);
        for id in 0..physical {
            let (to_tx, to_rx) = mpsc::channel();
            let worker = Worker {
                id,
                backend: self.build_backend(),
                opts: self.opts,
                // Extra proc-pool claimer threads (id >= workers) get a
                // decorrelated stream of their own; it is never drawn —
                // steal work runs entirely on pre-drawn slot state — so
                // it exists only to satisfy the Worker shape.
                rng: if id < self.workers {
                    StdRng::from_raw_state(s.worker_rngs[id])
                } else {
                    StdRng::seed_from_u64(self.stream_seed(1 + id as u64))
                },
                // At a round boundary every worker's view equals the
                // global union (see the module docs), so seeding the view
                // with it restores the exact mid-campaign state.
                view: s.global.matrix().clone(),
                observed: if id < self.workers {
                    s.worker_observed[id].clone()
                } else {
                    CoverageMatrix::new()
                },
                shared: Arc::clone(&shared),
                scenarios: self.scenarios.clone(),
            };
            let from_tx = from_tx.clone();
            handles.push(thread::spawn(move || worker.run(to_rx, from_tx)));
            to_workers.push(to_tx);
        }
        drop(from_tx);

        // Per-worker cursors into the global discovery log drive the
        // round-start view broadcasts. On resume the log starts empty
        // (`CoverageLog::seeded`): every worker's view already holds the
        // full restored union, so only post-resume points need
        // broadcasting.
        let mut synced = vec![0usize; physical];
        let mut gossip_state = GossipState::default();
        let halt = self.halt_after.unwrap_or(usize::MAX);
        let feedback = self.opts.coverage_feedback;
        let mut busy_nanos = 0u64;
        let mut view_setup_nanos = 0u64;
        let mut makespan_nanos = 0u64;

        let mut next_slot = start;
        let mut rounds = 0usize;
        while next_slot < iterations && s.stats.iterations < halt {
            let span = s
                .scheduler
                .round_span(self.workers, self.batch, iterations - next_slot);
            let plan = {
                let _plan_span =
                    dejavuzz_telemetry::Timer::start(&crate::metrics::handles().plan_nanos);
                // Disjoint field borrows: the scheduler plans over the
                // rest of the session state.
                let Session {
                    scheduler,
                    corpus,
                    policy,
                    sched_rng,
                    worker_rngs,
                    ..
                } = &mut s;
                let mut ctx = PlanCtx {
                    corpus,
                    policy: policy.as_mut(),
                    sched_rng,
                    worker_rngs,
                    workers: self.workers,
                    batch: self.batch,
                    lag: 0,
                    scenarios: &self.scenarios,
                };
                scheduler.plan_round(next_slot..next_slot + span, &mut ctx)
            };
            let round_ev = RoundStarted {
                first_slot: next_slot,
                slots: span,
                gain_threshold_samples: s.gain.samples,
            };
            for obs in observers.iter_mut() {
                obs.round_started(&round_ev);
            }
            next_slot += span;

            let mut expected = 0;
            let stealing = matches!(plan, RoundPlan::Queue(_));
            match plan {
                RoundPlan::Batches(batches) => {
                    for (w, items) in batches.into_iter().enumerate() {
                        if items.is_empty() {
                            continue;
                        }
                        let delta = s.global.delta_since(synced[w]).to_vec();
                        synced[w] = s.global.watermark();
                        to_workers[w]
                            .send(ToWorker::Batch(WorkBatch {
                                items,
                                avg: s.gain.avg,
                                samples: s.gain.samples,
                                delta,
                            }))
                            .expect("worker hung up mid-run");
                        expected += 1;
                    }
                }
                RoundPlan::Queue(slots) => {
                    let queue = Arc::new(StealQueue {
                        slots,
                        next: AtomicUsize::new(0),
                    });
                    for (w, to_worker) in to_workers.iter().enumerate() {
                        let delta = s.global.delta_since(synced[w]).to_vec();
                        synced[w] = s.global.watermark();
                        to_worker
                            .send(ToWorker::Steal(StealRound {
                                queue: Arc::clone(&queue),
                                avg: s.gain.avg,
                                samples: s.gain.samples,
                                delta,
                                streamed: false,
                            }))
                            .expect("worker hung up mid-run");
                        expected += 1;
                    }
                }
            }

            let mut outcomes = Vec::new();
            for _ in 0..expected {
                let reply: RoundReply = from_rx.recv().expect("worker hung up mid-run");
                if let Some(rng) = reply.rng {
                    s.worker_rngs[reply.worker] = rng;
                }
                outcomes.extend(reply.outcomes);
            }
            // Replay in global slot order: every piece of feedback state
            // (threshold, corpus, curve, worker mirrors) updates
            // deterministically regardless of arrival or claim order.
            outcomes.sort_by_key(|o| o.slot);
            makespan_nanos += round_makespan(&outcomes, self.workers, stealing);
            for o in outcomes {
                commit_outcome(
                    &mut s,
                    &mut busy_nanos,
                    &mut view_setup_nanos,
                    feedback,
                    o,
                    observers,
                );
            }

            rounds += 1;
            if self.gossip_every > 0 && rounds.is_multiple_of(self.gossip_every) {
                self.gossip_exchange(&mut s, &shared, &mut gossip_state, feedback, observers);
            }
            if self.snapshot_every > 0 && rounds.is_multiple_of(self.snapshot_every) {
                self.write_checkpoint(&s, None, true, observers);
            }
        }

        for to_worker in &to_workers {
            let _ = to_worker.send(ToWorker::Stop);
        }
        for h in handles {
            h.join().expect("worker panicked");
        }

        // Always leave a final checkpoint behind: a halted run's snapshot
        // is exactly what `--resume` continues from.
        self.write_checkpoint(&s, None, false, observers);
        let snapshot = self.snapshot_of(&s, None);

        debug_assert_eq!(shared.points(), s.global.points(), "both unions must agree");
        let workers = (0..self.workers)
            .map(|i| WorkerSummary {
                worker: i,
                iterations: s.worker_iterations[i],
                observed: s.worker_observed[i].clone(),
            })
            .collect();
        let report = ExecutorReport {
            stats: s.stats,
            coverage: s.global.into_matrix(),
            shared_points: shared.points(),
            workers,
            corpus_retained: s.corpus.retained(),
            corpus_evicted: s.corpus.evicted(),
            busy_nanos,
            modelled_makespan_nanos: makespan_nanos,
            barrier_idle_nanos: (self.workers as u64 * makespan_nanos).saturating_sub(busy_nanos),
            view_setup_nanos,
        };
        crate::metrics::record_report(&report);
        let finished = CampaignFinished {
            report: &report,
            elapsed: run_start.elapsed(),
        };
        for obs in observers.iter_mut() {
            obs.campaign_finished(&finished);
        }
        (report, snapshot)
    }

    /// The cross-round steal pipeline (`pipeline_lag >= 1`): the
    /// orchestrator keeps **two** rounds in flight. Workers stream every
    /// outcome the moment it finishes; the orchestrator commits the
    /// contiguous slot prefix, and at the instant round k is fully
    /// committed it plans and dispatches round k+2 — while round k+1's
    /// stragglers are still running. No worker ever waits at a barrier:
    /// the next round's queue is already sitting in its channel when it
    /// drains the current one.
    ///
    /// The feedback-lag contract: round k's slots are planned from (and
    /// their views broadcast) the committed coverage/corpus/threshold
    /// state as of the end of round k-2 — one round of lag, against the
    /// barriered mode's zero. Every `lag >= 1` behaves identically: the
    /// pipeline is depth-quantized at one round, the minimum that removes
    /// the barrier, so deeper requested lags are satisfied a fortiori
    /// (`lag == 0` is pipelining off and runs the byte-identical
    /// barriered path). Results remain a pure function of
    /// `(seed, workers, lag)`: commit order is slot order, plans are
    /// drawn from committed state only, and claim interleavings never
    /// leak (asserted by `tests/scheduler.rs`).
    ///
    /// Checkpoints land at commit boundaries with the in-flight round's
    /// pre-drawn plan attached ([`PendingRound`]), so a resume
    /// re-dispatches exactly that plan and splices bit-identically
    /// (asserted by `tests/persist.rs`).
    fn run_pipelined(
        &self,
        iterations: usize,
        observers: &mut [Box<dyn CampaignObserver>],
    ) -> (ExecutorReport, CampaignSnapshot) {
        let run_start = Instant::now();
        let (mut s, start) = self.session();
        let resumed_pending = self.resume.as_ref().and_then(|snap| snap.pending.clone());

        // The live concurrent union starts from the restored global so
        // the cross-check invariant (shared == canonical) spans resumes.
        // Write-only from the workers' perspective, so over-seeding it
        // with points the pending round has not observed yet is harmless.
        let shared = Arc::new(SharedCoverage::default());
        for p in s.global.iter() {
            shared.observe_point(*p);
        }

        // When a pending round is in flight, worker views must match
        // their state at its dispatch: the snapshot coverage *minus* the
        // points committed after that dispatch (`view_behind`), which are
        // instead replayed through the broadcast log below.
        let mut spawn_view = s.global.matrix().clone();
        if let Some(p) = &resumed_pending {
            for point in &p.view_behind {
                spawn_view.remove(point);
            }
        }

        let (from_tx, from_rx) = mpsc::channel();
        let physical = self.physical_workers();
        let mut to_workers = Vec::with_capacity(physical);
        let mut handles = Vec::with_capacity(physical);
        for id in 0..physical {
            let (to_tx, to_rx) = mpsc::channel();
            let worker = Worker {
                id,
                backend: self.build_backend(),
                opts: self.opts,
                // Extra proc-pool claimer threads (id >= workers): see
                // `run_observed` — the stream is never drawn, pipelined
                // rounds are queue-shaped pre-drawn slots.
                rng: if id < self.workers {
                    StdRng::from_raw_state(s.worker_rngs[id])
                } else {
                    StdRng::seed_from_u64(self.stream_seed(1 + id as u64))
                },
                view: spawn_view.clone(),
                observed: if id < self.workers {
                    s.worker_observed[id].clone()
                } else {
                    CoverageMatrix::new()
                },
                shared: Arc::clone(&shared),
                scenarios: self.scenarios.clone(),
            };
            let from_tx = from_tx.clone();
            handles.push(thread::spawn(move || worker.run(to_rx, from_tx)));
            to_workers.push(to_tx);
        }
        drop(from_tx);

        // Per-worker cursors into the global discovery log drive the
        // dispatch-time view broadcasts. On a resume with a pending round
        // the log is pre-seeded (replayed) with `view_behind` and the
        // cursors stay at zero: the pending round itself re-ships with an
        // empty delta (its views were already current at its original
        // dispatch), while the *next* planned round picks the replayed
        // points up — exactly the delta the uninterrupted run broadcast
        // at that boundary.
        if let Some(p) = &resumed_pending {
            s.global.replay(&p.view_behind);
        }
        let mut synced = vec![0usize; physical];
        let mut gossip_state = GossipState {
            // Replayed points were already published before the halt;
            // start the export cursor past them.
            published: s.global.watermark(),
            imported: HashSet::new(),
        };
        let halt = self.halt_after.unwrap_or(usize::MAX);
        let feedback = self.opts.coverage_feedback;
        let mut busy_nanos = 0u64;
        let mut view_setup_nanos = 0u64;

        /// One dispatched-but-not-fully-committed round.
        struct InFlight {
            first_slot: usize,
            len: usize,
            avg: f64,
            samples: usize,
            slots: Vec<PlannedSlot>,
            /// The global log watermark at dispatch: the delta from here
            /// is what a checkpoint must record as `view_behind`.
            log_mark: usize,
        }

        /// The snapshot form of an in-flight round.
        fn to_pending(f: &InFlight, log: &CoverageLog) -> PendingRound {
            PendingRound {
                first_slot: f.first_slot,
                slots: f.slots.clone(),
                avg: f.avg,
                samples: f.samples,
                view_behind: log.delta_since(f.log_mark).to_vec(),
            }
        }

        let mut next_slot = start;
        let mut rounds = 0usize;
        let mut in_flight: VecDeque<InFlight> = VecDeque::new();
        // Modelled per-slot costs of each round, in commit order, for the
        // pipelined makespan model below.
        let mut round_costs: Vec<Vec<u64>> = Vec::new();
        let mut current_costs: Vec<u64> = Vec::new();

        // Re-dispatch the resumed pending round verbatim: same pre-drawn
        // slots, same dispatch-time gain threshold, empty view delta.
        if let Some(p) = resumed_pending {
            let queue = Arc::new(StealQueue {
                slots: p.slots.clone(),
                next: AtomicUsize::new(0),
            });
            let round_ev = RoundStarted {
                first_slot: p.first_slot,
                slots: p.slots.len(),
                gain_threshold_samples: p.samples,
            };
            for obs in observers.iter_mut() {
                obs.round_started(&round_ev);
            }
            for to_worker in &to_workers {
                to_worker
                    .send(ToWorker::Steal(StealRound {
                        queue: Arc::clone(&queue),
                        avg: p.avg,
                        samples: p.samples,
                        delta: Vec::new(),
                        streamed: true,
                    }))
                    .expect("worker hung up mid-run");
            }
            debug_assert_eq!(p.first_slot, next_slot, "pending resumes at the frontier");
            next_slot = p.first_slot + p.slots.len();
            in_flight.push_back(InFlight {
                first_slot: p.first_slot,
                len: p.slots.len(),
                avg: p.avg,
                samples: p.samples,
                slots: p.slots,
                log_mark: s.global.watermark(),
            });
        }

        // Plans and dispatches the round starting at the frontier from
        // the current committed state. Macro rather than closure: it
        // borrows half the locals mutably.
        macro_rules! dispatch_next {
            () => {{
                let span = s
                    .scheduler
                    .round_span(self.workers, self.batch, iterations - next_slot);
                let plan = {
                    let _plan_span =
                        dejavuzz_telemetry::Timer::start(&crate::metrics::handles().plan_nanos);
                    let Session {
                        scheduler,
                        corpus,
                        policy,
                        sched_rng,
                        worker_rngs,
                        ..
                    } = &mut s;
                    let mut ctx = PlanCtx {
                        corpus,
                        policy: policy.as_mut(),
                        sched_rng,
                        worker_rngs,
                        workers: self.workers,
                        batch: self.batch,
                        lag: self.pipeline_lag,
                        scenarios: &self.scenarios,
                    };
                    scheduler.plan_round(next_slot..next_slot + span, &mut ctx)
                };
                let RoundPlan::Queue(slots) = plan else {
                    unreachable!(
                        "pipelining requires a queue-planning scheduler (enforced at build)"
                    )
                };
                let round_ev = RoundStarted {
                    first_slot: next_slot,
                    slots: span,
                    gain_threshold_samples: s.gain.samples,
                };
                for obs in observers.iter_mut() {
                    obs.round_started(&round_ev);
                }
                let queue = Arc::new(StealQueue {
                    slots: slots.clone(),
                    next: AtomicUsize::new(0),
                });
                for (w, to_worker) in to_workers.iter().enumerate() {
                    let delta = s.global.delta_since(synced[w]).to_vec();
                    synced[w] = s.global.watermark();
                    to_worker
                        .send(ToWorker::Steal(StealRound {
                            queue: Arc::clone(&queue),
                            avg: s.gain.avg,
                            samples: s.gain.samples,
                            delta,
                            streamed: true,
                        }))
                        .expect("worker hung up mid-run");
                }
                in_flight.push_back(InFlight {
                    first_slot: next_slot,
                    len: span,
                    avg: s.gain.avg,
                    samples: s.gain.samples,
                    slots,
                    log_mark: s.global.watermark(),
                });
                next_slot += span;
            }};
        }

        // Fill the pipeline: two rounds in flight from the word go (both
        // planned from the same start-of-run committed state, in order).
        while in_flight.len() < 2 && next_slot < iterations {
            dispatch_next!();
        }

        let mut buffered: BTreeMap<usize, IterationOutcome> = BTreeMap::new();
        let mut committed_through = start;
        let mut halted = false;
        while let Some(front) = in_flight.front() {
            let end_of_front = front.first_slot + front.len;
            // Commit the front round to completion; outcomes from the
            // round behind it buffer until the boundary actions ran.
            while committed_through < end_of_front {
                if let Some(o) = buffered.remove(&committed_through) {
                    current_costs.push(o.elapsed_nanos);
                    commit_outcome(
                        &mut s,
                        &mut busy_nanos,
                        &mut view_setup_nanos,
                        feedback,
                        o,
                        observers,
                    );
                    committed_through += 1;
                    continue;
                }
                // The wait for the next contiguous slot is the
                // pipeline's stall: outcomes may be buffered out of
                // order, but commit cannot proceed past a gap.
                let stall =
                    dejavuzz_telemetry::Timer::start(&crate::metrics::handles().commit_stall_nanos);
                let reply: RoundReply = from_rx.recv().expect("worker hung up mid-run");
                stall.finish();
                debug_assert!(reply.rng.is_none(), "steal workers never draw");
                for o in reply.outcomes {
                    buffered.insert(o.slot, o);
                }
                crate::metrics::handles()
                    .commit_queue_depth
                    .set(buffered.len() as u64);
            }

            // Boundary: the front round is fully committed, in order.
            in_flight.pop_front();
            round_costs.push(std::mem::take(&mut current_costs));
            rounds += 1;
            if self.gossip_every > 0 && rounds.is_multiple_of(self.gossip_every) {
                self.gossip_exchange(&mut s, &shared, &mut gossip_state, feedback, observers);
            }
            if self.snapshot_every > 0 && rounds.is_multiple_of(self.snapshot_every) {
                let pending = in_flight.front().map(|f| to_pending(f, &s.global));
                self.write_checkpoint(&s, pending, true, observers);
            }
            if s.stats.iterations >= halt {
                halted = true;
                break;
            }
            if next_slot < iterations {
                dispatch_next!();
            }
        }

        for to_worker in &to_workers {
            let _ = to_worker.send(ToWorker::Stop);
        }
        if halted {
            // Discard the in-flight round's outcomes: its pre-drawn plan
            // rides in the snapshot and a resume re-executes it
            // deterministically. Drain the channel so workers never block
            // on a full buffer (unbounded channels never do, but be
            // explicit about intent: these results are dropped).
            while from_rx.try_recv().is_ok() {}
        }
        for h in handles {
            h.join().expect("worker panicked");
        }

        let pending = in_flight.front().map(|f| to_pending(f, &s.global));
        // Always leave a final checkpoint behind: a halted run's snapshot
        // is exactly what `--resume` continues from.
        self.write_checkpoint(&s, pending.clone(), false, observers);
        let snapshot = self.snapshot_of(&s, pending);

        let makespan_nanos = pipelined_makespan(&round_costs, self.workers);
        let workers = (0..self.workers)
            .map(|i| WorkerSummary {
                worker: i,
                iterations: s.worker_iterations[i],
                observed: s.worker_observed[i].clone(),
            })
            .collect();
        let report = ExecutorReport {
            stats: s.stats,
            coverage: s.global.into_matrix(),
            shared_points: shared.points(),
            workers,
            corpus_retained: s.corpus.retained(),
            corpus_evicted: s.corpus.evicted(),
            busy_nanos,
            modelled_makespan_nanos: makespan_nanos,
            barrier_idle_nanos: (self.workers as u64 * makespan_nanos).saturating_sub(busy_nanos),
            view_setup_nanos,
        };
        crate::metrics::record_report(&report);
        let finished = CampaignFinished {
            report: &report,
            elapsed: run_start.elapsed(),
        };
        for obs in observers.iter_mut() {
            obs.campaign_finished(&finished);
        }
        (report, snapshot)
    }
}

/// Runs `iterations` fuzzing iterations on a pool of `workers` threads
/// (clamped to at least 1) sharing one corpus, one gain threshold and
/// one exact coverage union — the one-call convenience over
/// [`CampaignBuilder`] for defaults-everywhere campaigns.
///
/// Deterministic for a fixed `(workers, seed)` pair; see the module docs.
///
/// # Panics
///
/// Panics if `backend` is an unregistered
/// [`BackendSpec::Extension`] — configurations that can fail belong on
/// [`CampaignBuilder`], whose `build` reports a structured
/// [`crate::builder::BuildError`] instead.
pub fn run(
    backend: BackendSpec,
    opts: FuzzerOptions,
    workers: usize,
    iterations: usize,
    seed: u64,
) -> ExecutorReport {
    CampaignBuilder::new()
        .backend(backend)
        .options(opts)
        .workers(workers.max(1))
        .seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("{e}"))
        .run(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz_uarch::boom_small;

    fn boom() -> BackendSpec {
        BackendSpec::behavioural(boom_small())
    }

    #[test]
    fn pool_runs_exactly_the_requested_iterations() {
        let r = run(boom(), FuzzerOptions::default(), 3, 10, 7);
        assert_eq!(r.stats.iterations, 10);
        assert_eq!(r.stats.coverage_curve.len(), 10);
        assert_eq!(r.workers.iter().map(|w| w.iterations).sum::<usize>(), 10);
        assert_eq!(r.workers.len(), 3);
    }

    #[test]
    fn curve_is_monotone_and_exact() {
        let r = run(boom(), FuzzerOptions::default(), 2, 12, 3);
        assert!(r.stats.coverage_curve.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.stats.coverage(), r.coverage.points());
        assert_eq!(r.coverage.points(), r.shared_points);
    }

    #[test]
    fn zero_workers_clamps_to_one_in_the_convenience_entry() {
        let r = run(boom(), FuzzerOptions::default(), 0, 4, 1);
        assert_eq!(r.workers.len(), 1);
        assert_eq!(r.stats.iterations, 4);
    }

    #[test]
    fn zero_iterations_is_a_clean_noop() {
        let r = run(boom(), FuzzerOptions::default(), 2, 0, 1);
        assert_eq!(r.stats.iterations, 0);
        assert_eq!(r.coverage.points(), 0);
        assert_eq!(r.workers.len(), 2);
    }

    #[test]
    fn gain_average_matches_incremental_mean() {
        let mut g = GainAverage::default();
        for (i, x) in [4.0, 0.0, 8.0].iter().enumerate() {
            g.push(*x);
            assert_eq!(g.samples, i + 1);
        }
        assert!((g.avg - 4.0).abs() < 1e-12);
    }

    #[test]
    fn halt_after_stops_at_a_round_boundary() {
        let orch = CampaignBuilder::new()
            .backend(boom())
            .workers(2)
            .seed(5)
            .halt_after(3)
            .build()
            .unwrap();
        let (report, snap) = orch.run_snapshotting(24);
        // 2 workers x batch 4 = 8 slots per round; the first boundary at
        // or past 3 completed iterations is 8.
        assert_eq!(report.stats.iterations, 8);
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.worker_states.len(), 2);
    }

    #[test]
    fn debug_format_names_the_configuration() {
        let orch = CampaignBuilder::new()
            .backend(boom())
            .workers(2)
            .seed(5)
            .build()
            .unwrap();
        let dbg = format!("{orch:?}");
        assert!(dbg.contains("behavioural:BOOM"), "{dbg}");
        assert!(dbg.contains("RoundRobin"), "{dbg}");
    }
}
